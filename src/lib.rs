//! # congested-clique
//!
//! A production-quality Rust reproduction of Christoph Lenzen's *Optimal
//! Deterministic Routing and Sorting on the Congested Clique* (PODC 2013):
//! deterministic **16-round** routing (Theorem 3.7), **12-round** routing
//! with `O(n log n)` work and memory (Theorem 5.4), **37-round** sorting
//! (Theorem 4.5), constant-round selection/mode/index queries
//! (Corollary 4.6), and the two-round small-key census of §6.3 — all
//! executed and *measured* on a synchronous congested-clique simulator
//! that enforces the model's `O(log n)`-bit per-edge budget.
//!
//! This crate re-exports the workspace:
//!
//! * [`sim`] — the execution model (engine, metrics, bit budgets);
//! * [`coloring`] — König edge colorings of regular bipartite multigraphs;
//! * [`primitives`] — the constant-round communication primitives
//!   (Corollaries 3.3/3.4, broadcasts, scatters);
//! * [`core`] — the paper's algorithms and the [`CongestedClique`] facade;
//! * [`server`] — the concurrent sharded [`QueryServer`] over a fleet of
//!   persistent clique sessions;
//! * [`net`] — the TCP wire protocol, [`NetServer`] and [`CcClient`]
//!   library exposing that fleet over real sockets;
//! * [`obs`] — the std-only observability kit (counters, gauges,
//!   mergeable latency histograms, registry snapshots) every serving
//!   layer records into;
//! * [`baselines`] — randomized and strawman comparators;
//! * [`workloads`] — instance generators.
//!
//! ## Quickstart
//!
//! ```rust
//! use congested_clique::CongestedClique;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 16;
//! let clique = CongestedClique::new(n)?;
//!
//! // Route a fully loaded balanced instance in 16 rounds.
//! let instance = congested_clique::workloads::balanced_random(n, 42)?;
//! let routed = clique.route(&instance)?;
//! assert_eq!(routed.metrics.comm_rounds(), 16);
//!
//! // Sort n² keys in 37 rounds.
//! let keys = congested_clique::workloads::uniform_keys(n, 7);
//! let sorted = clique.sort(&keys)?;
//! assert_eq!(sorted.metrics.comm_rounds(), 37);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_baselines as baselines;
pub use cc_coloring as coloring;
pub use cc_core as core;
pub use cc_net as net;
pub use cc_obs as obs;
pub use cc_primitives as primitives;
pub use cc_server as server;
pub use cc_sim as sim;
pub use cc_workloads as workloads;

pub use cc_core::{CliqueService, CongestedClique, CoreError, Outcome};
pub use cc_net::{
    CcClient, NetError, NetServer, NetServerConfig, ReactorBackend, ServingMode, WireError,
};
pub use cc_server::{QueryServer, Request, ServerConfig, ServerError, ServiceHandle};
