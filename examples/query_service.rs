//! A long-lived query service on one persistent clique session: a single
//! `CliqueService` answers a stream of mixed routing, sorting and
//! selection queries, reusing its worker threads and message arenas
//! across every query — the repeated-invocation regime the session layer
//! exists for. Every answer is bit-identical to what the stateless
//! `CongestedClique` facade would return; only the setup cost is
//! amortized away.
//!
//! ```sh
//! cargo run --release --example query_service
//! ```

use std::time::Instant;

use congested_clique::{workloads, CliqueService, CongestedClique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 25;
    let mut service = CliqueService::new(n)?;
    println!("query service up for an n = {n} clique\n");

    // A mixed stream: routing workloads with rotating shapes, sorts,
    // percentile selections and mode queries over changing shards.
    let started = Instant::now();
    for wave in 0..4u64 {
        let inst = match wave % 3 {
            0 => workloads::balanced_random(n, 40 + wave)?,
            1 => workloads::cyclic_skew(n)?,
            _ => workloads::permutation(n, wave as usize)?,
        };
        let routed = service.route(&inst)?;
        let optimized = service.route_optimized(&inst)?;
        println!(
            "wave {wave}: routed in {} rounds (Thm 3.7) / {} rounds (Thm 5.4)",
            routed.metrics.comm_rounds(),
            optimized.metrics.comm_rounds()
        );

        let shard = workloads::zipf_keys(n, 200, 7 + wave);
        let total: u64 = shard.iter().map(|s| s.len() as u64).sum();
        let sorted = service.sort(&shard)?;
        let p99 = service.select(&shard, (total * 99 / 100).min(total - 1))?;
        let top = service.mode(&shard)?;
        println!(
            "         sorted {total} keys in {} rounds; p99 = {} ({} rounds); \
             mode = {} x{}",
            sorted.metrics.comm_rounds(),
            p99.key,
            p99.metrics.comm_rounds(),
            top.key,
            top.count
        );
    }
    let elapsed = started.elapsed();

    let stats = service.stats();
    println!(
        "\nanswered {} queries in {:.1} ms ({:.0} queries/s): {} protocol rounds, {} messages",
        stats.completed(),
        elapsed.as_secs_f64() * 1e3,
        stats.completed() as f64 / elapsed.as_secs_f64(),
        stats.comm_rounds(),
        stats.messages()
    );

    // The determinism contract, demonstrated: the stateless facade gives
    // the same answer the warm session does.
    let inst = workloads::balanced_random(n, 40)?;
    let warm = service.route(&inst)?;
    let cold = CongestedClique::new(n)?.route(&inst)?;
    assert_eq!(warm.delivered, cold.delivered);
    assert_eq!(warm.metrics, cold.metrics);
    println!("warm-session answer == cold-facade answer, bit for bit");
    Ok(())
}
