//! A client swarm over real sockets: a 4-shard `NetServer` on an
//! ephemeral loopback port, and 8 concurrent `CcClient` connections —
//! each its own "process" with its own TCP stream — firing pipelined
//! waves of mixed traffic from the shared `request_mix` generator. Every
//! wire answer is spot-checked against a private sequential
//! `CliqueService`: the TCP hop, the codec and the shard interleaving are
//! invisible in the answers. Shutdown drains every in-flight reply.
//!
//! ```sh
//! cargo run --release --example net_swarm
//! ```

use congested_clique::workloads::{EntryPoint, RequestMix};
use congested_clique::{
    CcClient, CliqueService, NetServer, NetServerConfig, ServerConfig, ServerError,
};
use std::time::Instant;

const CLIENTS: usize = 8;
const WAVES: usize = 4;
const WAVE_LEN: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(4).with_fleet(
            ServerConfig::new(4)
                .with_queue_capacity(32)
                .with_coalesce_limit(8),
        ),
    )?;
    let addr = server.local_addr();
    println!("net server up on {addr}: 4 shards behind the TCP front");

    // The shared traffic shape: Zipf-hot small cliques, all entry points
    // except the census (which needs n ≳ 128 to succeed; see the
    // generator docs) so every reply is a success to spot-check.
    let mix = RequestMix::new(vec![16usize, 25, 36])
        .with_zipf_theta(1.1)
        .with_weight(EntryPoint::SmallKeyCensus, 0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let mix = mix.clone();
            scope.spawn(move || {
                let mut client = CcClient::connect(addr).expect("connect");
                for wave in 0..WAVES {
                    let seed = (client_index * WAVES + wave) as u64;
                    let requests = mix.generate(WAVE_LEN, seed);
                    // Pipeline the whole wave: different clique sizes land
                    // on different shards and complete out of order; the
                    // id correlation restores request order.
                    let replies = client.pipeline(&requests).expect("pipeline");
                    for (request, reply) in requests.iter().zip(replies) {
                        match reply {
                            Ok(outcome) => {
                                // Spot-check the first wave against a cold
                                // sequential service.
                                if wave == 0 {
                                    let mut direct =
                                        CliqueService::new(request.n()).expect("valid n");
                                    let reference =
                                        request.serve_on(&mut direct).expect("direct call");
                                    assert_eq!(outcome, reference, "client {client_index}");
                                }
                            }
                            Err(ServerError::Query(e)) => {
                                panic!("client {client_index}: query failed: {e}")
                            }
                            Err(e) => panic!("client {client_index}: server failure: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let total = CLIENTS * WAVES * WAVE_LEN;
    let stats = server.stats();
    println!(
        "{CLIENTS} connections × {WAVES} pipelined waves: {total} queries over TCP in \
         {:.1} ms ({:.0} queries/s)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "wire: {} connections, {} request frames in, {} reply frames out, {} protocol errors",
        stats.connections, stats.frames_in, stats.frames_out, stats.protocol_errors
    );
    for (index, shard) in stats.fleet.shards.iter().enumerate() {
        println!(
            "shard {index}: {} requests over {} batches (max batch {}, peak queue {}), \
             {} warm sessions",
            shard.requests, shard.batches, shard.max_batch, shard.peak_queue_depth, shard.sessions
        );
    }

    let final_stats = server.shutdown();
    assert_eq!(final_stats.frames_in, total as u64);
    assert_eq!(final_stats.frames_out, total as u64);
    assert_eq!(final_stats.fleet.requests(), total as u64);
    assert_eq!(final_stats.protocol_errors, 0);
    println!("graceful shutdown: all {total} replies drained before the sockets closed");
    Ok(())
}
