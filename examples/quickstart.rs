//! Quickstart: route and sort on a simulated congested clique, printing
//! the measured round counts next to the paper's bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use congested_clique::{workloads, CongestedClique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let clique = CongestedClique::new(n)?;
    println!(
        "congested clique with n = {n} nodes (groups of √n = {})\n",
        clique.sqrt_n()
    );

    // --- Routing (Problem 3.1) -------------------------------------------
    // Every node is source and destination of exactly n messages.
    let instance = workloads::balanced_random(n, 42)?;
    println!(
        "routing {} messages ({} per node):",
        instance.total_messages(),
        n
    );
    let basic = clique.route(&instance)?;
    println!(
        "  deterministic (Thm 3.7): {:2} rounds (paper: ≤ 16), max edge load {} bits",
        basic.metrics.comm_rounds(),
        basic.metrics.max_edge_bits()
    );
    let opt = clique.route_optimized(&instance)?;
    println!(
        "  work-optimal  (Thm 5.4): {:2} rounds (paper: ≤ 12), {} work/node vs {} basic",
        opt.metrics.comm_rounds(),
        opt.metrics.max_node_steps(),
        basic.metrics.max_node_steps()
    );

    // --- Sorting (Problem 4.1) -------------------------------------------
    let keys = workloads::uniform_keys(n, 7);
    let sorted = clique.sort(&keys)?;
    println!(
        "\nsorting {} keys:\n  deterministic (Thm 4.5): {:2} rounds (paper: ≤ 37)",
        sorted.total,
        sorted.metrics.comm_rounds()
    );
    let first = sorted
        .batches
        .first()
        .and_then(|b| b.first())
        .map(|k| k.key);
    let last = sorted.batches.last().and_then(|b| b.last()).map(|k| k.key);
    println!("  node 0 now holds the smallest keys (min = {first:?}), node {} the largest (max = {last:?})", n - 1);

    // --- Queries (Cor 4.6) -------------------------------------------------
    let median = clique.select(&keys, (sorted.total / 2).saturating_sub(1))?;
    println!(
        "\nmedian key via constant-round selection: {} ({} rounds)",
        median.key,
        median.metrics.comm_rounds()
    );
    let dupes = workloads::duplicate_keys(n, 5, 3);
    let mode = clique.mode(&dupes)?;
    println!(
        "mode of a 5-value distribution: key {} × {} ({} rounds)",
        mode.key,
        mode.count,
        mode.metrics.comm_rounds()
    );
    Ok(())
}
