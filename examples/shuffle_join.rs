//! A distributed hash-join shuffle — the "overlay network / bandwidth-
//! limited cluster" workload the paper's introduction motivates.
//!
//! Every node holds a shard of two relations R and S. To join on the key,
//! each row must reach the node that owns the key's hash bucket — an
//! all-to-all shuffle that is exactly the Information Distribution Task:
//! with hash partitioning each node sends ≈ n rows and owns ≈ n rows, and
//! the deterministic router delivers every shuffle in **at most 16
//! rounds**, no matter how skewed the shard contents are.
//!
//! ```sh
//! cargo run --release --example shuffle_join
//! ```

use congested_clique::core::routing::{RoutedMessage, RoutingInstance};
use congested_clique::sim::NodeId;
use congested_clique::CongestedClique;

/// A row: (join key, value); packed into a message payload word.
fn pack(key: u32, value: u32) -> u64 {
    (u64::from(key) << 32) | u64::from(value)
}

fn owner(key: u32, n: usize) -> usize {
    // The hash partitioner: key → bucket owner.
    (key as usize).wrapping_mul(0x9E37_79B9) % n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 49;
    let clique = CongestedClique::new(n)?;

    // Build skewed shards: node v holds rows whose keys cluster around
    // v's neighbourhood, so naive direct sending would congest edges.
    let rows_per_node = n / 2;
    let mut sends: Vec<Vec<RoutedMessage>> = Vec::with_capacity(n);
    let mut receive_count = vec![0usize; n];
    for v in 0..n {
        let mut list = Vec::new();
        let mut seq = vec![0u32; n];
        for r in 0..rows_per_node {
            let key = ((v * 7 + r * r) % (2 * n)) as u32;
            let dst = owner(key, n);
            if receive_count[dst] >= n {
                continue; // the paper's per-node capacity: split overflow into a second shuffle
            }
            receive_count[dst] += 1;
            list.push(RoutedMessage::new(
                NodeId::new(v),
                NodeId::new(dst),
                seq[dst],
                pack(key, (v * 1000 + r) as u32),
            ));
            seq[dst] += 1;
        }
        sends.push(list);
    }
    let instance = RoutingInstance::new(n, sends)?;
    println!(
        "shuffling {} rows across {n} nodes (hash partitioned)...",
        instance.total_messages()
    );

    let outcome = clique.route(&instance)?;
    println!(
        "shuffle complete in {} rounds (paper bound: 16); {} total messages, busiest edge {} bits/round",
        outcome.metrics.comm_rounds(),
        outcome.metrics.total_messages(),
        outcome.metrics.max_edge_bits(),
    );

    // Every row landed at its hash owner: the join can proceed locally.
    for (node, rows) in outcome.delivered.iter().enumerate() {
        for row in rows {
            let key = (row.payload >> 32) as u32;
            assert_eq!(owner(key, n), node, "row landed at the wrong owner");
        }
    }
    let max_bucket = outcome.delivered.iter().map(Vec::len).max().unwrap_or(0);
    println!("every row reached its bucket owner; fullest bucket holds {max_bucket} rows");
    Ok(())
}
