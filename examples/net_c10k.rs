//! The C10k shape on loopback: two reactor event-loop threads, 1024
//! concurrent connections — 1008 idle, 16 active — driven from a single
//! client thread with the `submit`/`wait_next` split API. The
//! demonstration is that connections are *cheap*: the idle majority
//! costs no threads and (under the edge-triggered `epoll` backend, the
//! Linux default) no wakeup work at all — each idle socket is registered
//! once and never touched again — the active minority gets bit-identical
//! answers, and on Linux the example prints the `/proc` thread count to
//! show it stays O(shards + reactors) while the socket count is
//! O(thousands). Run with `CC_REACTOR=poll` to watch the same traffic
//! cross the portable `poll(2)` oracle instead.
//!
//! ```sh
//! cargo run --release --example net_c10k
//! ```

use congested_clique::{
    CcClient, CliqueService, NetServer, NetServerConfig, ReactorBackend, Request, ServerConfig,
    ServerError,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TOTAL_CONNS: usize = 1024;
const ACTIVE: usize = 16;
const ROUNDS: usize = 8;
const REACTORS: usize = 2;

/// Idle sockets connected per batch — kept under the listener's accept
/// backlog so no connect waits behind hundreds of unaccepted peers.
const CONNECT_BATCH: usize = 128;

/// This process's OS thread count, where procfs exists.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = 2usize;
    let config = NetServerConfig::new(shards)
        .with_fleet(
            ServerConfig::new(shards)
                .with_queue_capacity(32)
                .with_coalesce_limit(8),
        )
        .with_reactor_threads(REACTORS);
    let backend = match config.resolved_reactor_backend() {
        ReactorBackend::Poll => "poll(2)",
        _ => "edge-triggered epoll",
    };
    let server = NetServer::bind("127.0.0.1:0", config)?;
    let addr = server.local_addr();
    println!(
        "reactor server up on {addr}: {shards} shards behind {REACTORS} event loops ({backend})"
    );
    let threads_at_bind = os_threads();

    // The active minority: every client driven by this one thread.
    let mut clients: Vec<CcClient> = (0..ACTIVE)
        .map(|_| CcClient::connect(addr))
        .collect::<Result<_, _>>()?;
    // The idle majority: accepted, counted, never speaking — connected
    // in backlog-sized batches, waiting for the acceptor between them.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(TOTAL_CONNS - ACTIVE);
    while idle.len() < TOTAL_CONNS - ACTIVE {
        let batch = CONNECT_BATCH.min(TOTAL_CONNS - ACTIVE - idle.len());
        for _ in 0..batch {
            idle.push(TcpStream::connect(addr)?);
        }
        let want = (ACTIVE + idle.len()) as u64;
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().connections < want {
            assert!(Instant::now() < deadline, "connections not accepted");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let threads_at_full = os_threads();
    if let (Some(bind), Some(full)) = (threads_at_bind, threads_at_full) {
        println!(
            "threads: {bind} after bind, {full} with {TOTAL_CONNS} connections \
             (+{} for +{} sockets)",
            full - bind,
            TOTAL_CONNS
        );
        assert_eq!(bind, full, "connections must not cost threads");
    }

    // Interleaved traffic: submit one request on every active client,
    // then drain them — ACTIVE requests in flight across the fleet at
    // every moment, answers spot-checked against a sequential service.
    let sizes = [8usize, 9, 16];
    let mut services: Vec<CliqueService> = sizes
        .iter()
        .map(|&n| CliqueService::new(n).expect("valid n"))
        .collect();
    let started = Instant::now();
    let mut served = 0usize;
    for round in 0..ROUNDS {
        let requests: Vec<Request> = (0..ACTIVE)
            .map(|c| {
                let pick = (round * ACTIVE + c) % sizes.len();
                Request::Mode(
                    (0..sizes[pick])
                        .map(|v| vec![(v as u64 * 3 + c as u64) % 11])
                        .collect(),
                )
            })
            .collect();
        for (client, request) in clients.iter_mut().zip(&requests) {
            client.submit(request)?;
        }
        for (c, client) in clients.iter_mut().enumerate() {
            while client.pending() > 0 {
                let (_, result) = client.wait_next()?.expect("reply owed");
                let outcome = result.map_err(|e| match e {
                    ServerError::Query(e) => format!("query failed: {e}"),
                    other => format!("server failure: {other}"),
                })?;
                let pick = (round * ACTIVE + c) % sizes.len();
                let reference = requests[c]
                    .serve_on(&mut services[pick])
                    .expect("reference call");
                assert_eq!(outcome, reference, "client {c} diverged over the wire");
                served += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{ACTIVE} active + {} idle connections: {served} queries in {:.1} ms \
         ({:.0} queries/s), every answer bit-identical to sequential execution",
        TOTAL_CONNS - ACTIVE,
        elapsed.as_secs_f64() * 1e3,
        served as f64 / elapsed.as_secs_f64()
    );

    drop(idle);
    drop(clients);
    let stats = server.shutdown();
    assert_eq!(stats.connections, TOTAL_CONNS as u64);
    assert_eq!(stats.frames_in, served as u64);
    assert_eq!(stats.frames_out, served as u64);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.idle_teardowns, 0);
    assert_eq!(stats.reactors, REACTORS);
    println!(
        "graceful shutdown: {} frames in, {} frames out, {} idle teardowns",
        stats.frames_in, stats.frames_out, stats.idle_teardowns
    );
    Ok(())
}
