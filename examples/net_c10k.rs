//! The C10k shape on loopback: one reactor thread, 256 concurrent
//! connections — 240 idle, 16 active — driven from a single client
//! thread with the `submit`/`wait_next` split API. The demonstration is
//! that connections are *cheap*: the idle majority costs no threads and
//! no wakeups (an idle reactor parks in one `poll(2)` call), the active
//! minority gets bit-identical answers, and on Linux the example prints
//! the `/proc` thread count to show it stays O(shards) while the socket
//! count is O(hundreds).
//!
//! ```sh
//! cargo run --release --example net_c10k
//! ```

use congested_clique::{
    CcClient, CliqueService, NetServer, NetServerConfig, Request, ServerConfig, ServerError,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TOTAL_CONNS: usize = 256;
const ACTIVE: usize = 16;
const ROUNDS: usize = 8;

/// This process's OS thread count, where procfs exists.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards = 2usize;
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(shards).with_fleet(
            ServerConfig::new(shards)
                .with_queue_capacity(32)
                .with_coalesce_limit(8),
        ),
    )?;
    let addr = server.local_addr();
    println!("reactor server up on {addr}: {shards} shards behind one event loop");
    let threads_at_bind = os_threads();

    // The active minority: every client driven by this one thread.
    let mut clients: Vec<CcClient> = (0..ACTIVE)
        .map(|_| CcClient::connect(addr))
        .collect::<Result<_, _>>()?;
    // The idle majority: accepted, polled, never speaking.
    let idle: Vec<TcpStream> = (ACTIVE..TOTAL_CONNS)
        .map(|_| TcpStream::connect(addr))
        .collect::<Result<_, _>>()?;
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections < TOTAL_CONNS as u64 {
        assert!(Instant::now() < deadline, "connections not accepted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let threads_at_c256 = os_threads();
    if let (Some(bind), Some(full)) = (threads_at_bind, threads_at_c256) {
        println!(
            "threads: {bind} after bind, {full} with {TOTAL_CONNS} connections \
             (+{} for +{} sockets)",
            full - bind,
            TOTAL_CONNS
        );
        assert_eq!(bind, full, "connections must not cost threads");
    }

    // Interleaved traffic: submit one request on every active client,
    // then drain them — ACTIVE requests in flight across the fleet at
    // every moment, answers spot-checked against a sequential service.
    let sizes = [8usize, 9, 16];
    let mut services: Vec<CliqueService> = sizes
        .iter()
        .map(|&n| CliqueService::new(n).expect("valid n"))
        .collect();
    let started = Instant::now();
    let mut served = 0usize;
    for round in 0..ROUNDS {
        let requests: Vec<Request> = (0..ACTIVE)
            .map(|c| {
                let pick = (round * ACTIVE + c) % sizes.len();
                Request::Mode(
                    (0..sizes[pick])
                        .map(|v| vec![(v as u64 * 3 + c as u64) % 11])
                        .collect(),
                )
            })
            .collect();
        for (client, request) in clients.iter_mut().zip(&requests) {
            client.submit(request)?;
        }
        for (c, client) in clients.iter_mut().enumerate() {
            while client.pending() > 0 {
                let (_, result) = client.wait_next()?.expect("reply owed");
                let outcome = result.map_err(|e| match e {
                    ServerError::Query(e) => format!("query failed: {e}"),
                    other => format!("server failure: {other}"),
                })?;
                let pick = (round * ACTIVE + c) % sizes.len();
                let reference = requests[c]
                    .serve_on(&mut services[pick])
                    .expect("reference call");
                assert_eq!(outcome, reference, "client {c} diverged over the wire");
                served += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{ACTIVE} active + {} idle connections: {served} queries in {:.1} ms \
         ({:.0} queries/s), every answer bit-identical to sequential execution",
        TOTAL_CONNS - ACTIVE,
        elapsed.as_secs_f64() * 1e3,
        served as f64 / elapsed.as_secs_f64()
    );

    drop(idle);
    drop(clients);
    let stats = server.shutdown();
    assert_eq!(stats.connections, TOTAL_CONNS as u64);
    assert_eq!(stats.frames_in, served as u64);
    assert_eq!(stats.frames_out, served as u64);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.idle_teardowns, 0);
    println!(
        "graceful shutdown: {} frames in, {} frames out, {} idle teardowns",
        stats.frames_in, stats.frames_out, stats.idle_teardowns
    );
    Ok(())
}
