//! A client swarm against the sharded query server: a 4-shard
//! `QueryServer` owns one warm `CliqueService` fleet, and 8 client
//! threads fire a mixed routing/sorting/selection workload at it through
//! cloned `ServiceHandle`s. Shard queues are bounded (slow consumers feel
//! backpressure instead of exhausting memory), same-size requests
//! coalesce into batches on a warm session, and shutdown drains every
//! in-flight answer. Each thread spot-checks its answers against a
//! private sequential `CliqueService` — the server's contract is
//! bit-identical results, merely faster to reach under load.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```

use congested_clique::server::{Request, ServerConfig};
use congested_clique::{workloads, CliqueService, QueryServer, ServerError};
use std::time::Instant;

const CLIENTS: usize = 8;
const WAVES: usize = 6;

fn wave_requests(client: usize, wave: usize) -> Vec<Request> {
    let seed = (client * WAVES + wave) as u64;
    let n = [16usize, 25, 36][(client + wave) % 3];
    let inst = workloads::balanced_random(n, seed).unwrap();
    let hot = workloads::hotspot(n, seed).unwrap();
    let keys = workloads::zipf_keys(n, 100, seed);
    vec![
        Request::RouteOptimized(inst),
        Request::Route(hot),
        Request::Sort(keys.clone()),
        Request::Select {
            keys: keys.clone(),
            rank: (n * n / 2) as u64,
        },
        Request::Mode(keys),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ServerConfig::new(4)
        .with_queue_capacity(32)
        .with_coalesce_limit(8);
    let server = QueryServer::new(config)?;
    println!(
        "query server up: {} shards, bounded queues of {}, coalescing up to {} requests",
        server.config().shards(),
        server.config().queue_capacity(),
        server.config().coalesce_limit()
    );

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = server.handle();
            scope.spawn(move || {
                for wave in 0..WAVES {
                    for request in wave_requests(client, wave) {
                        match handle.call(request.clone()) {
                            Ok(outcome) => {
                                // Spot-check the contract on the first wave:
                                // the server's answer is bit-identical to a
                                // cold sequential service's.
                                if wave == 0 {
                                    let mut direct =
                                        CliqueService::new(request.n()).expect("valid n");
                                    let reference =
                                        request.serve_on(&mut direct).expect("direct call");
                                    assert_eq!(outcome, reference, "client {client}");
                                }
                            }
                            Err(ServerError::Query(e)) => {
                                panic!("client {client}: query failed: {e}")
                            }
                            Err(e) => panic!("client {client}: server failure: {e}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let stats = server.stats();
    let total = CLIENTS * WAVES * 5;
    println!(
        "{} clients × {} waves: {} queries in {:.1} ms ({:.0} queries/s)",
        CLIENTS,
        WAVES,
        total,
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64()
    );
    for (index, shard) in stats.shards.iter().enumerate() {
        println!(
            "shard {index}: {} requests over {} batches (max batch {}, peak queue {}), \
             {} sessions, {} rounds, {} messages",
            shard.requests,
            shard.batches,
            shard.max_batch,
            shard.peak_queue_depth,
            shard.sessions,
            shard.comm_rounds,
            shard.messages
        );
    }
    println!(
        "fleet: {} requests, mean batch {:.2}, {} warm sessions, {} protocol runs",
        stats.requests(),
        stats.mean_batch_len(),
        stats.sessions(),
        stats.completed_runs()
    );

    let final_stats = server.shutdown();
    assert_eq!(final_stats.requests(), total as u64);
    assert_eq!(final_stats.rejected(), 0);
    println!("graceful shutdown: all {} answers delivered", total);
    Ok(())
}
