//! A live stats dashboard over the wire: one connection drives pipelined
//! mixed traffic at a 4-shard `NetServer` while a *second* connection
//! polls [`CcClient::stats`] and renders a refreshing table of per-stage
//! latency percentiles (decode → queue wait → session run → reply
//! write), queue depths and request totals — the same registry snapshot
//! `CC_OBS_DUMP=1` prints on shutdown, sampled live instead. Stats
//! probes are answered inline at the wire layer, so the dashboard reads
//! never queue behind the workload they observe.
//!
//! ```sh
//! cargo run --release --example net_stats_dashboard
//! ```
//!
//! On a terminal the table redraws in place; under CI (stdout not a
//! tty) each refresh prints as its own block.

use congested_clique::obs::{HistogramSnapshot, Snapshot};
use congested_clique::workloads::{EntryPoint, RequestMix};
use congested_clique::{CcClient, NetServer, NetServerConfig, ServerConfig};
use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const WAVES: usize = 8;
const WAVE_LEN: usize = 12;

/// The per-stage histograms of the request lifecycle, in span order.
const STAGES: [(&str, &str); 4] = [
    ("decode", "net.decode_ns"),
    ("queue wait", "fleet.queue_wait_ns"),
    ("session run", "fleet.session_run_ns"),
    ("reply write", "net.write_ns"),
];

fn micros(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn stage_row(label: &str, hist: &HistogramSnapshot) -> String {
    format!(
        "  {label:<12} {:>7}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
        hist.count(),
        micros(hist.p50()),
        micros(hist.p90()),
        micros(hist.p99()),
        micros(hist.max),
    )
}

/// Renders one dashboard frame; returns the number of lines printed so
/// a tty refresh can rewind exactly that far.
fn render(snapshot: &Snapshot) -> usize {
    let mut lines = Vec::new();
    lines.push(format!(
        "frames in {:>5}   replies out {:>5}   connections {}",
        snapshot.counter("net.frames_in").unwrap_or(0),
        snapshot.counter("net.frames_out").unwrap_or(0),
        snapshot.counter("net.connections").unwrap_or(0),
    ));
    lines.push(format!(
        "  {:<12} {:>7}  {:>9}  {:>9}  {:>9}  {:>9}",
        "stage", "count", "p50 µs", "p90 µs", "p99 µs", "max µs"
    ));
    for (label, name) in STAGES {
        if let Some(hist) = snapshot.histogram(name) {
            lines.push(stage_row(label, hist));
        }
    }
    let mut queue_line = String::from("queues:");
    for (name, value) in &snapshot.gauges {
        if let Some(rest) = name.strip_prefix("fleet.shard") {
            if let Some((shard, "queue_depth")) = rest.split_once('.') {
                let peak = snapshot
                    .gauge(&format!("fleet.shard{shard}.peak_queue_depth"))
                    .unwrap_or(0);
                queue_line.push_str(&format!("  shard{shard} {value} (peak {peak})"));
            }
        }
    }
    lines.push(queue_line);
    let count = lines.len();
    println!("{}", lines.join("\n"));
    count
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A latency dashboard needs the lifecycle stamps live regardless of
    // what CC_OBS says in the environment.
    congested_clique::obs::set_timing_enabled(true);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(4).with_fleet(
            ServerConfig::new(4)
                .with_queue_capacity(32)
                .with_coalesce_limit(8),
        ),
    )?;
    let addr = server.local_addr();
    println!("net server up on {addr}: workload on one connection, dashboard on another\n");

    // Mixed multi-shard traffic, census excluded so every reply succeeds.
    let mix = RequestMix::new(vec![16usize, 25, 36])
        .with_zipf_theta(0.9)
        .with_weight(EntryPoint::SmallKeyCensus, 0);
    let total = (WAVES * WAVE_LEN) as u64;

    let workload_done = AtomicBool::new(false);
    let tty = std::io::stdout().is_terminal();
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let done = &workload_done;
        scope.spawn(move || {
            let mut client = CcClient::connect(addr).expect("workload connect");
            for wave in 0..WAVES {
                let requests = mix.generate(WAVE_LEN, wave as u64);
                let replies = client.pipeline(&requests).expect("pipeline");
                assert!(replies.iter().all(|r| r.is_ok()), "workload must succeed");
            }
            done.store(true, Ordering::Release);
        });

        // The dashboard: an independent connection sampling the registry
        // until the workload finishes, then one final settled frame.
        let mut dashboard = CcClient::connect(addr)?;
        let mut last_height = 0usize;
        loop {
            let finished = workload_done.load(Ordering::Acquire);
            let snapshot = dashboard.stats()?;
            if tty && last_height > 0 {
                // Rewind over the previous frame and redraw in place.
                print!("\x1b[{last_height}A\x1b[J");
            }
            last_height = render(&snapshot);
            if finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        Ok(())
    })?;

    // The settled snapshot is exact: one histogram sample per request at
    // every stage, and not one more.
    let mut probe = CcClient::connect(addr)?;
    let snapshot = probe.stats()?;
    for (_, name) in STAGES {
        let hist = snapshot.histogram(name).expect(name);
        assert_eq!(hist.count(), total, "{name}: one sample per request");
    }
    drop(probe);

    let stats = server.shutdown();
    assert_eq!(stats.fleet.requests(), total);
    println!("\nall {total} requests served; per-stage histogram counts match exactly");
    Ok(())
}
