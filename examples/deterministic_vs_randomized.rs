//! The paper's headline comparison, §1: "constant-round randomized
//! algorithms have been devised for the routing and sorting tasks that we
//! solve deterministically in this work. The randomized solutions are
//! about 2 times as fast."
//!
//! This example measures all contenders on the same workloads.
//!
//! ```sh
//! cargo run --release --example deterministic_vs_randomized
//! ```

use congested_clique::baselines;
use congested_clique::core::routing::{route_deterministic, route_optimized};
use congested_clique::core::sorting::sort_keys;
use congested_clique::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    println!("== routing, n = {n}, fully loaded balanced workload ==");
    let instance = workloads::balanced_random(n, 1)?;
    let det = route_deterministic(&instance)?;
    let opt = route_optimized(&instance)?;
    let rnd = baselines::route_randomized(&instance, 99)?;
    let dir = baselines::route_direct(&instance)?;
    println!(
        "  deterministic (Thm 3.7): {:>3} rounds",
        det.metrics.comm_rounds()
    );
    println!(
        "  work-optimal  (Thm 5.4): {:>3} rounds",
        opt.metrics.comm_rounds()
    );
    println!(
        "  randomized    ([7])    : {:>3} rounds  (≈ 2× faster, w.h.p. only)",
        rnd.metrics.comm_rounds()
    );
    println!(
        "  direct (no relays)     : {:>3} rounds",
        dir.metrics.comm_rounds()
    );

    println!("\n== routing, n = {n}, cyclic worst case (all messages to one neighbour) ==");
    let skew = workloads::cyclic_skew(n)?;
    let det = route_deterministic(&skew)?;
    let rnd = baselines::route_randomized(&skew, 99)?;
    let dir = baselines::route_direct(&skew)?;
    println!(
        "  deterministic (Thm 3.7): {:>3} rounds",
        det.metrics.comm_rounds()
    );
    println!(
        "  randomized    ([7])    : {:>3} rounds",
        rnd.metrics.comm_rounds()
    );
    println!(
        "  direct (no relays)     : {:>3} rounds   <- Θ(n): why relaying matters",
        dir.metrics.comm_rounds()
    );

    println!("\n== sorting, n = {n}, {} uniform keys ==", n * n);
    let keys = workloads::uniform_keys(n, 5);
    let det = sort_keys(&keys)?;
    let rnd = baselines::sort_randomized(&keys, 99)?;
    let gat = baselines::sort_gather(&keys)?;
    println!(
        "  deterministic (Thm 4.5): {:>3} rounds",
        det.metrics.comm_rounds()
    );
    println!(
        "  randomized    ([12])   : {:>3} rounds  (≈ 2× faster, w.h.p. only)",
        rnd.metrics.comm_rounds()
    );
    println!(
        "  gather at one node     : {:>3} rounds   <- Θ(n)",
        gat.metrics.comm_rounds()
    );
    Ok(())
}
