//! Distributed order statistics over telemetry: each node holds a shard
//! of latency samples; the cluster computes exact global percentiles and
//! the most common value — in a constant number of rounds, using the
//! paper's sorting machinery (Theorem 4.5 + Corollary 4.6).
//!
//! ```sh
//! cargo run --release --example distributed_percentiles
//! ```

use congested_clique::{workloads, CongestedClique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 36;
    let clique = CongestedClique::new(n)?;

    // Latency-like samples: a Zipf-flavoured long tail over 1..500 ms.
    let samples = workloads::zipf_keys(n, 500, 2024);
    let total: u64 = samples.iter().map(|s| s.len() as u64).sum();
    println!("{total} latency samples sharded over {n} nodes");

    // Exact percentiles via constant-round selection.
    for (label, pct) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let rank = ((total as f64 * pct) as u64).min(total - 1);
        let sel = clique.select(&samples, rank)?;
        println!(
            "  {label}: {} ms  (rank {rank}, {} rounds)",
            sel.key + 1,
            sel.metrics.comm_rounds()
        );
    }

    // The most common sample.
    let mode = clique.mode(&samples)?;
    println!(
        "  mode: {} ms seen {} times ({} rounds)",
        mode.key + 1,
        mode.count,
        mode.metrics.comm_rounds()
    );

    // Full global sort: node i ends with the i-th batch, e.g. to compute
    // an exact CDF shard-locally afterwards.
    let sorted = clique.sort(&samples)?;
    println!(
        "full sort: {} rounds (paper bound: 37); node 0 holds ranks [0, {})",
        sorted.metrics.comm_rounds(),
        sorted.batches[0].len()
    );

    // Duplicate-aware indices: how many distinct latencies are below each
    // of my samples (Corollary 4.6).
    let idx = clique.global_indices(&samples)?;
    println!(
        "global distinct-value indices returned to every shard ({} rounds)",
        idx.metrics.comm_rounds()
    );
    let node0_first = samples[0].first().copied().unwrap_or(0);
    let node0_first_idx = idx.indices[0].first().copied().unwrap_or(0);
    println!("  e.g. node 0's first sample {node0_first} ms has distinct-index {node0_first_idx}");
    Ok(())
}
