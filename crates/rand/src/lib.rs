//! # cc-rand — a tiny deterministic PRNG
//!
//! The workspace builds in fully offline environments, so it carries no
//! external crates. The randomized baselines, the workload generators and
//! the seeded property-style tests only need a small, *reproducible*
//! source of pseudo-randomness; this crate provides one: xoshiro256++
//! (Blackman–Vigna) seeded through splitmix64, the same construction the
//! reference implementations recommend.
//!
//! Everything here is deterministic in the seed, on every platform:
//! the same seed always produces the same stream, which the
//! determinism guarantees of the simulator (see `cc-sim`) rely on.
//!
//! ```rust
//! use cc_rand::DetRng;
//! let mut rng = DetRng::seed_from_u64(42);
//! let a = rng.gen_range_usize(0..10);
//! assert!(a < 10);
//! let mut again = DetRng::seed_from_u64(42);
//! assert_eq!(again.gen_range_usize(0..10), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Splitmix64 step: the seeding generator recommended for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographically secure — it exists to make randomized baselines
/// and workload generators reproducible, nothing more.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose whole stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; splitmix64 of any
        // seed never yields four zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        DetRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` in `range` (half-open), by rejection sampling — the
    /// result is exactly uniform, not merely modulo-folded.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Rejection zone: multiples of span fitting in u64.
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// A uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    pub fn gen_range_f64(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "invalid f64 range"
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        self.shuffle(&mut perm);
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range_usize(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range_f64(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = DetRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range_usize(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle leaving everything fixed has probability 1/50!.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_helper_matches_shuffle_contract() {
        let mut rng = DetRng::seed_from_u64(4);
        let p = rng.permutation(20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(5);
        let _ = rng.gen_range_u64(3..3);
    }
}
