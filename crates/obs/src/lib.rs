//! # cc-obs — lock-free observability for the serving stack
//!
//! Named [`Counter`]s, [`Gauge`]s, and mergeable log-bucketed latency
//! [`Histogram`]s behind a cheap-to-clone [`Registry`], plus the
//! [`Snapshot`] type the `cc-net` wire endpoint ships to clients.
//!
//! Design constraints, in order:
//!
//! 1. **Never influence control flow.** Every metric is an
//!    `AtomicU64`/`AtomicI64` cell updated with `Ordering::Relaxed`;
//!    nothing here blocks, allocates on the hot path, or feeds back into
//!    scheduling. The serving stack stays bit-deterministic with
//!    instrumentation on.
//! 2. **Cheap under contention.** Histograms stripe their bucket cells
//!    across thread shards (each thread picks a stripe once, round-robin)
//!    so concurrent recorders do not fight over one cache line; stripes
//!    are summed only at [`Histogram::snapshot`] time.
//! 3. **Compile-out / switch-off.** Wall-clock stamping goes through
//!    [`now`], which returns `None` when the `timing` cargo feature is
//!    off, when `CC_OBS=off` is set in the environment, or after
//!    [`set_timing_enabled`]`(false)`. Counters and gauges stay live in
//!    every mode — they back the stack's long-standing stats structs,
//!    whose semantics must not depend on an env var.
//!
//! Latency histograms use power-of-two buckets: bucket 0 holds exact
//! zeros and bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`
//! (the top bucket is open-ended). That makes snapshots mergeable by
//! plain bucket-wise addition — associative and lossless — which is also
//! what keeps the wire encoding in `cc-net` compact: only non-zero
//! buckets travel.
//!
//! ```rust
//! use cc_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache.hits");
//! let wait = registry.histogram("queue.wait_ns");
//! hits.incr();
//! wait.record(1500);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(1));
//! assert_eq!(snap.histogram("queue.wait_ns").unwrap().count(), 1);
//! println!("{snap}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two buckets in a [`Histogram`]: enough for any
/// `u64` value (nanosecond durations up to ~584 years).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket-cell stripes per histogram. Each recording thread is assigned
/// one stripe round-robin on first use, so up to this many threads can
/// record into the same histogram without sharing cache lines.
const HIST_STRIPES: usize = 8;

// ---------------------------------------------------------------------------
// Timing gate
// ---------------------------------------------------------------------------

const TIMING_UNSET: u8 = 0;
const TIMING_ON: u8 = 1;
const TIMING_OFF: u8 = 2;

/// Process-wide timing switch. Initialized lazily from `CC_OBS`;
/// overridable at runtime via [`set_timing_enabled`] (used by the
/// overhead bench to measure both modes in one process).
static TIMING: AtomicU8 = AtomicU8::new(TIMING_UNSET);

/// Whether wall-clock stamping is currently on. `false` whenever the
/// `timing` cargo feature is compiled out; otherwise defaults from the
/// `CC_OBS` environment variable (`off`/`0`/`false` disable) and tracks
/// the latest [`set_timing_enabled`] call.
pub fn timing_enabled() -> bool {
    if !cfg!(feature = "timing") {
        return false;
    }
    match TIMING.load(Ordering::Relaxed) {
        TIMING_ON => true,
        TIMING_OFF => false,
        _ => {
            let on = !matches!(
                std::env::var("CC_OBS").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            );
            TIMING.store(if on { TIMING_ON } else { TIMING_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the timing gate at runtime, superseding the `CC_OBS`
/// environment default. A no-op signal when the `timing` feature is
/// compiled out ([`now`] stays `None` regardless).
pub fn set_timing_enabled(on: bool) {
    TIMING.store(if on { TIMING_ON } else { TIMING_OFF }, Ordering::Relaxed);
}

/// A monotonic stamp for span timing: `Some(Instant::now())` when timing
/// is enabled, `None` otherwise. Pair with
/// [`Histogram::record_elapsed`], which ignores `None` — the disabled
/// path costs one relaxed atomic load and no syscall.
pub fn now() -> Option<Instant> {
    timing_enabled().then(Instant::now)
}

/// Nanoseconds elapsed since `start`, saturating at `u64::MAX`; `None`
/// when the stamp itself was skipped.
pub fn elapsed_ns(start: Option<Instant>) -> Option<u64> {
    start.map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonically written `u64` cell. Cloning shares the cell, so a
/// registry handle and a hot-path handle observe the same value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` (relaxed).
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrites the value. Used by metrics that republish a total
    /// (e.g. per-shard session aggregates) rather than accumulate deltas.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger — for counters that track
    /// a running maximum (largest batch, biggest frame).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight count). Cloning
/// shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds `delta` (may be negative) and returns the updated value, so
    /// an increment can feed a high-water [`record_max`](Self::record_max)
    /// without a second load.
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger — the high-water-mark
    /// primitive behind the fleet's peak queue depths.
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Round-robin stripe assignment: each thread draws its stripe index
/// once, so a fixed thread pool spreads evenly across stripes.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % HIST_STRIPES;
}

#[derive(Debug)]
struct Stripe {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

#[derive(Debug)]
struct HistogramInner {
    stripes: [Stripe; HIST_STRIPES],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free, mergeable log-bucketed histogram. Values land in
/// power-of-two buckets (see the crate docs for the bucket layout);
/// recording is three relaxed atomic ops on a thread-striped cell.
/// Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            stripes: std::array::from_fn(|_| Stripe {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// The bucket a value lands in: 0 for zero, else the value's bit length
/// (capped at the open-ended top bucket).
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the open-ended
/// top bucket). Percentile estimates quote this bound.
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates a fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let stripe = THREAD_STRIPE.with(|s| *s);
        self.0.stripes[stripe].buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since a [`now`] stamp; a `None`
    /// stamp (timing disabled at stamp time) records nothing, so the
    /// histogram's count only reflects fully timed spans.
    pub fn record_elapsed(&self, start: Option<Instant>) {
        if let Some(ns) = elapsed_ns(start) {
            self.record(ns);
        }
    }

    /// Merges the stripes into one immutable [`HistogramSnapshot`].
    /// Concurrent recorders are fine: the snapshot is some valid
    /// interleaving point, and every completed `record` before the call
    /// is included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for stripe in &self.0.stripes {
            for (acc, cell) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc = acc.saturating_add(cell.load(Ordering::Relaxed));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable view of a [`Histogram`]: the summed buckets
/// plus the exact running sum and max. This is what travels over the
/// wire in a stats reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see the crate docs for the layout.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded value (wrapping only after `u64` overflow).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Bucket-wise sum of two snapshots — associative and commutative,
    /// so shard- or node-level histograms merge in any order.
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (acc, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(other.buckets.iter()))
        {
            *acc = a.saturating_add(*b);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (`p` in percent,
    /// e.g. `99.0`): the upper edge of the bucket holding the rank-`⌈p·N⌉`
    /// observation, capped at the exact [`max`](Self::max). Returns 0 on
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate; see [`percentile`](Self::percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry + Snapshot
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Cheap to clone (all clones share one
/// map); lookups are idempotent, so independent layers can register the
/// same name and share the underlying cells — the fleet's shards all
/// record into one `fleet.queue_wait_ns` this way.
///
/// The registry mutex guards only registration and snapshotting, never
/// the hot recording path: handles returned by
/// [`counter`](Self::counter)/[`gauge`](Self::gauge)/[`histogram`](Self::histogram)
/// touch their atomic cells directly.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Reads every metric into an immutable [`Snapshot`], sorted by name
    /// within each kind (the map is ordered, so snapshots of equal state
    /// compare equal).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().unwrap();
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time copy of a whole [`Registry`]: every counter, gauge,
/// and histogram by name. This is the payload of the `cc-net` stats
/// wire endpoint; [`Display`](fmt::Display) renders the human dump
/// emitted on graceful shutdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, merged buckets)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<34} {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "  {name:<34} {v:>12}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms:{:<24} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "", "count", "p50", "p90", "p99", "max"
            )?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name:<34} {:>10} {:>12} {:>12} {:>12} {:>12}",
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exact zeros; bucket i >= 1 covers [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_land_in_expected_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[11], 1); // 1024 = 2^10 -> bit length 11
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.max, 1024);
        assert_eq!(snap.p50(), 3); // rank 3 of 5 lands in bucket 2, upper edge 3
        assert_eq!(snap.p99(), 1024); // top bucket's bound caps at exact max
    }

    #[test]
    fn percentiles_on_empty_histogram_are_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 7, 500]);
        let b = mk(&[3, 3, 3, u64::MAX]);
        let c = mk(&[42]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count(), 9);
        assert_eq!(all.max, u64::MAX);
    }

    #[test]
    fn snapshot_under_concurrent_writers_sees_complete_records() {
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 5_000;
        let h = Histogram::new();
        let stop = Arc::new(AtomicBool::new(false));
        thread::scope(|scope| {
            // A racing reader: mid-flight snapshots must be monotone and
            // never exceed the final total.
            let reader = {
                let h = h.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let c = h.snapshot().count();
                        assert!(c >= last, "snapshot count went backwards");
                        assert!(c <= WRITERS as u64 * PER_WRITER);
                        last = c;
                    }
                })
            };
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let h = h.clone();
                    scope.spawn(move || {
                        for i in 0..PER_WRITER {
                            h.record((w as u64) << 32 | i);
                        }
                    })
                })
                .collect();
            for writer in writers {
                writer.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            reader.join().unwrap();
        });
        assert_eq!(h.snapshot().count(), WRITERS as u64 * PER_WRITER);
    }

    #[test]
    fn registry_is_idempotent_and_shared() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(registry.snapshot().counter("hits"), Some(3));

        let g = registry.gauge("depth");
        g.add(5);
        g.add(-2);
        registry.gauge("depth").record_max(100);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("depth"), Some(100));

        let clone = registry.clone();
        clone.histogram("lat").record(8);
        assert_eq!(registry.snapshot().histogram("lat").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn snapshot_display_lists_every_kind() {
        let registry = Registry::new();
        registry.counter("net.frames_in").add(7);
        registry.gauge("fleet.queue_depth").set(2);
        registry.histogram("fleet.queue_wait_ns").record(900);
        let dump = registry.snapshot().to_string();
        assert!(dump.contains("counters:"));
        assert!(dump.contains("net.frames_in"));
        assert!(dump.contains("gauges:"));
        assert!(dump.contains("histograms:"));
        assert!(dump.contains("fleet.queue_wait_ns"));
    }

    #[test]
    fn timing_toggle_controls_now() {
        // `set_timing_enabled` overrides whatever CC_OBS said.
        set_timing_enabled(false);
        assert_eq!(now(), None);
        let h = Histogram::new();
        h.record_elapsed(now());
        assert!(h.snapshot().is_empty(), "disabled stamp must not record");
        set_timing_enabled(true);
        if cfg!(feature = "timing") {
            let stamp = now();
            assert!(stamp.is_some());
            h.record_elapsed(stamp);
            assert_eq!(h.snapshot().count(), 1);
        } else {
            assert_eq!(now(), None);
        }
    }
}
