//! Property tests: the three coloring algorithms agree on validity across
//! randomly generated regular and irregular bipartite multigraphs.

use cc_coloring::{
    color_alternating, color_exact, color_greedy, pad_demands_to_regular, verify_exact_regular,
    verify_proper, BipartiteMultigraph,
};
use proptest::prelude::*;

/// A random `d`-regular demand matrix on `n × n`, built as a sum of `d`
/// random permutation matrices (every doubly balanced matrix used by the
/// routing algorithms has this Birkhoff–von-Neumann shape).
fn regular_demands(n: usize, d: usize) -> impl Strategy<Value = Vec<u32>> {
    let perms = proptest::collection::vec(Just(()).prop_perturb(move |_, _| ()), 0..1);
    let _ = perms; // silence: strategy composed below instead
    proptest::collection::vec(
        proptest::sample::subsequence((0..n).collect::<Vec<_>>(), n).prop_shuffle(),
        d,
    )
    .prop_map(move |perm_list| {
        let mut demands = vec![0u32; n * n];
        for perm in perm_list {
            for (i, &j) in perm.iter().enumerate() {
                demands[i * n + j] += 1;
            }
        }
        demands
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_coloring_is_koenig(
        (n, d) in (1usize..12, 1usize..10),
        seed in any::<u64>(),
    ) {
        // Derive a deterministic permutation family from the seed.
        let mut demands = vec![0u32; n * n];
        let mut state = seed | 1;
        for _ in 0..d {
            let mut perm: Vec<usize> = (0..n).collect();
            // Fisher–Yates with a simple LCG.
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            for (i, &j) in perm.iter().enumerate() {
                demands[i * n + j] += 1;
            }
        }
        let g = BipartiteMultigraph::from_demands(n, n, &demands).unwrap();
        prop_assert_eq!(g.regular_degree().unwrap(), d);

        let exact = color_exact(&g).unwrap();
        prop_assert_eq!(exact.num_colors() as usize, d);
        verify_exact_regular(&g, &exact).unwrap();

        let alt = color_alternating(&g);
        prop_assert_eq!(alt.num_colors() as usize, d);
        verify_exact_regular(&g, &alt).unwrap();

        let greedy = color_greedy(&g);
        verify_proper(&g, &greedy).unwrap();
        prop_assert!((greedy.num_colors() as usize) <= 2 * d - 1);
    }

    #[test]
    fn irregular_graphs_color_properly(
        n in 1usize..8,
        cells in proptest::collection::vec(0u32..4, 64),
    ) {
        let demands: Vec<u32> = (0..n * n).map(|i| cells[i % cells.len()]).collect();
        let g = BipartiteMultigraph::from_demands(n, n, &demands).unwrap();
        if g.num_edges() == 0 {
            return Ok(());
        }
        let delta = g.max_degree();

        let alt = color_alternating(&g);
        prop_assert_eq!(alt.num_colors() as usize, delta);
        verify_proper(&g, &alt).unwrap();

        let greedy = color_greedy(&g);
        verify_proper(&g, &greedy).unwrap();
        prop_assert!((greedy.num_colors() as usize) <= 2 * delta - 1);
    }

    #[test]
    fn padding_then_exact_coloring(
        n in 1usize..8,
        cells in proptest::collection::vec(0u32..3, 64),
        slack in 0u32..4,
    ) {
        let demands: Vec<u32> = (0..n * n).map(|i| cells[i % cells.len()]).collect();
        let max_line = {
            let mut rows = vec![0u32; n];
            let mut cols = vec![0u32; n];
            for i in 0..n {
                for j in 0..n {
                    rows[i] += demands[i * n + j];
                    cols[j] += demands[i * n + j];
                }
            }
            rows.into_iter().chain(cols).max().unwrap_or(0)
        };
        let d = max_line + slack;
        if d == 0 {
            return Ok(());
        }
        let extra = pad_demands_to_regular(n, n, &demands, d).unwrap();
        let padded: Vec<u32> = demands.iter().zip(&extra).map(|(a, b)| a + b).collect();
        let g = BipartiteMultigraph::from_demands(n, n, &padded).unwrap();
        prop_assert_eq!(g.regular_degree().unwrap(), d as usize);
        let c = color_exact(&g).unwrap();
        verify_exact_regular(&g, &c).unwrap();
    }
}
