//! Randomized-but-deterministic property tests: the three coloring
//! algorithms agree on validity across randomly generated regular and
//! irregular bipartite multigraphs. Cases are driven by seeded
//! [`cc_rand::DetRng`] loops; every failure reproduces from its printed
//! case number.

use cc_coloring::{
    color_alternating, color_exact, color_greedy, pad_demands_to_regular, verify_exact_regular,
    verify_proper, BipartiteMultigraph,
};
use cc_rand::DetRng;

/// A random `d`-regular demand matrix on `n × n`, built as a sum of `d`
/// random permutation matrices (every doubly balanced matrix used by the
/// routing algorithms has this Birkhoff–von-Neumann shape).
fn regular_demands(n: usize, d: usize, rng: &mut DetRng) -> Vec<u32> {
    let mut demands = vec![0u32; n * n];
    for _ in 0..d {
        let perm = rng.permutation(n);
        for (i, &j) in perm.iter().enumerate() {
            demands[i * n + j] += 1;
        }
    }
    demands
}

#[test]
fn exact_coloring_is_koenig() {
    for case in 0..64u64 {
        let mut rng = DetRng::seed_from_u64(0xC010_4B15 ^ case);
        let n = rng.gen_range_usize(1..12);
        let d = rng.gen_range_usize(1..10);
        let demands = regular_demands(n, d, &mut rng);
        let g = BipartiteMultigraph::from_demands(n, n, &demands).unwrap();
        assert_eq!(g.regular_degree().unwrap(), d, "case {case}");

        let exact = color_exact(&g).unwrap();
        assert_eq!(exact.num_colors() as usize, d, "case {case}");
        verify_exact_regular(&g, &exact).unwrap();

        let alt = color_alternating(&g);
        assert_eq!(alt.num_colors() as usize, d, "case {case}");
        verify_exact_regular(&g, &alt).unwrap();

        let greedy = color_greedy(&g);
        verify_proper(&g, &greedy).unwrap();
        assert!(
            (greedy.num_colors() as usize) < 2 * d,
            "case {case}: greedy used {} colors for degree {d}",
            greedy.num_colors()
        );
    }
}

#[test]
fn irregular_graphs_color_properly() {
    for case in 0..64u64 {
        let mut rng = DetRng::seed_from_u64(0x144E_6001 ^ case);
        let n = rng.gen_range_usize(1..8);
        let cells: Vec<u32> = (0..64).map(|_| rng.gen_range_u64(0..4) as u32).collect();
        let demands: Vec<u32> = (0..n * n).map(|i| cells[i % cells.len()]).collect();
        let g = BipartiteMultigraph::from_demands(n, n, &demands).unwrap();
        if g.num_edges() == 0 {
            continue;
        }
        let delta = g.max_degree();

        let alt = color_alternating(&g);
        assert_eq!(alt.num_colors() as usize, delta, "case {case}");
        verify_proper(&g, &alt).unwrap();

        let greedy = color_greedy(&g);
        verify_proper(&g, &greedy).unwrap();
        assert!((greedy.num_colors() as usize) < 2 * delta, "case {case}");
    }
}

#[test]
fn padding_then_exact_coloring() {
    for case in 0..64u64 {
        let mut rng = DetRng::seed_from_u64(0xFA_DDED ^ case);
        let n = rng.gen_range_usize(1..8);
        let cells: Vec<u32> = (0..64).map(|_| rng.gen_range_u64(0..3) as u32).collect();
        let slack = rng.gen_range_u64(0..4) as u32;
        let demands: Vec<u32> = (0..n * n).map(|i| cells[i % cells.len()]).collect();
        let max_line = {
            let mut rows = vec![0u32; n];
            let mut cols = vec![0u32; n];
            for i in 0..n {
                for j in 0..n {
                    rows[i] += demands[i * n + j];
                    cols[j] += demands[i * n + j];
                }
            }
            rows.into_iter().chain(cols).max().unwrap_or(0)
        };
        let d = max_line + slack;
        if d == 0 {
            continue;
        }
        let extra = pad_demands_to_regular(n, n, &demands, d).unwrap();
        let padded: Vec<u32> = demands.iter().zip(&extra).map(|(a, b)| a + b).collect();
        let g = BipartiteMultigraph::from_demands(n, n, &padded).unwrap();
        assert_eq!(g.regular_degree().unwrap(), d as usize, "case {case}");
        let c = color_exact(&g).unwrap();
        verify_exact_regular(&g, &c).unwrap();
    }
}
