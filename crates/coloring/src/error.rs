use std::fmt;

/// Errors from multigraph construction and coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColoringError {
    /// The demand matrix dimensions do not match the declared vertex counts.
    DimensionMismatch {
        /// Declared number of left vertices.
        left: usize,
        /// Declared number of right vertices.
        right: usize,
        /// Length of the supplied demand slice.
        len: usize,
    },
    /// An exact coloring was requested for a graph that is not regular.
    NotRegular {
        /// A vertex whose degree deviates (`(side, index, degree)`).
        side: Side,
        /// Vertex index on that side.
        vertex: usize,
        /// That vertex's degree.
        degree: usize,
        /// The degree expected of every vertex.
        expected: usize,
    },
    /// The two sides have different vertex counts, so no perfect matching
    /// (and hence no exact regular coloring) can exist.
    SidesDiffer {
        /// Number of left vertices.
        left: usize,
        /// Number of right vertices.
        right: usize,
    },
    /// No perfect matching exists (the graph violates Hall's condition;
    /// for regular multigraphs this indicates construction bugs).
    NoPerfectMatching,
}

/// Which side of the bipartition a vertex lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left (sender) side.
    Left,
    /// The right (receiver) side.
    Right,
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::DimensionMismatch { left, right, len } => write!(
                f,
                "demand matrix of length {len} does not match {left}×{right} vertices"
            ),
            ColoringError::NotRegular {
                side,
                vertex,
                degree,
                expected,
            } => write!(
                f,
                "{side:?} vertex {vertex} has degree {degree}, expected {expected} (graph not regular)"
            ),
            ColoringError::SidesDiffer { left, right } => {
                write!(f, "bipartition sides differ in size: {left} vs {right}")
            }
            ColoringError::NoPerfectMatching => {
                write!(f, "no perfect matching exists in the multigraph")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = ColoringError::SidesDiffer { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
    }
}
