//! The classic alternating-path (Vizing-style) exact bipartite edge
//! coloring.
//!
//! Processes edges one at a time; when the first free colors at the two
//! endpoints differ, it flips an alternating two-colored path. Uses exactly
//! `Δ` colors on *any* bipartite multigraph in `O(|V|·|E|)` time. Slower
//! than [`color_exact`](crate::color_exact) but independent of it — the
//! property tests cross-check the two implementations against each other.

use crate::multigraph::{BipartiteMultigraph, EdgeColoring};

const NIL: u32 = u32::MAX;

/// Colors any bipartite multigraph with exactly `Δ` colors using
/// alternating-path augmentation.
///
/// Unlike [`color_exact`](crate::color_exact), the graph need not be
/// regular; irregular graphs still get `Δ` colors (König's theorem).
///
/// ```rust
/// use cc_coloring::{color_alternating, verify_proper, BipartiteMultigraph};
/// let g = BipartiteMultigraph::from_demands(2, 2, &[2, 0, 1, 1])?;
/// let c = color_alternating(&g);
/// assert_eq!(c.num_colors(), 3); // Δ = 3 (right vertex 0 has degree 3)
/// assert!(verify_proper(&g, &c).is_ok());
/// # Ok::<(), cc_coloring::ColoringError>(())
/// ```
pub fn color_alternating(g: &BipartiteMultigraph) -> EdgeColoring {
    let nl = g.left();
    let delta = g.max_degree();
    let num_vertices = nl + g.right();
    let mut colors = vec![NIL; g.num_edges()];
    // at[vertex][color] = edge id currently colored `color` at `vertex`.
    let mut at: Vec<u32> = vec![NIL; num_vertices * delta.max(1)];
    let slot = |vertex: usize, color: u32| vertex * delta + color as usize;

    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let uu = u as usize;
        let vv = nl + v as usize;
        let a = (0..delta as u32)
            .find(|&c| at[slot(uu, c)] == NIL)
            .expect("a free color always exists at a vertex of degree <= delta");
        if at[slot(vv, a)] == NIL {
            colors[e] = a;
            at[slot(uu, a)] = e as u32;
            at[slot(vv, a)] = e as u32;
            continue;
        }
        let b = (0..delta as u32)
            .find(|&c| at[slot(vv, c)] == NIL)
            .expect("a free color always exists at a vertex of degree <= delta");
        // Walk the a/b-alternating path starting at v (first edge colored
        // a). It cannot reach u (parity + a free at u), so flipping it is
        // safe and frees color a at v.
        let mut cur = vv;
        let mut want = a;
        let mut path = Vec::new();
        loop {
            let f = at[slot(cur, want)];
            if f == NIL {
                break;
            }
            path.push(f as usize);
            let (fu, fv) = g.edges()[f as usize];
            let (fu, fv) = (fu as usize, nl + fv as usize);
            cur = if cur == fu { fv } else { fu };
            want = if want == a { b } else { a };
        }
        for &f in &path {
            let old = colors[f];
            let new = if old == a { b } else { a };
            let (fu, fv) = g.edges()[f];
            let (fu, fv) = (fu as usize, nl + fv as usize);
            at[slot(fu, old)] = NIL;
            at[slot(fv, old)] = NIL;
            colors[f] = new;
        }
        for &f in &path {
            let c = colors[f];
            let (fu, fv) = g.edges()[f];
            let (fu, fv) = (fu as usize, nl + fv as usize);
            at[slot(fu, c)] = f as u32;
            at[slot(fv, c)] = f as u32;
        }
        debug_assert_eq!(at[slot(vv, a)], NIL);
        colors[e] = a;
        at[slot(uu, a)] = e as u32;
        at[slot(vv, a)] = e as u32;
    }

    EdgeColoring::new(colors, delta as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_exact_regular, verify_proper};

    #[test]
    fn colors_irregular_graph_with_delta() {
        let g = BipartiteMultigraph::from_demands(3, 3, &[2, 1, 0, 0, 1, 0, 0, 0, 1]).unwrap();
        let c = color_alternating(&g);
        assert_eq!(c.num_colors() as usize, g.max_degree());
        verify_proper(&g, &c).unwrap();
    }

    #[test]
    fn regular_graph_gets_perfect_matchings() {
        let demands = vec![
            2, 1, 0, //
            0, 2, 1, //
            1, 0, 2,
        ];
        let g = BipartiteMultigraph::from_demands(3, 3, &demands).unwrap();
        let c = color_alternating(&g);
        verify_exact_regular(&g, &c).unwrap();
    }

    #[test]
    fn single_edge() {
        let g = BipartiteMultigraph::from_demands(1, 1, &[1]).unwrap();
        let c = color_alternating(&g);
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.color(0), 0);
    }

    #[test]
    fn empty() {
        let g = BipartiteMultigraph::from_demands(2, 3, &[0; 6]).unwrap();
        let c = color_alternating(&g);
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    fn heavy_parallel_star() {
        // One pair with 6 parallel edges plus satellites.
        let demands = vec![
            6, 1, //
            1, 0,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        let c = color_alternating(&g);
        assert_eq!(c.num_colors() as usize, g.max_degree());
        verify_proper(&g, &c).unwrap();
    }
}
