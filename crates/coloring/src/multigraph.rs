use crate::error::{ColoringError, Side};

/// A bipartite multigraph with a canonical edge order.
///
/// Vertices are `0..left()` on the left side and `0..right()` on the right
/// side. Edges are stored in **canonical order**: ascending by
/// `(left endpoint, right endpoint, parallel-edge index)`. Independent
/// nodes of a distributed algorithm that build a graph from the same demand
/// matrix therefore obtain bit-identical edge ids — the property every
/// common-knowledge coloring in the routing/sorting algorithms relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteMultigraph {
    left: usize,
    right: usize,
    /// `(left, right)` endpoint pairs in canonical order.
    edges: Vec<(u32, u32)>,
}

impl BipartiteMultigraph {
    /// Builds a multigraph from a row-major demand matrix:
    /// `demands[i * right + j]` parallel edges join left `i` to right `j`.
    ///
    /// # Errors
    ///
    /// Returns [`ColoringError::DimensionMismatch`] if
    /// `demands.len() != left * right`.
    pub fn from_demands(left: usize, right: usize, demands: &[u32]) -> Result<Self, ColoringError> {
        if demands.len() != left * right {
            return Err(ColoringError::DimensionMismatch {
                left,
                right,
                len: demands.len(),
            });
        }
        let total: usize = demands.iter().map(|&c| c as usize).sum();
        let mut edges = Vec::with_capacity(total);
        for i in 0..left {
            for j in 0..right {
                let c = demands[i * right + j];
                for _ in 0..c {
                    edges.push((i as u32, j as u32));
                }
            }
        }
        Ok(BipartiteMultigraph { left, right, edges })
    }

    /// Builds a multigraph directly from an edge list (kept in the given
    /// order; the caller is responsible for canonicality if determinism
    /// across nodes matters).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(left: usize, right: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!((u as usize) < left, "left endpoint {u} out of range");
            assert!((v as usize) < right, "right endpoint {v} out of range");
        }
        BipartiteMultigraph { left, right, edges }
    }

    /// Number of left vertices.
    #[inline]
    pub fn left(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    #[inline]
    pub fn right(&self) -> usize {
        self.right
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list in canonical order.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Degrees of all left vertices.
    pub fn left_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.left];
        for &(u, _) in &self.edges {
            d[u as usize] += 1;
        }
        d
    }

    /// Degrees of all right vertices.
    pub fn right_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.right];
        for &(_, v) in &self.edges {
            d[v as usize] += 1;
        }
        d
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.left_degrees()
            .into_iter()
            .chain(self.right_degrees())
            .max()
            .unwrap_or(0)
    }

    /// Checks that the graph is `d`-regular on both sides with equal side
    /// sizes, returning `d`.
    ///
    /// # Errors
    ///
    /// [`ColoringError::SidesDiffer`] or [`ColoringError::NotRegular`].
    pub fn regular_degree(&self) -> Result<usize, ColoringError> {
        if self.left != self.right {
            return Err(ColoringError::SidesDiffer {
                left: self.left,
                right: self.right,
            });
        }
        if self.left == 0 {
            return Ok(0);
        }
        let d = self.edges.len() / self.left;
        for (i, deg) in self.left_degrees().into_iter().enumerate() {
            if deg != d {
                return Err(ColoringError::NotRegular {
                    side: Side::Left,
                    vertex: i,
                    degree: deg,
                    expected: d,
                });
            }
        }
        for (j, deg) in self.right_degrees().into_iter().enumerate() {
            if deg != d {
                return Err(ColoringError::NotRegular {
                    side: Side::Right,
                    vertex: j,
                    degree: deg,
                    expected: d,
                });
            }
        }
        Ok(d)
    }
}

/// A proper edge coloring: `colors[e]` is the color of edge `e` (by
/// canonical edge id), with colors in `0..num_colors`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<u32>,
    num_colors: u32,
}

impl EdgeColoring {
    pub(crate) fn new(colors: Vec<u32>, num_colors: u32) -> Self {
        debug_assert!(colors.iter().all(|&c| c < num_colors || num_colors == 0));
        EdgeColoring { colors, num_colors }
    }

    /// Color of edge `e`.
    #[inline]
    pub fn color(&self, e: usize) -> u32 {
        self.colors[e]
    }

    /// The full color array, indexed by canonical edge id.
    #[inline]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// Number of colors used (colors are `0..num_colors`).
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }
}

/// Maps `(left, right, parallel-index)` triples to canonical edge ids for a
/// demand matrix, via prefix sums.
///
/// Used by distributed senders to locate *their* edges inside the common
/// canonical edge order without materializing the edge list:
///
/// ```rust
/// use cc_coloring::EdgeIndexer;
/// let demands = vec![
///     2, 1, //
///     0, 3,
/// ];
/// let idx = EdgeIndexer::new(2, 2, &demands);
/// assert_eq!(idx.edge_id(0, 0, 0), 0);
/// assert_eq!(idx.edge_id(0, 0, 1), 1);
/// assert_eq!(idx.edge_id(0, 1, 0), 2);
/// assert_eq!(idx.edge_id(1, 1, 2), 5);
/// assert_eq!(idx.num_edges(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct EdgeIndexer {
    right: usize,
    /// `prefix[i*right + j]` = number of edges strictly before cell `(i, j)`.
    prefix: Vec<u64>,
    total: u64,
}

impl EdgeIndexer {
    /// Builds the indexer for a row-major `left × right` demand matrix.
    ///
    /// # Panics
    ///
    /// Panics if `demands.len() != left * right`.
    pub fn new(left: usize, right: usize, demands: &[u32]) -> Self {
        assert_eq!(demands.len(), left * right, "demand matrix shape mismatch");
        let mut prefix = Vec::with_capacity(demands.len());
        let mut acc = 0u64;
        for &c in demands {
            prefix.push(acc);
            acc += u64::from(c);
        }
        EdgeIndexer {
            right,
            prefix,
            total: acc,
        }
    }

    /// Canonical edge id of the `k`-th parallel edge from left `i` to
    /// right `j`.
    #[inline]
    pub fn edge_id(&self, i: usize, j: usize, k: usize) -> usize {
        (self.prefix[i * self.right + j] + k as u64) as usize
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.total as usize
    }
}

/// Pads a `rows × cols` demand matrix so that every row and column sums to
/// exactly `d`, returning the matrix of *added* (dummy) demands.
///
/// This realizes the paper's "add empty dummy messages" device, which
/// upgrades "at most" load bounds to the exact regularity König's theorem
/// needs. Padding always succeeds when every row and column sum is at most
/// `d` and (for square matrices) total deficits balance — parallel edges
/// make any cell usable.
///
/// # Errors
///
/// Returns [`ColoringError::NotRegular`] if some row or column already
/// exceeds `d`, and [`ColoringError::SidesDiffer`] if `rows != cols`
/// (square matrices are the only shape the algorithms need, and the only
/// one for which row and column deficits always balance).
pub fn pad_demands_to_regular(
    rows: usize,
    cols: usize,
    demands: &[u32],
    d: u32,
) -> Result<Vec<u32>, ColoringError> {
    assert_eq!(demands.len(), rows * cols, "demand matrix shape mismatch");
    if rows != cols {
        return Err(ColoringError::SidesDiffer {
            left: rows,
            right: cols,
        });
    }
    let mut row_sum = vec![0u64; rows];
    let mut col_sum = vec![0u64; cols];
    for i in 0..rows {
        for j in 0..cols {
            let c = u64::from(demands[i * cols + j]);
            row_sum[i] += c;
            col_sum[j] += c;
        }
    }
    for (i, &s) in row_sum.iter().enumerate() {
        if s > u64::from(d) {
            return Err(ColoringError::NotRegular {
                side: Side::Left,
                vertex: i,
                degree: s as usize,
                expected: d as usize,
            });
        }
    }
    for (j, &s) in col_sum.iter().enumerate() {
        if s > u64::from(d) {
            return Err(ColoringError::NotRegular {
                side: Side::Right,
                vertex: j,
                degree: s as usize,
                expected: d as usize,
            });
        }
    }
    let mut extra = vec![0u32; rows * cols];
    let mut j = 0usize;
    for i in 0..rows {
        let mut need = u64::from(d) - row_sum[i];
        while need > 0 {
            debug_assert!(j < cols, "column deficits exhausted before row deficits");
            let col_need = u64::from(d) - col_sum[j];
            if col_need == 0 {
                j += 1;
                continue;
            }
            let add = need.min(col_need);
            extra[i * cols + j] += u32::try_from(add).expect("padding fits u32");
            col_sum[j] += add;
            need -= add;
        }
    }
    Ok(extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_edge_order() {
        let demands = vec![
            2, 0, //
            1, 1,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        assert_eq!(g.edges(), &[(0, 0), (0, 0), (1, 0), (1, 1)]);
        assert_eq!(g.left_degrees(), vec![2, 2]);
        assert_eq!(g.right_degrees(), vec![3, 1]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn regular_degree_detects_irregularity() {
        let demands = vec![
            2, 0, //
            1, 1,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        assert!(matches!(
            g.regular_degree(),
            Err(ColoringError::NotRegular { .. })
        ));

        let regular = vec![
            1, 1, //
            1, 1,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &regular).unwrap();
        assert_eq!(g.regular_degree().unwrap(), 2);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        assert!(matches!(
            BipartiteMultigraph::from_demands(2, 2, &[1, 2, 3]),
            Err(ColoringError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn indexer_matches_materialized_order() {
        let demands = vec![
            0, 3, 1, //
            2, 0, 2, //
            1, 1, 2,
        ];
        let g = BipartiteMultigraph::from_demands(3, 3, &demands).unwrap();
        let idx = EdgeIndexer::new(3, 3, &demands);
        assert_eq!(idx.num_edges(), g.num_edges());
        let mut seen = 0usize;
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..demands[i * 3 + j] as usize {
                    let id = idx.edge_id(i, j, k);
                    assert_eq!(id, seen);
                    assert_eq!(g.edges()[id], (i as u32, j as u32));
                    seen += 1;
                }
            }
        }
    }

    #[test]
    fn padding_regularizes() {
        let demands = vec![
            1, 0, 2, //
            0, 2, 0, //
            1, 1, 0,
        ];
        let d = 4;
        let extra = pad_demands_to_regular(3, 3, &demands, d).unwrap();
        let mut padded = vec![0u32; 9];
        for i in 0..9 {
            padded[i] = demands[i] + extra[i];
        }
        let g = BipartiteMultigraph::from_demands(3, 3, &padded).unwrap();
        assert_eq!(g.regular_degree().unwrap(), d as usize);
    }

    #[test]
    fn padding_rejects_overfull_rows() {
        let demands = vec![
            5, 0, //
            0, 0,
        ];
        assert!(matches!(
            pad_demands_to_regular(2, 2, &demands, 4),
            Err(ColoringError::NotRegular { .. })
        ));
    }

    #[test]
    fn padding_zero_matrix() {
        let extra = pad_demands_to_regular(2, 2, &[0, 0, 0, 0], 3).unwrap();
        let g = BipartiteMultigraph::from_demands(2, 2, &extra).unwrap();
        assert_eq!(g.regular_degree().unwrap(), 3);
    }
}
