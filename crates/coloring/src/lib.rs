//! # cc-coloring — edge colorings of regular bipartite multigraphs
//!
//! König's line coloring theorem (Theorem 3.2 of Lenzen, PODC 2013) states
//! that every `d`-regular bipartite multigraph decomposes into `d` perfect
//! matchings. Every communication primitive of the paper — Corollary 3.3's
//! two-round exchange, Algorithm 2's cross-set balancing — relies on all
//! nodes locally computing *the same* such decomposition from common
//! knowledge.
//!
//! This crate provides:
//!
//! * [`BipartiteMultigraph`] — a canonical edge-ordered multigraph built
//!   from demand matrices, so independent nodes construct bit-identical
//!   graphs (and hence identical colorings) from identical inputs;
//! * [`color_exact`] — an exact `d`-color König coloring via Euler
//!   splitting with perfect-matching peeling at odd degrees (the
//!   `O(|E| log Δ)` strategy of Cole–Ost–Schirra \[1\], simplified);
//! * [`color_alternating`] — the classic alternating-path algorithm
//!   (exactly `Δ` colors on any bipartite multigraph, `O(|V|·|E|)`), used
//!   as a cross-check oracle and for small instances;
//! * [`color_greedy`] — greedy line-graph coloring with at most `2Δ − 1`
//!   colors (footnote 3 of the paper, the variant its §5 relies on);
//! * [`verify_proper`] / [`verify_exact_regular`] — validity checkers used
//!   pervasively in tests.
//!
//! ## Example
//!
//! ```rust
//! use cc_coloring::{color_exact, BipartiteMultigraph};
//!
//! // A 3-regular bipartite multigraph on 2 + 2 vertices.
//! let demands = vec![
//!     2, 1, // left 0 sends 2 edges to right 0, 1 edge to right 1
//!     1, 2, // left 1 sends 1 edge to right 0, 2 edges to right 1
//! ];
//! let g = BipartiteMultigraph::from_demands(2, 2, &demands)?;
//! let coloring = color_exact(&g)?;
//! assert_eq!(coloring.num_colors(), 3); // exactly d colors
//! # Ok::<(), cc_coloring::ColoringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alternating;
mod error;
mod euler;
mod greedy;
mod matching;
mod multigraph;
mod verify;

pub use alternating::color_alternating;
pub use error::ColoringError;
pub use euler::color_exact;
pub use greedy::color_greedy;
pub use matching::perfect_matching;
pub use multigraph::{pad_demands_to_regular, BipartiteMultigraph, EdgeColoring, EdgeIndexer};
pub use verify::{verify_exact_regular, verify_proper, VerifyError};

/// Analytical work estimate for an exact coloring: `|E| · ⌈log₂ Δ⌉`
/// (the Cole–Ost–Schirra bound \[1\] the paper charges in §5).
pub fn exact_coloring_work(num_edges: usize, degree: usize) -> u64 {
    let log_d = if degree <= 2 {
        1
    } else {
        u64::from(usize::BITS - (degree - 1).leading_zeros())
    };
    (num_edges as u64) * log_d
}
