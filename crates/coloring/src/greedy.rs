//! Greedy line-graph coloring.
//!
//! Footnote 3 of the paper: "a simple greedy coloring of the line graph
//! results in at most 2d−1 (imperfect) matchings, which is sufficient for
//! our purposes. This will be used in Section 5 to reduce the amount of
//! computations performed by the algorithm." The color classes are
//! matchings but not necessarily *perfect* matchings, and up to `2Δ − 1`
//! colors may be needed; the §5-optimized routing algorithm absorbs the
//! factor-2 with a constant-factor message-size increase.

use crate::multigraph::{BipartiteMultigraph, EdgeColoring};

/// Greedily colors the edges of any bipartite multigraph with at most
/// `2Δ − 1` colors: each edge takes the smallest color unused at both of
/// its endpoints.
///
/// Runs in `O(|E| · Δ/64)` using per-vertex color bitsets — linear in
/// practice, which is exactly why §5 of the paper prefers it over the
/// exact coloring.
///
/// ```rust
/// use cc_coloring::{color_greedy, verify_proper, BipartiteMultigraph};
/// let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1])?;
/// let c = color_greedy(&g);
/// assert!(c.num_colors() <= 3); // 2Δ − 1 with Δ = 2
/// assert!(verify_proper(&g, &c).is_ok());
/// # Ok::<(), cc_coloring::ColoringError>(())
/// ```
pub fn color_greedy(g: &BipartiteMultigraph) -> EdgeColoring {
    let nl = g.left();
    let delta = g.max_degree();
    if g.num_edges() == 0 {
        return EdgeColoring::new(Vec::new(), 0);
    }
    let palette = 2 * delta - 1;
    let words = palette.div_ceil(64);
    let mut used_l = vec![0u64; nl * words];
    let mut used_r = vec![0u64; g.right() * words];
    let mut colors = vec![0u32; g.num_edges()];
    let mut max_color = 0u32;

    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let lbase = u as usize * words;
        let rbase = v as usize * words;
        let mut color = None;
        for w in 0..words {
            let occupied = used_l[lbase + w] | used_r[rbase + w];
            if occupied != u64::MAX {
                let bit = (!occupied).trailing_zeros();
                let c = (w * 64) as u32 + bit;
                if (c as usize) < palette {
                    color = Some(c);
                    break;
                }
            }
        }
        let c = color.expect("2Δ−1 colors always suffice for greedy line coloring");
        colors[e] = c;
        max_color = max_color.max(c);
        used_l[lbase + (c / 64) as usize] |= 1u64 << (c % 64);
        used_r[rbase + (c / 64) as usize] |= 1u64 << (c % 64);
    }

    EdgeColoring::new(colors, max_color + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_proper;

    #[test]
    fn within_two_delta_bound() {
        let demands = vec![
            3, 2, 0, //
            0, 3, 2, //
            2, 0, 3,
        ];
        let g = BipartiteMultigraph::from_demands(3, 3, &demands).unwrap();
        let c = color_greedy(&g);
        verify_proper(&g, &c).unwrap();
        assert!((c.num_colors() as usize) < 2 * g.max_degree());
    }

    #[test]
    fn one_regular_uses_one_color() {
        let g = BipartiteMultigraph::from_demands(3, 3, &[1, 0, 0, 0, 1, 0, 0, 0, 1]).unwrap();
        let c = color_greedy(&g);
        assert_eq!(c.num_colors(), 1);
    }

    #[test]
    fn parallel_edges_all_distinct_colors() {
        let g = BipartiteMultigraph::from_demands(1, 1, &[7]).unwrap();
        let c = color_greedy(&g);
        verify_proper(&g, &c).unwrap();
        assert_eq!(c.num_colors(), 7);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[0; 4]).unwrap();
        let c = color_greedy(&g);
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    fn wide_palette_crosses_word_boundary() {
        // Δ = 70 forces palettes wider than one 64-bit word.
        let g = BipartiteMultigraph::from_demands(1, 1, &[70]).unwrap();
        let c = color_greedy(&g);
        verify_proper(&g, &c).unwrap();
        assert_eq!(c.num_colors(), 70);
    }
}
