//! Perfect matchings in bipartite multigraphs via Hopcroft–Karp.
//!
//! Regular bipartite multigraphs always contain perfect matchings (Hall's
//! theorem); the exact König coloring peels one whenever its current degree
//! is odd.

use crate::error::ColoringError;
use crate::multigraph::BipartiteMultigraph;

/// Finds a perfect matching of the multigraph, returned as one canonical
/// edge id per left vertex (`result[u]` is an edge incident to left `u`,
/// and the right endpoints are all distinct).
///
/// Runs Hopcroft–Karp on the support (parallel edges collapsed), in
/// `O(|E'|·√V)` where `|E'|` is the support size, then maps each matched
/// pair back to its smallest canonical parallel edge.
///
/// # Errors
///
/// Returns [`ColoringError::SidesDiffer`] for unequal sides and
/// [`ColoringError::NoPerfectMatching`] if the graph has none (a regular
/// multigraph always does).
pub fn perfect_matching(g: &BipartiteMultigraph) -> Result<Vec<usize>, ColoringError> {
    let n = g.left();
    if g.left() != g.right() {
        return Err(ColoringError::SidesDiffer {
            left: g.left(),
            right: g.right(),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Build the support adjacency with a representative (smallest) edge id
    // per (u, v) pair. Edges are canonically sorted, so the first edge seen
    // for a pair is the smallest id.
    let mut adj: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n];
    for (eid, &(u, v)) in g.edges().iter().enumerate() {
        let row = &mut adj[u as usize];
        // Fast path: canonically ordered edges keep parallels adjacent.
        if row.last().map(|&(w, _)| w) == Some(v) {
            continue;
        }
        if row.iter().any(|&(w, _)| w == v) {
            continue;
        }
        row.push((v, eid));
    }

    const NIL: u32 = u32::MAX;
    let mut match_l = vec![NIL; n]; // right vertex matched to left u
    let mut match_r = vec![NIL; n]; // left vertex matched to right v
    let mut dist = vec![0u32; n];
    let mut queue = Vec::with_capacity(n);

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        const INF: u32 = u32::MAX;
        for u in 0..n {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push(u as u32);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &(v, _) in &adj[u] {
                let w = match_r[v as usize];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along the layering.
        fn try_augment(
            u: usize,
            adj: &[Vec<(u32, usize)>],
            dist: &mut [u32],
            match_l: &mut [u32],
            match_r: &mut [u32],
        ) -> bool {
            for idx in 0..adj[u].len() {
                let (v, _) = adj[u][idx];
                let w = match_r[v as usize];
                let ok = if w == u32::MAX {
                    true
                } else if dist[w as usize] == dist[u] + 1 {
                    try_augment(w as usize, adj, dist, match_l, match_r)
                } else {
                    false
                };
                if ok {
                    match_l[u] = v;
                    match_r[v as usize] = u as u32;
                    return true;
                }
            }
            dist[u] = u32::MAX;
            false
        }
        for u in 0..n {
            if match_l[u] == NIL {
                let _ = try_augment(u, &adj, &mut dist, &mut match_l, &mut match_r);
            }
        }
    }

    if match_l.contains(&NIL) {
        return Err(ColoringError::NoPerfectMatching);
    }

    // Map matched pairs back to representative canonical edge ids.
    let mut result = vec![usize::MAX; n];
    for u in 0..n {
        let v = match_l[u];
        let eid = adj[u]
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
            .expect("matched pair must exist in adjacency");
        result[u] = eid;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_is_perfect(g: &BipartiteMultigraph, m: &[usize]) {
        let n = g.left();
        assert_eq!(m.len(), n);
        let mut left_seen = vec![false; n];
        let mut right_seen = vec![false; n];
        for &eid in m {
            let (u, v) = g.edges()[eid];
            assert!(!left_seen[u as usize], "left {u} matched twice");
            assert!(!right_seen[v as usize], "right {v} matched twice");
            left_seen[u as usize] = true;
            right_seen[v as usize] = true;
        }
    }

    #[test]
    fn identity_matching() {
        let demands = vec![
            1, 0, //
            0, 1,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        let m = perfect_matching(&g).unwrap();
        matching_is_perfect(&g, &m);
    }

    #[test]
    fn regular_multigraph_has_pm() {
        // 3-regular on 4+4 with parallel edges.
        let demands = vec![
            2, 1, 0, 0, //
            0, 2, 1, 0, //
            0, 0, 2, 1, //
            1, 0, 0, 2,
        ];
        let g = BipartiteMultigraph::from_demands(4, 4, &demands).unwrap();
        assert_eq!(g.regular_degree().unwrap(), 3);
        let m = perfect_matching(&g).unwrap();
        matching_is_perfect(&g, &m);
    }

    #[test]
    fn detects_no_matching() {
        // Left {0,1} both connect only to right 0.
        let demands = vec![
            1, 0, //
            1, 0,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        assert_eq!(perfect_matching(&g), Err(ColoringError::NoPerfectMatching));
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteMultigraph::from_demands(0, 0, &[]).unwrap();
        assert!(perfect_matching(&g).unwrap().is_empty());
    }

    #[test]
    fn representative_edges_are_real() {
        let demands = vec![
            3, 0, //
            0, 3,
        ];
        let g = BipartiteMultigraph::from_demands(2, 2, &demands).unwrap();
        let m = perfect_matching(&g).unwrap();
        matching_is_perfect(&g, &m);
        for &eid in &m {
            assert!(eid < g.num_edges());
        }
    }
}
