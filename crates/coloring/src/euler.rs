//! Exact König edge coloring via Euler splitting.
//!
//! A `d`-regular bipartite multigraph with even `d` splits into two
//! `d/2`-regular halves by traversing an Euler circuit of every component
//! and assigning edges alternately (every circuit has even length in a
//! bipartite graph, so the alternation is consistent). Odd `d` first peels
//! one perfect matching. Recursing yields exactly `d` colors, in
//! `O(|E| log d)` time plus the matching peels.

use crate::error::ColoringError;
use crate::matching::perfect_matching;
use crate::multigraph::{BipartiteMultigraph, EdgeColoring};

/// Computes an exact `d`-color edge coloring of a `d`-regular bipartite
/// multigraph (König / Theorem 3.2 of the paper).
///
/// The computation is deterministic: identical graphs yield identical
/// colorings, which is what lets all nodes of the clique agree on a
/// routing schedule without communication.
///
/// # Errors
///
/// Returns an error if the graph is not regular with equal sides
/// ([`ColoringError::NotRegular`] / [`ColoringError::SidesDiffer`]).
///
/// ```rust
/// use cc_coloring::{color_exact, verify_exact_regular, BipartiteMultigraph};
/// let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1])?;
/// let c = color_exact(&g)?;
/// assert!(verify_exact_regular(&g, &c).is_ok());
/// # Ok::<(), cc_coloring::ColoringError>(())
/// ```
pub fn color_exact(g: &BipartiteMultigraph) -> Result<EdgeColoring, ColoringError> {
    let d = g.regular_degree()?;
    let mut colors = vec![0u32; g.num_edges()];
    if d > 0 {
        let all: Vec<usize> = (0..g.num_edges()).collect();
        color_rec(g, all, d, 0, &mut colors)?;
    }
    Ok(EdgeColoring::new(colors, d as u32))
}

fn color_rec(
    g: &BipartiteMultigraph,
    edge_ids: Vec<usize>,
    d: usize,
    base_color: u32,
    colors: &mut [u32],
) -> Result<(), ColoringError> {
    debug_assert_eq!(edge_ids.len(), d * g.left());
    match d {
        0 => Ok(()),
        1 => {
            for &e in &edge_ids {
                colors[e] = base_color;
            }
            Ok(())
        }
        d if d % 2 == 1 => {
            // Peel a perfect matching, color it `base_color`, recurse on
            // the even-degree remainder.
            let sub_pairs: Vec<(u32, u32)> = edge_ids.iter().map(|&e| g.edges()[e]).collect();
            let sub = BipartiteMultigraph::from_edges(g.left(), g.right(), sub_pairs);
            let matched_sub = perfect_matching(&sub)?;
            let mut in_matching = vec![false; edge_ids.len()];
            for &sub_eid in &matched_sub {
                in_matching[sub_eid] = true;
            }
            let mut rest = Vec::with_capacity(edge_ids.len() - g.left());
            for (i, &e) in edge_ids.iter().enumerate() {
                if in_matching[i] {
                    colors[e] = base_color;
                } else {
                    rest.push(e);
                }
            }
            color_rec(g, rest, d - 1, base_color + 1, colors)
        }
        d => {
            let (half_a, half_b) = euler_split(g, &edge_ids);
            debug_assert_eq!(half_a.len(), half_b.len());
            color_rec(g, half_a, d / 2, base_color, colors)?;
            color_rec(g, half_b, d / 2, base_color + (d / 2) as u32, colors)
        }
    }
}

/// Splits an even-degree edge set into two halves such that every vertex
/// keeps exactly half its degree in each (Euler partition).
fn euler_split(g: &BipartiteMultigraph, edge_ids: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let nl = g.left();
    let num_vertices = nl + g.right();
    // Local incidence: positions into `edge_ids`.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
    for (pos, &e) in edge_ids.iter().enumerate() {
        let (u, v) = g.edges()[e];
        adj[u as usize].push(pos as u32);
        adj[nl + v as usize].push(pos as u32);
    }
    let mut ptr = vec![0usize; num_vertices];
    let mut used = vec![false; edge_ids.len()];
    let mut half_a = Vec::with_capacity(edge_ids.len() / 2);
    let mut half_b = Vec::with_capacity(edge_ids.len() / 2);

    let other_endpoint = |pos: usize, at: usize| -> usize {
        let (u, v) = g.edges()[edge_ids[pos]];
        let (u, v) = (u as usize, nl + v as usize);
        if at == u {
            v
        } else {
            debug_assert_eq!(at, v);
            u
        }
    };

    // Hierholzer per component; the spliced circuit accumulates in
    // `circuit` in (reverse) circuit order, which is itself a circuit.
    let mut stack: Vec<(usize, u32)> = Vec::new();
    let mut circuit: Vec<u32> = Vec::new();
    const NO_EDGE: u32 = u32::MAX;
    for start in 0..num_vertices {
        if ptr[start] >= adj[start].len() {
            continue;
        }
        circuit.clear();
        stack.push((start, NO_EDGE));
        while let Some(&(v, e_in)) = stack.last() {
            let mut advanced = false;
            while ptr[v] < adj[v].len() {
                let pos = adj[v][ptr[v]] as usize;
                ptr[v] += 1;
                if used[pos] {
                    continue;
                }
                used[pos] = true;
                stack.push((other_endpoint(pos, v), pos as u32));
                advanced = true;
                break;
            }
            if !advanced {
                stack.pop();
                if e_in != NO_EDGE {
                    circuit.push(e_in);
                }
            }
        }
        debug_assert!(
            circuit.len().is_multiple_of(2),
            "bipartite circuits have even length"
        );
        for (i, &pos) in circuit.iter().enumerate() {
            if i % 2 == 0 {
                half_a.push(edge_ids[pos as usize]);
            } else {
                half_b.push(edge_ids[pos as usize]);
            }
        }
    }
    (half_a, half_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_exact_regular;

    fn check(demands: &[u32], n: usize) {
        let g = BipartiteMultigraph::from_demands(n, n, demands).unwrap();
        let c = color_exact(&g).unwrap();
        verify_exact_regular(&g, &c).unwrap();
    }

    #[test]
    fn one_regular() {
        check(&[1, 0, 0, 1], 2);
    }

    #[test]
    fn two_regular_cycle() {
        check(&[1, 1, 1, 1], 2);
    }

    #[test]
    fn odd_degree_uses_matching_peel() {
        check(&[2, 1, 1, 2], 2);
    }

    #[test]
    fn power_of_two_degree() {
        // 4-regular on 3+3.
        check(
            &[
                2, 1, 1, //
                1, 2, 1, //
                1, 1, 2,
            ],
            3,
        );
    }

    #[test]
    fn all_parallel_edges() {
        // Degree-5 with every edge parallel on the diagonal.
        check(&[5, 0, 0, 5], 2);
    }

    #[test]
    fn rejects_irregular() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[2, 0, 1, 1]).unwrap();
        assert!(color_exact(&g).is_err());
    }

    #[test]
    fn empty_graph_zero_colors() {
        let g = BipartiteMultigraph::from_demands(0, 0, &[]).unwrap();
        let c = color_exact(&g).unwrap();
        assert_eq!(c.num_colors(), 0);
    }

    #[test]
    fn permutation_matrix_sums() {
        // Sum of three permutation demand matrices on 4 nodes is 3-regular.
        let demands = vec![
            1, 1, 1, 0, //
            1, 1, 0, 1, //
            1, 0, 1, 1, //
            0, 1, 1, 1,
        ];
        check(&demands, 4);
    }

    #[test]
    fn deterministic_across_calls() {
        let demands = vec![
            2, 1, 1, //
            1, 2, 1, //
            1, 1, 2,
        ];
        let g = BipartiteMultigraph::from_demands(3, 3, &demands).unwrap();
        let c1 = color_exact(&g).unwrap();
        let c2 = color_exact(&g).unwrap();
        assert_eq!(c1, c2);
    }
}
