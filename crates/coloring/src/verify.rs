//! Validity checkers for edge colorings.

use crate::multigraph::{BipartiteMultigraph, EdgeColoring};
use std::fmt;

/// A violation found while verifying an edge coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The coloring covers a different number of edges than the graph has.
    LengthMismatch {
        /// Edges in the graph.
        edges: usize,
        /// Entries in the coloring.
        entries: usize,
    },
    /// An edge carries a color at or above `num_colors`.
    ColorOutOfRange {
        /// Offending edge id.
        edge: usize,
        /// Its color.
        color: u32,
        /// Declared palette size.
        num_colors: u32,
    },
    /// Two edges of the same color share an endpoint.
    Conflict {
        /// First edge id.
        first: usize,
        /// Second edge id.
        second: usize,
        /// The shared color.
        color: u32,
    },
    /// For exact regular verification: a color class is not a perfect
    /// matching.
    NotPerfectMatching {
        /// The deficient color.
        color: u32,
        /// Number of edges in its class.
        class_size: usize,
        /// Expected class size (`n`).
        expected: usize,
    },
    /// For exact regular verification: more colors than the degree.
    TooManyColors {
        /// Colors used.
        used: u32,
        /// The regular degree.
        degree: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::LengthMismatch { edges, entries } => {
                write!(f, "coloring has {entries} entries for {edges} edges")
            }
            VerifyError::ColorOutOfRange {
                edge,
                color,
                num_colors,
            } => write!(f, "edge {edge} has color {color} >= palette {num_colors}"),
            VerifyError::Conflict {
                first,
                second,
                color,
            } => write!(
                f,
                "edges {first} and {second} share an endpoint and color {color}"
            ),
            VerifyError::NotPerfectMatching {
                color,
                class_size,
                expected,
            } => write!(
                f,
                "color class {color} has {class_size} edges, expected a perfect matching of {expected}"
            ),
            VerifyError::TooManyColors { used, degree } => {
                write!(f, "{used} colors used on a {degree}-regular graph")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies that a coloring is *proper*: every color class is a matching
/// (no two equally colored edges share an endpoint) and all colors lie in
/// the declared palette.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_proper(g: &BipartiteMultigraph, c: &EdgeColoring) -> Result<(), VerifyError> {
    if c.colors().len() != g.num_edges() {
        return Err(VerifyError::LengthMismatch {
            edges: g.num_edges(),
            entries: c.colors().len(),
        });
    }
    let palette = c.num_colors() as usize;
    const NIL: usize = usize::MAX;
    let mut left_seen = vec![NIL; g.left() * palette];
    let mut right_seen = vec![NIL; g.right() * palette];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let color = c.color(e);
        if color >= c.num_colors() {
            return Err(VerifyError::ColorOutOfRange {
                edge: e,
                color,
                num_colors: c.num_colors(),
            });
        }
        let ls = u as usize * palette + color as usize;
        if left_seen[ls] != NIL {
            return Err(VerifyError::Conflict {
                first: left_seen[ls],
                second: e,
                color,
            });
        }
        left_seen[ls] = e;
        let rs = v as usize * palette + color as usize;
        if right_seen[rs] != NIL {
            return Err(VerifyError::Conflict {
                first: right_seen[rs],
                second: e,
                color,
            });
        }
        right_seen[rs] = e;
    }
    Ok(())
}

/// Verifies the full König property for a `d`-regular multigraph: the
/// coloring is proper, uses exactly `d` colors, and every color class is a
/// perfect matching.
///
/// # Errors
///
/// Returns the first violation found, or propagates regularity errors as
/// a panic-free [`VerifyError`] via the proper check.
///
/// # Panics
///
/// Panics if the graph is not regular (callers verify exact colorings only
/// on graphs they constructed as regular).
pub fn verify_exact_regular(g: &BipartiteMultigraph, c: &EdgeColoring) -> Result<(), VerifyError> {
    let d = g
        .regular_degree()
        .expect("verify_exact_regular requires a regular multigraph");
    verify_proper(g, c)?;
    if c.num_colors() as usize > d {
        return Err(VerifyError::TooManyColors {
            used: c.num_colors(),
            degree: d,
        });
    }
    let mut class_sizes = vec![0usize; c.num_colors() as usize];
    for e in 0..g.num_edges() {
        class_sizes[c.color(e) as usize] += 1;
    }
    for (color, &size) in class_sizes.iter().enumerate() {
        if size != g.left() {
            return Err(VerifyError::NotPerfectMatching {
                color: color as u32,
                class_size: size,
                expected: g.left(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_coloring() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1]).unwrap();
        // Edges: (0,0), (0,1), (1,0), (1,1).
        let c = EdgeColoring::new(vec![0, 1, 1, 0], 2);
        verify_proper(&g, &c).unwrap();
        verify_exact_regular(&g, &c).unwrap();
    }

    #[test]
    fn rejects_conflict() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1]).unwrap();
        let c = EdgeColoring::new(vec![0, 0, 1, 1], 2);
        assert!(matches!(
            verify_proper(&g, &c),
            Err(VerifyError::Conflict { .. })
        ));
    }

    #[test]
    fn rejects_imperfect_class() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1]).unwrap();
        // Proper but with 4 colors: every class has one edge, not two.
        let c = EdgeColoring::new(vec![0, 1, 2, 3], 4);
        verify_proper(&g, &c).unwrap();
        assert!(matches!(
            verify_exact_regular(&g, &c),
            Err(VerifyError::TooManyColors { .. })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let g = BipartiteMultigraph::from_demands(2, 2, &[1, 1, 1, 1]).unwrap();
        let c = EdgeColoring::new(vec![0, 1], 2);
        assert!(matches!(
            verify_proper(&g, &c),
            Err(VerifyError::LengthMismatch { .. })
        ));
    }
}
