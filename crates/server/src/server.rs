//! The server front: shard spawning, request dispatch, backpressure,
//! graceful shutdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use cc_core::obs::{self, Registry};
use cc_core::Outcome;

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::request::{QueryResult, Request};
use crate::shard::{run_shard, Envelope, QueryJob, ReplySink, ReplyWaker, TaggedReply};
use crate::stats::{FleetStats, ShardTelemetry};

/// One shard as seen from the client side: its bounded queue's sender and
/// its telemetry block.
#[derive(Clone)]
struct ShardClient {
    queue: SyncSender<Envelope>,
    telemetry: Arc<ShardTelemetry>,
}

/// Maps a clique size to its owning shard. Same-`n` requests must land on
/// the same shard — that is what keeps one warm `CliqueService` per size
/// in the whole fleet — while distinct sizes should spread; the splitmix64
/// finalizer avalanches well enough that related sizes (64 and 256 share
/// all their low bits) land on different shards.
fn shard_index(n: usize, shards: usize) -> usize {
    let mut x = n as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// An answer that has been accepted by a shard but not yet waited on.
///
/// Produced by [`ServiceHandle::submit`] / [`ServiceHandle::try_submit`]:
/// the split lets a client pipeline several requests before blocking, and
/// lets tests fill a bounded queue without parking on replies. Dropping a
/// `Pending` abandons the answer (the shard still serves the request).
#[derive(Debug)]
pub struct Pending {
    reply: Receiver<QueryResult>,
}

impl Pending {
    /// Blocks until the answer arrives.
    ///
    /// # Errors
    ///
    /// [`ServerError::Query`] if the query itself failed;
    /// [`ServerError::ShutDown`] if the server tore down before
    /// answering (only possible for requests racing a shutdown).
    pub fn wait(self) -> Result<Outcome, ServerError> {
        match self.reply.recv() {
            Ok(result) => result.map_err(ServerError::Query),
            Err(_) => Err(ServerError::ShutDown),
        }
    }
}

/// A cloneable, thread-safe client of a [`QueryServer`].
///
/// Cloning is two `Arc` bumps; every clone reaches the same shard fleet.
/// All methods take `&self`, so one handle may be shared by reference or
/// clone across any number of client threads.
#[derive(Clone)]
pub struct ServiceHandle {
    shards: Arc<[ShardClient]>,
    closed: Arc<AtomicBool>,
    queue_capacity: usize,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("shards", &self.shards.len())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServiceHandle {
    /// Submits `request` to its shard, blocking while the shard's bounded
    /// queue is full (backpressure), and returns the answer ticket.
    ///
    /// # Errors
    ///
    /// [`ServerError::ShutDown`] if the server has shut down.
    pub fn submit(&self, request: Request) -> Result<Pending, ServerError> {
        self.enqueue(request, true)
    }

    /// As [`ServiceHandle::submit`], but a full queue is an immediate
    /// [`ServerError::Overloaded`] instead of blocking.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] on a full shard queue,
    /// [`ServerError::ShutDown`] if the server has shut down.
    pub fn try_submit(&self, request: Request) -> Result<Pending, ServerError> {
        self.enqueue(request, false)
    }

    /// Submits `request` under a caller-chosen `id`, routing its answer
    /// onto the shared `replies` channel as a [`TaggedReply`] instead of a
    /// private per-request channel. Blocking while the shard's bounded
    /// queue is full, exactly like [`ServiceHandle::submit`] — this is
    /// what maps per-connection pipelining onto the fleet's backpressure.
    ///
    /// Replies from different shards arrive on `replies` in completion
    /// order, not submission order; the id is the correlation. Ids are the
    /// caller's business: the server never inspects or deduplicates them.
    ///
    /// # Errors
    ///
    /// [`ServerError::ShutDown`] if the server has shut down.
    pub fn submit_tagged(
        &self,
        id: u64,
        request: Request,
        replies: &Sender<TaggedReply>,
    ) -> Result<(), ServerError> {
        self.enqueue_sink(
            request,
            ReplySink::Tagged {
                id,
                tx: replies.clone(),
                wake: None,
            },
            true,
        )
    }

    /// As [`ServiceHandle::submit_tagged`], but a full queue is an
    /// immediate [`ServerError::Overloaded`] instead of blocking.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] on a full shard queue,
    /// [`ServerError::ShutDown`] if the server has shut down.
    pub fn try_submit_tagged(
        &self,
        id: u64,
        request: Request,
        replies: &Sender<TaggedReply>,
    ) -> Result<(), ServerError> {
        self.enqueue_sink(
            request,
            ReplySink::Tagged {
                id,
                tx: replies.clone(),
                wake: None,
            },
            false,
        )
    }

    /// As [`ServiceHandle::try_submit_tagged`], with a [`ReplyWaker`] rung
    /// after the answer lands on `replies` — the submission path for an
    /// event-driven consumer that parks in `poll(2)` rather than on the
    /// channel itself. Non-blocking on a full queue by design: a reactor
    /// thread must never park on shard backpressure (it would stall every
    /// other connection it serves); it parks the *connection* instead and
    /// retries — which is why a rejection hands the `Request` **back** in
    /// the error instead of dropping it.
    ///
    /// # Errors
    ///
    /// `(ServerError::Overloaded, request)` on a full shard queue,
    /// `(ServerError::ShutDown, request)` if the server has shut down —
    /// in both cases the request is returned for the caller to retry or
    /// answer inline.
    pub fn try_submit_tagged_with_waker(
        &self,
        id: u64,
        request: Request,
        replies: &Sender<TaggedReply>,
        wake: &ReplyWaker,
    ) -> Result<(), (ServerError, Request)> {
        let shard = match self.shard_for(&request) {
            Ok(shard) => shard,
            Err(e) => return Err((e, request)),
        };
        let envelope = Envelope::Query(QueryJob {
            request,
            reply: ReplySink::Tagged {
                id,
                tx: replies.clone(),
                wake: Some(Arc::clone(wake)),
            },
            enqueued_at: obs::now(),
        });
        let rejected = match shard.queue.try_send(envelope) {
            Ok(()) => {
                shard.telemetry.enqueued();
                return Ok(());
            }
            Err(TrySendError::Full(envelope)) => (ServerError::Overloaded, envelope),
            Err(TrySendError::Disconnected(envelope)) => (ServerError::ShutDown, envelope),
        };
        match rejected {
            (e, Envelope::Query(job)) => Err((e, job.request)),
            _ => unreachable!("a query submission bounces back as a query"),
        }
    }

    /// The current depth of the shard queue that serves clique size `n` —
    /// the fleet-side half of the accounting an event-driven front needs:
    /// a reactor holding a parked (queue-rejected) request can skip futile
    /// resubmission attempts while the target queue is still at capacity.
    /// An instantaneous gauge, racy by nature; `try_submit_*` stays the
    /// authoritative admission check.
    pub fn queue_depth_for(&self, n: usize) -> u64 {
        self.shards[shard_index(n, self.shards.len())]
            .telemetry
            .snapshot()
            .queue_depth
    }

    /// Whether the shard queue serving clique size `n` currently has a
    /// free slot. Advisory (see [`ServiceHandle::queue_depth_for`]): a
    /// `true` can be stale by the time a submission lands, so callers must
    /// still handle [`ServerError::Overloaded`].
    pub fn has_capacity_for(&self, n: usize) -> bool {
        self.queue_depth_for(n) < self.queue_capacity as u64
    }

    /// The one enqueue path behind [`submit`](ServiceHandle::submit) and
    /// [`try_submit`](ServiceHandle::try_submit): only the behavior on a
    /// full queue differs (block vs [`ServerError::Overloaded`]).
    fn enqueue(&self, request: Request, blocking: bool) -> Result<Pending, ServerError> {
        let (reply_tx, reply) = channel();
        self.enqueue_sink(request, ReplySink::Private(reply_tx), blocking)?;
        Ok(Pending { reply })
    }

    /// Shared enqueue machinery: every submission path — private-channel
    /// or tagged — goes through here, so backpressure, shutdown checks and
    /// telemetry are identical across them.
    fn enqueue_sink(
        &self,
        request: Request,
        reply: ReplySink,
        blocking: bool,
    ) -> Result<(), ServerError> {
        let shard = self.shard_for(&request)?;
        let envelope = Envelope::Query(QueryJob {
            request,
            reply,
            enqueued_at: obs::now(),
        });
        if blocking {
            if shard.queue.send(envelope).is_err() {
                return Err(ServerError::ShutDown);
            }
        } else {
            match shard.queue.try_send(envelope) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Err(ServerError::Overloaded),
                Err(TrySendError::Disconnected(_)) => return Err(ServerError::ShutDown),
            }
        }
        shard.telemetry.enqueued();
        Ok(())
    }

    /// Submits `request` and blocks for its answer — the plain
    /// request-reply call. Queue-full backpressure blocks; see
    /// [`ServiceHandle::try_call`] for the failing flavor.
    ///
    /// # Errors
    ///
    /// As [`ServiceHandle::submit`] and [`Pending::wait`].
    pub fn call(&self, request: Request) -> Result<Outcome, ServerError> {
        self.submit(request)?.wait()
    }

    /// As [`ServiceHandle::call`], but a full queue is an immediate
    /// [`ServerError::Overloaded`].
    ///
    /// # Errors
    ///
    /// As [`ServiceHandle::try_submit`] and [`Pending::wait`].
    pub fn try_call(&self, request: Request) -> Result<Outcome, ServerError> {
        self.try_submit(request)?.wait()
    }

    fn shard_for(&self, request: &Request) -> Result<&ShardClient, ServerError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ServerError::ShutDown);
        }
        Ok(&self.shards[shard_index(request.n(), self.shards.len())])
    }
}

/// A fleet of shard workers serving typed queries over warm
/// [`CliqueService`](cc_core::CliqueService)s. See the [crate
/// docs](crate) for the architecture and guarantees.
#[derive(Debug)]
pub struct QueryServer {
    shards: Arc<[ShardClient]>,
    closed: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
    registry: Registry,
}

impl std::fmt::Debug for ShardClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardClient").finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Spawns `config.shards()` shard workers, each with a bounded queue
    /// of `config.queue_capacity()` requests. Sessions inside each shard
    /// are created lazily by the first request of each clique size.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidConfig`] for zero shards/capacity/coalesce.
    pub fn new(config: ServerConfig) -> Result<Self, ServerError> {
        config.validate()?;
        // Every shard's counters, gauges and the fleet-wide latency
        // histograms live in this registry; `FleetStats` snapshots read
        // the same cells a stats-wire snapshot serializes.
        let registry = Registry::new();
        let mut shards = Vec::with_capacity(config.shards());
        let mut workers = Vec::with_capacity(config.shards());
        for index in 0..config.shards() {
            let (queue_tx, queue_rx) = sync_channel(config.queue_capacity());
            let telemetry = Arc::new(ShardTelemetry::new(&registry, index));
            let worker_telemetry = Arc::clone(&telemetry);
            let coalesce_limit = config.coalesce_limit();
            let handle = std::thread::Builder::new()
                .name(format!("cc-shard-{index}"))
                .spawn(move || run_shard(queue_rx, worker_telemetry, coalesce_limit))
                .expect("spawn shard worker");
            shards.push(ShardClient {
                queue: queue_tx,
                telemetry,
            });
            workers.push(handle);
        }
        Ok(QueryServer {
            shards: shards.into(),
            closed: Arc::new(AtomicBool::new(false)),
            workers,
            config,
            registry,
        })
    }

    /// The metric registry every shard records into. Layers embedding
    /// the fleet (the `cc-net` server) register their own metrics here
    /// too, so one snapshot covers the whole serving stack.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The configuration this server was built with.
    #[inline]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A new client handle. Handles stay valid after the server value is
    /// dropped or shut down — their calls then fail with
    /// [`ServerError::ShutDown`] instead of dangling.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shards: Arc::clone(&self.shards),
            closed: Arc::clone(&self.closed),
            queue_capacity: self.config.queue_capacity(),
        }
    }

    /// An instantaneous snapshot of the fleet's telemetry. Counters move
    /// while the server runs; for quiescent totals use the snapshot
    /// returned by [`QueryServer::shutdown`].
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self
                .shards
                .iter()
                .map(|shard| shard.telemetry.snapshot())
                .collect(),
        }
    }

    /// Graceful shutdown: marks the server closed (new calls fail fast
    /// with [`ServerError::ShutDown`]), lets every shard drain and answer
    /// what is already queued, joins the workers, and returns the final
    /// telemetry.
    pub fn shutdown(mut self) -> FleetStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.closed.store(true, Ordering::Release);
        for shard in self.shards.iter() {
            // Blocks while the queue is full — acceptable, since the
            // worker is actively draining toward this marker. Fails only
            // if the worker is already gone, which is fine too.
            let _ = shard.queue.send(Envelope::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for QueryServer {
    /// Dropping the server performs the same graceful drain as
    /// [`QueryServer::shutdown`], minus the returned stats. (Idempotent:
    /// after an explicit shutdown the worker list is empty and the extra
    /// markers land in closed channels.)
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::routing::RoutingInstance;
    use cc_core::{CliqueService, CoreError};

    fn assert_send_sync<T: Send + Sync>() {}

    /// Parks `server`'s shard `index` and returns the gate sender; the
    /// worker is guaranteed parked (ack received) on return, so the
    /// queue's full capacity is available and provably not draining.
    fn park_shard(server: &QueryServer, index: usize) -> std::sync::mpsc::Sender<()> {
        let (ack_tx, ack_rx) = channel::<()>();
        let (gate_tx, gate_rx) = channel::<()>();
        server.shards[index]
            .queue
            .send(Envelope::Park {
                ack: ack_tx,
                gate: gate_rx,
            })
            .unwrap();
        ack_rx.recv().unwrap();
        gate_tx
    }

    #[test]
    fn client_types_are_send_and_sync() {
        assert_send_sync::<ServiceHandle>();
        assert_send_sync::<ServerError>();
        fn assert_send<T: Send>() {}
        assert_send::<QueryServer>();
        assert_send::<Request>();
        assert_send::<Pending>();
    }

    #[test]
    fn same_n_maps_to_one_shard_and_spreads_sizes() {
        for shards in 1..=8 {
            for n in [0usize, 1, 9, 64, 256, 1024] {
                let a = shard_index(n, shards);
                assert_eq!(a, shard_index(n, shards));
                assert!(a < shards);
            }
        }
        // The acceptance workload's two sizes must not collide on a
        // 4-shard fleet (a plain `n % shards` would put both on shard 0).
        assert_ne!(shard_index(64, 4), shard_index(256, 4));
    }

    #[test]
    fn serves_queries_and_counts_them() {
        let server = QueryServer::new(ServerConfig::new(2)).unwrap();
        let handle = server.handle();
        let inst = RoutingInstance::from_demands(6, |_, _| 1).unwrap();
        let keys: Vec<Vec<u64>> = (0..6).map(|i| vec![i as u64, (i * 2) as u64]).collect();

        let routed = handle.call(Request::Route(inst.clone())).unwrap();
        let mut reference = CliqueService::new(6).unwrap();
        assert_eq!(
            routed,
            Request::Route(inst).serve_on(&mut reference).unwrap()
        );
        let sorted = handle.call(Request::Sort(keys.clone())).unwrap();
        assert_eq!(
            sorted,
            Request::Sort(keys).serve_on(&mut reference).unwrap()
        );

        let stats = server.shutdown();
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.rejected(), 0);
        assert_eq!(stats.completed_runs(), 2);
        assert_eq!(stats.sessions(), 1);
        assert!(stats.batches() >= 1);
    }

    #[test]
    fn query_errors_pass_through_unwrapped() {
        let server = QueryServer::new(ServerConfig::new(1)).unwrap();
        let handle = server.handle();
        let keys: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
        // Out-of-range rank: rejected by the service, wrapped by the handle.
        let err = handle
            .call(Request::Select {
                keys: keys.clone(),
                rank: u64::MAX,
            })
            .unwrap_err();
        let direct = CliqueService::new(4)
            .unwrap()
            .select(&keys, u64::MAX)
            .unwrap_err();
        assert_eq!(err, ServerError::Query(direct));
        // n == 0 is answered with the facade's own construction error.
        let empty = handle.call(Request::Sort(Vec::new())).unwrap_err();
        let direct_empty = CliqueService::new(0).unwrap_err();
        assert_eq!(empty, ServerError::Query(direct_empty));

        let stats = server.shutdown();
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.rejected(), 2);
        // Facade-level rejections never became session runs.
        assert_eq!(stats.failed_runs(), 0);
    }

    #[test]
    fn calls_after_shutdown_fail_fast() {
        let server = QueryServer::new(ServerConfig::new(1)).unwrap();
        let handle = server.handle();
        let keys: Vec<Vec<u64>> = (0..3).map(|i| vec![i as u64]).collect();
        assert!(handle.call(Request::Mode(keys.clone())).is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.requests(), 1);
        assert_eq!(
            handle.call(Request::Mode(keys.clone())).unwrap_err(),
            ServerError::ShutDown
        );
        assert_eq!(
            handle.try_call(Request::Mode(keys)).unwrap_err(),
            ServerError::ShutDown
        );
    }

    #[test]
    fn shutdown_answers_already_queued_requests() {
        let server = QueryServer::new(ServerConfig::new(1).with_queue_capacity(8)).unwrap();
        let handle = server.handle();
        // Park the worker so the queue provably holds the requests when
        // shutdown begins.
        let gate_tx = park_shard(&server, 0);
        let keys: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
        let pending: Vec<Pending> = (0..3)
            .map(|_| handle.try_submit(Request::Mode(keys.clone())).unwrap())
            .collect();
        drop(gate_tx);
        let stats = server.shutdown();
        assert_eq!(stats.requests(), 3);
        for p in pending {
            assert!(p.wait().is_ok());
        }
    }

    /// The deterministic backpressure test: with the worker parked, a
    /// capacity-`k` queue accepts exactly `k` submissions and reports
    /// `Overloaded` on the `k+1`-st `try_submit`.
    #[test]
    fn bounded_queue_reports_overloaded_deterministically() {
        let capacity = 3;
        let server = QueryServer::new(ServerConfig::new(1).with_queue_capacity(capacity)).unwrap();
        let handle = server.handle();
        let gate_tx = park_shard(&server, 0);
        let keys: Vec<Vec<u64>> = (0..3).map(|i| vec![i as u64]).collect();
        let mut pending = Vec::new();
        for _ in 0..capacity {
            pending.push(handle.try_submit(Request::Mode(keys.clone())).unwrap());
        }
        assert_eq!(
            handle.try_submit(Request::Mode(keys.clone())).unwrap_err(),
            ServerError::Overloaded
        );
        // Live stats see the full queue.
        let stats = server.stats();
        assert_eq!(stats.shards[0].queue_depth, capacity as u64);
        assert_eq!(stats.peak_queue_depth(), capacity as u64);
        // Un-park: the queue drains, every accepted request is answered.
        drop(gate_tx);
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests(), capacity as u64);
        assert_eq!(stats.shards[0].queue_depth, 0);
    }

    #[test]
    fn coalesces_same_n_runs_when_the_queue_backs_up() {
        let server = QueryServer::new(
            ServerConfig::new(1)
                .with_queue_capacity(16)
                .with_coalesce_limit(16),
        )
        .unwrap();
        let handle = server.handle();
        let gate_tx = park_shard(&server, 0);
        let keys4: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
        let keys5: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64]).collect();
        let mut pending = Vec::new();
        for _ in 0..3 {
            pending.push(handle.try_submit(Request::Mode(keys4.clone())).unwrap());
        }
        for _ in 0..2 {
            pending.push(handle.try_submit(Request::Mode(keys5.clone())).unwrap());
        }
        drop(gate_tx);
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let stats = server.shutdown();
        // All five requests were drained in one gulp: one batch, two
        // same-`n` runs (3×n=4, then 2×n=5), two sessions.
        assert_eq!(stats.requests(), 5);
        assert_eq!(stats.batches(), 1);
        assert_eq!(stats.max_batch(), 5);
        assert_eq!(stats.shards[0].coalesced_runs, 2);
        assert_eq!(stats.sessions(), 2);
        assert_eq!(stats.mean_batch_len(), 5.0);
    }

    /// Tagged submissions fan every reply into one shared channel, keyed
    /// by the caller's ids — including across shards, where completion
    /// order is not submission order. With the n=9 shard parked, the n=4
    /// requests complete while the n=9 request waits; un-parking releases
    /// it last, and the ids still match.
    #[test]
    fn tagged_replies_fan_in_out_of_order_across_shards() {
        let shards = 4;
        assert_ne!(shard_index(4, shards), shard_index(9, shards));
        let server = QueryServer::new(ServerConfig::new(shards)).unwrap();
        let handle = server.handle();
        let keys4: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
        let keys9: Vec<Vec<u64>> = (0..9).map(|i| vec![i as u64]).collect();
        let gate_tx = park_shard(&server, shard_index(9, shards));
        let (reply_tx, replies) = channel();
        handle
            .submit_tagged(100, Request::Mode(keys9.clone()), &reply_tx)
            .unwrap();
        handle
            .submit_tagged(200, Request::Mode(keys4.clone()), &reply_tx)
            .unwrap();
        handle
            .try_submit_tagged(300, Request::Sort(keys4.clone()), &reply_tx)
            .unwrap();
        // The un-parked shard answers its two requests first.
        let first = replies.recv().unwrap();
        let second = replies.recv().unwrap();
        assert_eq!([first.id, second.id], [200, 300]);
        assert!(first.result.is_ok() && second.result.is_ok());
        drop(gate_tx);
        let last = replies.recv().unwrap();
        assert_eq!(last.id, 100);
        // Parity with the private-channel path on the same request.
        let direct = handle.call(Request::Mode(keys9)).unwrap();
        assert_eq!(last.result.unwrap(), direct);

        let stats = server.shutdown();
        assert_eq!(stats.requests(), 4);
        // Tagged submissions after shutdown fail fast like the others.
        assert_eq!(
            handle
                .submit_tagged(9, Request::Mode(keys4), &reply_tx)
                .unwrap_err(),
            ServerError::ShutDown
        );
    }

    /// The reactor-facing submission path: the waker rings once per
    /// delivered reply (after it is on the channel), and the queue-depth
    /// accessors expose the admission state a non-blocking consumer needs.
    #[test]
    fn waker_rings_per_reply_and_depth_accounting_tracks_the_queue() {
        use std::sync::atomic::AtomicUsize;
        let capacity = 2;
        let server = QueryServer::new(ServerConfig::new(1).with_queue_capacity(capacity)).unwrap();
        let handle = server.handle();
        let keys: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64]).collect();
        let rings = Arc::new(AtomicUsize::new(0));
        let waker: ReplyWaker = {
            let rings = Arc::clone(&rings);
            Arc::new(move || {
                rings.fetch_add(1, Ordering::SeqCst);
            })
        };
        // An idle fleet has a fully free queue.
        assert!(handle.has_capacity_for(4));
        assert_eq!(handle.queue_depth_for(4), 0);

        let gate_tx = park_shard(&server, 0);
        let (reply_tx, replies) = channel();
        for id in 0..capacity as u64 {
            handle
                .try_submit_tagged_with_waker(id, Request::Mode(keys.clone()), &reply_tx, &waker)
                .unwrap();
        }
        // The parked worker provably is not draining: the gauge shows the
        // full queue and the advisory check flips to false.
        assert_eq!(handle.queue_depth_for(4), capacity as u64);
        assert!(!handle.has_capacity_for(4));
        let (err, reclaimed) = handle
            .try_submit_tagged_with_waker(9, Request::Mode(keys.clone()), &reply_tx, &waker)
            .unwrap_err();
        assert_eq!(err, ServerError::Overloaded);
        // The rejected request comes back intact for the caller to park.
        assert_eq!(reclaimed.n(), 4);
        // Nothing answered yet, so the doorbell has not rung.
        assert_eq!(rings.load(Ordering::SeqCst), 0);
        drop(gate_tx);
        let mut ids: Vec<u64> = (0..capacity).map(|_| replies.recv().unwrap().id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        // One ring per reply. The final wake runs just *after* its reply
        // is observable, so bound-spin rather than assert instantly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rings.load(Ordering::SeqCst) < capacity && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(rings.load(Ordering::SeqCst), capacity);
        let stats = server.shutdown();
        assert_eq!(stats.requests(), capacity as u64);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            QueryServer::new(ServerConfig::new(0)),
            Err(ServerError::InvalidConfig { .. })
        ));
        assert!(matches!(
            QueryServer::new(ServerConfig::new(1).with_queue_capacity(0)),
            Err(ServerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn dropping_the_server_drains_gracefully() {
        let keys: Vec<Vec<u64>> = (0..3).map(|i| vec![i as u64]).collect();
        let handle;
        {
            let server = QueryServer::new(ServerConfig::new(1)).unwrap();
            handle = server.handle();
            assert!(handle.call(Request::Mode(keys.clone())).is_ok());
            // `server` drops here: workers join, channels close.
        }
        assert_eq!(
            handle.call(Request::Mode(keys)).unwrap_err(),
            ServerError::ShutDown
        );
    }

    #[test]
    fn reference_equality_check_for_error_type() {
        // Guard the parity-test idiom: a wrapped CoreError compares equal
        // to the directly produced one.
        let direct = CoreError::invalid("x");
        assert_eq!(
            ServerError::Query(direct.clone()),
            ServerError::Query(direct)
        );
    }
}
