use cc_core::routing::RoutingInstance;
use cc_core::{CliqueService, CoreError, Outcome};

/// What one request resolves to: the unified [`Outcome`] on success, the
/// exact [`CoreError`] a direct [`CliqueService`] call would raise on
/// failure. This is the value that travels back over a reply channel;
/// server-side failures (overload, shutdown) are layered on top as
/// [`ServerError`](crate::ServerError) by the handle.
pub type QueryResult = Result<Outcome, CoreError>;

/// A typed query — one variant per [`CliqueService`] entry point.
///
/// A request owns its payload (instance or key batches), so it can cross
/// thread boundaries into a shard worker; it also knows its clique size
/// ([`Request::n`]), which is the server's shard key — same-`n` requests
/// are always served by the same shard, on the same warm session fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// [`CliqueService::route`] — Theorem 3.7, ≤ 16 rounds.
    Route(RoutingInstance),
    /// [`CliqueService::route_optimized`] — Theorem 5.4, ≤ 12 rounds.
    RouteOptimized(RoutingInstance),
    /// [`CliqueService::sort`] — Theorem 4.5, ≤ 37 rounds.
    Sort(Vec<Vec<u64>>),
    /// [`CliqueService::global_indices`] — Corollary 4.6.
    GlobalIndices(Vec<Vec<u64>>),
    /// [`CliqueService::select`] — constant-round rank selection.
    Select {
        /// Per-node key batches (`keys.len()` is the clique size).
        keys: Vec<Vec<u64>>,
        /// Global rank to select (0-based).
        rank: u64,
    },
    /// [`CliqueService::mode`] — most frequent key value.
    Mode(Vec<Vec<u64>>),
    /// [`CliqueService::small_key_census`] — §6.3, 1–2-bit messages.
    SmallKeyCensus {
        /// Per-node key batches (`keys.len()` is the clique size).
        keys: Vec<Vec<u64>>,
        /// Key domain width in bits.
        key_bits: u32,
    },
}

impl Request {
    /// The clique size this request targets — the shard key. (`0` is
    /// representable and rejected at serve time with the same error a
    /// direct facade call raises.)
    pub fn n(&self) -> usize {
        match self {
            Request::Route(inst) | Request::RouteOptimized(inst) => inst.n(),
            Request::Sort(keys)
            | Request::GlobalIndices(keys)
            | Request::Mode(keys)
            | Request::Select { keys, .. }
            | Request::SmallKeyCensus { keys, .. } => keys.len(),
        }
    }

    /// Serves this request on `service` — the single dispatch point both
    /// the shard workers and the sequential parity references go through,
    /// so "server answer == direct service answer" is a comparison of two
    /// calls to *this* function.
    ///
    /// # Errors
    ///
    /// Exactly those of the corresponding [`CliqueService`] method.
    pub fn serve_on(&self, service: &mut CliqueService) -> QueryResult {
        match self {
            Request::Route(inst) => service.route(inst).map(Outcome::Route),
            Request::RouteOptimized(inst) => service.route_optimized(inst).map(Outcome::Route),
            Request::Sort(keys) => service.sort(keys).map(Outcome::Sort),
            Request::GlobalIndices(keys) => service.global_indices(keys).map(Outcome::Indices),
            Request::Select { keys, rank } => service.select(keys, *rank).map(Outcome::Select),
            Request::Mode(keys) => service.mode(keys).map(Outcome::Mode),
            Request::SmallKeyCensus { keys, key_bits } => service
                .small_key_census(keys, *key_bits)
                .map(Outcome::SmallKeys),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_matches_the_payload() {
        let inst = RoutingInstance::from_demands(6, |_, _| 1).unwrap();
        assert_eq!(Request::Route(inst.clone()).n(), 6);
        assert_eq!(Request::RouteOptimized(inst).n(), 6);
        assert_eq!(Request::Sort(vec![vec![1]; 4]).n(), 4);
        assert_eq!(
            Request::Select {
                keys: vec![vec![1]; 5],
                rank: 0
            }
            .n(),
            5
        );
        assert_eq!(
            Request::SmallKeyCensus {
                keys: Vec::new(),
                key_bits: 1
            }
            .n(),
            0
        );
    }

    #[test]
    fn serve_on_dispatches_every_entry_point() {
        let n = 9;
        let mut service = CliqueService::new(n).unwrap();
        let inst = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 3 + j) % 7) as u64).collect())
            .collect();
        let requests = [
            Request::Route(inst.clone()),
            Request::RouteOptimized(inst),
            Request::Sort(keys.clone()),
            Request::GlobalIndices(keys.clone()),
            Request::Select {
                keys: keys.clone(),
                rank: 11,
            },
            Request::Mode(keys.clone()),
        ];
        for request in &requests {
            let outcome = request.serve_on(&mut service).unwrap();
            assert!(outcome.metrics().comm_rounds() > 0);
        }
        assert_eq!(service.stats().completed(), requests.len() as u64);

        // Error paths flow through unchanged: the census domain check
        // (2 values × ⌈log₂ 10⌉² block nodes > 9) fails identically here
        // and on a direct facade call.
        let census = Request::SmallKeyCensus {
            keys: keys.clone(),
            key_bits: 1,
        };
        let direct = CliqueService::new(n)
            .unwrap()
            .small_key_census(&keys, 1)
            .unwrap_err();
        assert_eq!(census.serve_on(&mut service).unwrap_err(), direct);
    }
}
