use cc_core::obs::{Counter, Gauge, Histogram, Registry};

/// The live counters one shard worker and its clients share — now
/// registry-backed `cc-obs` cells, so [`ShardStats`]/[`FleetStats`] are
/// *views* over the same storage a stats-wire snapshot reads, not
/// parallel bookkeeping.
///
/// Monotonic counters are added by their single writer (the shard worker
/// for serve-side counters, any handle for enqueues); `queue_depth` is
/// the one gauge with two writers — handles increment *after* a
/// successful send and the worker decrements on receive, so a fast worker
/// can transiently observe the decrement first. The gauge is signed for
/// exactly that reason and clamped to zero in snapshots. Every cell is
/// `Relaxed`: readers take an instantaneous snapshot, not a synchronized
/// cut, and no counter guards any memory.
///
/// `Default` builds a free-standing instance with unregistered cells
/// (used by unit tests); [`ShardTelemetry::new`] registers every cell
/// under `fleet.shard{i}.*` names plus the two fleet-wide latency
/// histograms, which all shards share by name.
#[derive(Debug, Default)]
pub(crate) struct ShardTelemetry {
    requests: Counter,
    rejected: Counter,
    completed_runs: Counter,
    failed_runs: Counter,
    comm_rounds: Counter,
    messages: Counter,
    sessions: Counter,
    batches: Counter,
    coalesced_runs: Counter,
    max_batch: Counter,
    queue_depth: Gauge,
    peak_queue_depth: Gauge,
    /// Nanoseconds a job sat queued between shard-enqueue and dequeue.
    /// Shared by every shard (registered once under `fleet.queue_wait_ns`).
    pub(crate) queue_wait: Histogram,
    /// Nanoseconds one request spent inside `Request::serve_on` — the
    /// session-run (compute) stage. Shared under `fleet.session_run_ns`.
    pub(crate) session_run: Histogram,
}

impl ShardTelemetry {
    /// Registers shard `index`'s cells in `registry` and returns the
    /// handle set the worker and its clients share.
    pub(crate) fn new(registry: &Registry, index: usize) -> Self {
        let name = |field: &str| format!("fleet.shard{index}.{field}");
        ShardTelemetry {
            requests: registry.counter(&name("requests")),
            rejected: registry.counter(&name("rejected")),
            completed_runs: registry.counter(&name("completed_runs")),
            failed_runs: registry.counter(&name("failed_runs")),
            comm_rounds: registry.counter(&name("comm_rounds")),
            messages: registry.counter(&name("messages")),
            sessions: registry.counter(&name("sessions")),
            batches: registry.counter(&name("batches")),
            coalesced_runs: registry.counter(&name("coalesced_runs")),
            max_batch: registry.counter(&name("max_batch")),
            queue_depth: registry.gauge(&name("queue_depth")),
            peak_queue_depth: registry.gauge(&name("peak_queue_depth")),
            queue_wait: registry.histogram("fleet.queue_wait_ns"),
            session_run: registry.histogram("fleet.session_run_ns"),
        }
    }

    /// A request entered the shard queue (caller side, after a successful
    /// send — rejected sends never touch the gauge). Samples the
    /// high-water mark here, at the deepest the queue can be.
    pub(crate) fn enqueued(&self) {
        let depth = self.queue_depth.add(1);
        self.peak_queue_depth.record_max(depth);
    }

    /// The worker took a request off the queue.
    pub(crate) fn dequeued(&self) {
        self.queue_depth.add(-1);
    }

    /// The worker served one request (`rejected` = it returned an error).
    pub(crate) fn request_served(&self, rejected: bool) {
        self.requests.incr();
        if rejected {
            self.rejected.incr();
        }
    }

    /// The worker is serving a coalesced batch of `len` requests.
    pub(crate) fn batch_started(&self, len: u64) {
        self.batches.incr();
        self.max_batch.record_max(len);
    }

    /// One same-`n` run within a batch.
    pub(crate) fn coalesced_run(&self) {
        self.coalesced_runs.incr();
    }

    /// A new `n → CliqueService` entry was created.
    pub(crate) fn session_created(&self) {
        self.sessions.incr();
    }

    /// Publishes the shard's aggregated
    /// [`SessionStats`](cc_core::SessionStats) — summed over its
    /// services — after a batch. Single writer, so plain stores.
    pub(crate) fn store_session_totals(
        &self,
        completed: u64,
        failed: u64,
        comm_rounds: u64,
        messages: u64,
    ) {
        self.completed_runs.store(completed);
        self.failed_runs.store(failed);
        self.comm_rounds.store(comm_rounds);
        self.messages.store(messages);
    }

    pub(crate) fn snapshot(&self) -> ShardStats {
        ShardStats {
            requests: self.requests.get(),
            rejected: self.rejected.get(),
            completed_runs: self.completed_runs.get(),
            failed_runs: self.failed_runs.get(),
            comm_rounds: self.comm_rounds.get(),
            messages: self.messages.get(),
            sessions: self.sessions.get(),
            batches: self.batches.get(),
            coalesced_runs: self.coalesced_runs.get(),
            max_batch: self.max_batch.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.get().max(0) as u64,
        }
    }
}

/// A point-in-time snapshot of one shard's counters.
///
/// The `*_runs`, `comm_rounds` and `messages` fields are the shard's
/// [`SessionStats`](cc_core::SessionStats) summed over its per-`n`
/// services — the session layer's own accounting, surfaced per shard.
/// `requests`/`rejected` count at query granularity instead (a request
/// rejected before reaching a session — bad rank, invalid keys — counts
/// as `rejected` but never as a `failed_run`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests answered (including error answers).
    pub requests: u64,
    /// Requests answered with a `CoreError`.
    pub rejected: u64,
    /// Completed protocol runs, summed over this shard's sessions.
    pub completed_runs: u64,
    /// Failed protocol runs, summed over this shard's sessions.
    pub failed_runs: u64,
    /// Communication rounds, summed over this shard's sessions.
    pub comm_rounds: u64,
    /// Messages delivered, summed over this shard's sessions.
    pub messages: u64,
    /// Distinct clique sizes with a live `CliqueService`.
    pub sessions: u64,
    /// Coalesced batches served.
    pub batches: u64,
    /// Same-`n` runs across all served batches (`== batches` when no two
    /// adjacent requests shared a clique size).
    pub coalesced_runs: u64,
    /// Largest single batch drained from the queue.
    pub max_batch: u64,
    /// Requests currently queued (a live gauge, not a total).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub peak_queue_depth: u64,
}

/// Fleet-wide telemetry: one [`ShardStats`] per shard, plus sums.
///
/// Obtained from [`QueryServer::stats`](crate::QueryServer::stats) at any
/// time (an instantaneous snapshot) or from
/// [`QueryServer::shutdown`](crate::QueryServer::shutdown) (final totals —
/// every counter quiescent, queues empty).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Saturating sum of one field over the shards — soak runs must
    /// degrade to a pinned ceiling, never wrap (or panic in debug).
    fn total(&self, field: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(field(s)))
    }

    /// Requests answered across the fleet.
    pub fn requests(&self) -> u64 {
        self.total(|s| s.requests)
    }

    /// Error answers across the fleet.
    pub fn rejected(&self) -> u64 {
        self.total(|s| s.rejected)
    }

    /// Completed protocol runs across every shard's sessions.
    pub fn completed_runs(&self) -> u64 {
        self.total(|s| s.completed_runs)
    }

    /// Failed protocol runs across every shard's sessions.
    pub fn failed_runs(&self) -> u64 {
        self.total(|s| s.failed_runs)
    }

    /// Communication rounds across every shard's sessions.
    pub fn comm_rounds(&self) -> u64 {
        self.total(|s| s.comm_rounds)
    }

    /// Messages delivered across every shard's sessions.
    pub fn messages(&self) -> u64 {
        self.total(|s| s.messages)
    }

    /// Live `CliqueService`s across the fleet (one per distinct clique
    /// size per shard that has seen it).
    pub fn sessions(&self) -> u64 {
        self.total(|s| s.sessions)
    }

    /// Coalesced batches served across the fleet.
    pub fn batches(&self) -> u64 {
        self.total(|s| s.batches)
    }

    /// Largest batch any shard drained in one gulp.
    pub fn max_batch(&self) -> u64 {
        self.shards.iter().map(|s| s.max_batch).max().unwrap_or(0)
    }

    /// Mean requests per served batch (0 when nothing was served).
    pub fn mean_batch_len(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.requests() as f64 / batches as f64
    }

    /// Deepest any shard queue ever got.
    pub fn peak_queue_depth(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_snapshot_round_trips() {
        let t = ShardTelemetry::default();
        t.enqueued();
        t.enqueued();
        t.dequeued();
        t.batch_started(1);
        t.coalesced_run();
        t.session_created();
        t.request_served(false);
        t.request_served(true);
        t.store_session_totals(1, 0, 12, 99);
        let s = t.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed_runs, 1);
        assert_eq!(s.comm_rounds, 12);
        assert_eq!(s.messages, 99);
        assert_eq!(s.sessions, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.coalesced_runs, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn fleet_aggregates_sum_and_max() {
        let a = ShardStats {
            requests: 3,
            rejected: 1,
            batches: 2,
            max_batch: 2,
            peak_queue_depth: 4,
            ..ShardStats::default()
        };
        let b = ShardStats {
            requests: 5,
            batches: 2,
            max_batch: 3,
            peak_queue_depth: 1,
            ..ShardStats::default()
        };
        let fleet = FleetStats { shards: vec![a, b] };
        assert_eq!(fleet.requests(), 8);
        assert_eq!(fleet.rejected(), 1);
        assert_eq!(fleet.batches(), 4);
        assert_eq!(fleet.max_batch(), 3);
        assert_eq!(fleet.peak_queue_depth(), 4);
        assert_eq!(fleet.mean_batch_len(), 2.0);
        assert_eq!(FleetStats::default().mean_batch_len(), 0.0);
    }

    #[test]
    fn fleet_sums_saturate_instead_of_overflowing() {
        // A soak run that pushes any shard counter near u64::MAX must
        // pin the fleet aggregate at the ceiling, not wrap (release) or
        // panic (debug).
        let near_max = ShardStats {
            requests: u64::MAX - 1,
            messages: u64::MAX,
            comm_rounds: u64::MAX / 2 + 1,
            ..ShardStats::default()
        };
        let fleet = FleetStats {
            shards: vec![near_max, near_max],
        };
        assert_eq!(fleet.requests(), u64::MAX);
        assert_eq!(fleet.messages(), u64::MAX);
        assert_eq!(fleet.comm_rounds(), u64::MAX);
        assert_eq!(fleet.mean_batch_len(), 0.0);
    }

    #[test]
    fn registered_telemetry_feeds_the_registry() {
        let registry = Registry::new();
        let t0 = ShardTelemetry::new(&registry, 0);
        let t1 = ShardTelemetry::new(&registry, 1);
        t0.enqueued();
        t0.enqueued();
        t0.dequeued();
        t1.enqueued();
        t0.request_served(false);
        t0.queue_wait.record(100);
        t1.queue_wait.record(900); // same fleet-wide histogram by name
        let snap = registry.snapshot();
        assert_eq!(snap.counter("fleet.shard0.requests"), Some(1));
        assert_eq!(snap.gauge("fleet.shard0.queue_depth"), Some(1));
        assert_eq!(snap.gauge("fleet.shard0.peak_queue_depth"), Some(2));
        assert_eq!(snap.gauge("fleet.shard1.queue_depth"), Some(1));
        assert_eq!(snap.histogram("fleet.queue_wait_ns").unwrap().count(), 2);
        // The struct view reads the same cells the registry snapshots.
        assert_eq!(t0.snapshot().peak_queue_depth, 2);
    }
}
