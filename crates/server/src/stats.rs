use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The live counters one shard worker and its clients share.
///
/// Monotonic counters are `fetch_add`ed by their single writer (the shard
/// worker for serve-side counters, any handle for enqueues); `queue_depth`
/// is the one gauge with two writers — handles increment *after* a
/// successful send and the worker decrements on receive, so a fast worker
/// can transiently observe the decrement first. The gauge is signed for
/// exactly that reason and clamped to zero in snapshots. Everything is
/// `Relaxed`: readers take an instantaneous snapshot, not a synchronized
/// cut, and no counter guards any memory.
#[derive(Debug, Default)]
pub(crate) struct ShardTelemetry {
    requests: AtomicU64,
    rejected: AtomicU64,
    completed_runs: AtomicU64,
    failed_runs: AtomicU64,
    comm_rounds: AtomicU64,
    messages: AtomicU64,
    sessions: AtomicU64,
    batches: AtomicU64,
    coalesced_runs: AtomicU64,
    max_batch: AtomicU64,
    queue_depth: AtomicI64,
    peak_queue_depth: AtomicI64,
}

impl ShardTelemetry {
    /// A request entered the shard queue (caller side, after a successful
    /// send — rejected sends never touch the gauge).
    pub(crate) fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// The worker took a request off the queue.
    pub(crate) fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// The worker served one request (`rejected` = it returned an error).
    pub(crate) fn request_served(&self, rejected: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The worker is serving a coalesced batch of `len` requests.
    pub(crate) fn batch_started(&self, len: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(len, Ordering::Relaxed);
    }

    /// One same-`n` run within a batch.
    pub(crate) fn coalesced_run(&self) {
        self.coalesced_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// A new `n → CliqueService` entry was created.
    pub(crate) fn session_created(&self) {
        self.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the shard's aggregated
    /// [`SessionStats`](cc_core::SessionStats) — summed over its
    /// services — after a batch. Single writer, so plain stores.
    pub(crate) fn store_session_totals(
        &self,
        completed: u64,
        failed: u64,
        comm_rounds: u64,
        messages: u64,
    ) {
        self.completed_runs.store(completed, Ordering::Relaxed);
        self.failed_runs.store(failed, Ordering::Relaxed);
        self.comm_rounds.store(comm_rounds, Ordering::Relaxed);
        self.messages.store(messages, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ShardStats {
        ShardStats {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed_runs: self.completed_runs.load(Ordering::Relaxed),
            failed_runs: self.failed_runs.load(Ordering::Relaxed),
            comm_rounds: self.comm_rounds.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_runs: self.coalesced_runs.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed).max(0) as u64,
        }
    }
}

/// A point-in-time snapshot of one shard's counters.
///
/// The `*_runs`, `comm_rounds` and `messages` fields are the shard's
/// [`SessionStats`](cc_core::SessionStats) summed over its per-`n`
/// services — the session layer's own accounting, surfaced per shard.
/// `requests`/`rejected` count at query granularity instead (a request
/// rejected before reaching a session — bad rank, invalid keys — counts
/// as `rejected` but never as a `failed_run`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests answered (including error answers).
    pub requests: u64,
    /// Requests answered with a `CoreError`.
    pub rejected: u64,
    /// Completed protocol runs, summed over this shard's sessions.
    pub completed_runs: u64,
    /// Failed protocol runs, summed over this shard's sessions.
    pub failed_runs: u64,
    /// Communication rounds, summed over this shard's sessions.
    pub comm_rounds: u64,
    /// Messages delivered, summed over this shard's sessions.
    pub messages: u64,
    /// Distinct clique sizes with a live `CliqueService`.
    pub sessions: u64,
    /// Coalesced batches served.
    pub batches: u64,
    /// Same-`n` runs across all served batches (`== batches` when no two
    /// adjacent requests shared a clique size).
    pub coalesced_runs: u64,
    /// Largest single batch drained from the queue.
    pub max_batch: u64,
    /// Requests currently queued (a live gauge, not a total).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub peak_queue_depth: u64,
}

/// Fleet-wide telemetry: one [`ShardStats`] per shard, plus sums.
///
/// Obtained from [`QueryServer::stats`](crate::QueryServer::stats) at any
/// time (an instantaneous snapshot) or from
/// [`QueryServer::shutdown`](crate::QueryServer::shutdown) (final totals —
/// every counter quiescent, queues empty).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Requests answered across the fleet.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Error answers across the fleet.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Completed protocol runs across every shard's sessions.
    pub fn completed_runs(&self) -> u64 {
        self.shards.iter().map(|s| s.completed_runs).sum()
    }

    /// Failed protocol runs across every shard's sessions.
    pub fn failed_runs(&self) -> u64 {
        self.shards.iter().map(|s| s.failed_runs).sum()
    }

    /// Communication rounds across every shard's sessions.
    pub fn comm_rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.comm_rounds).sum()
    }

    /// Messages delivered across every shard's sessions.
    pub fn messages(&self) -> u64 {
        self.shards.iter().map(|s| s.messages).sum()
    }

    /// Live `CliqueService`s across the fleet (one per distinct clique
    /// size per shard that has seen it).
    pub fn sessions(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions).sum()
    }

    /// Coalesced batches served across the fleet.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Largest batch any shard drained in one gulp.
    pub fn max_batch(&self) -> u64 {
        self.shards.iter().map(|s| s.max_batch).max().unwrap_or(0)
    }

    /// Mean requests per served batch (0 when nothing was served).
    pub fn mean_batch_len(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.requests() as f64 / batches as f64
    }

    /// Deepest any shard queue ever got.
    pub fn peak_queue_depth(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_snapshot_round_trips() {
        let t = ShardTelemetry::default();
        t.enqueued();
        t.enqueued();
        t.dequeued();
        t.batch_started(1);
        t.coalesced_run();
        t.session_created();
        t.request_served(false);
        t.request_served(true);
        t.store_session_totals(1, 0, 12, 99);
        let s = t.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed_runs, 1);
        assert_eq!(s.comm_rounds, 12);
        assert_eq!(s.messages, 99);
        assert_eq!(s.sessions, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.coalesced_runs, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn fleet_aggregates_sum_and_max() {
        let a = ShardStats {
            requests: 3,
            rejected: 1,
            batches: 2,
            max_batch: 2,
            peak_queue_depth: 4,
            ..ShardStats::default()
        };
        let b = ShardStats {
            requests: 5,
            batches: 2,
            max_batch: 3,
            peak_queue_depth: 1,
            ..ShardStats::default()
        };
        let fleet = FleetStats { shards: vec![a, b] };
        assert_eq!(fleet.requests(), 8);
        assert_eq!(fleet.rejected(), 1);
        assert_eq!(fleet.batches(), 4);
        assert_eq!(fleet.max_batch(), 3);
        assert_eq!(fleet.peak_queue_depth(), 4);
        assert_eq!(fleet.mean_batch_len(), 2.0);
        assert_eq!(FleetStats::default().mean_batch_len(), 0.0);
    }
}
