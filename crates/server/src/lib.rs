//! # cc-server — concurrent, sharded query serving over a fleet of clique sessions
//!
//! [`CliqueService`](cc_core::CliqueService) answers queries on one
//! persistent session through `&mut self`: a single thread, one clique
//! size amortized at a time. This crate is the layer above, for the
//! ROADMAP's heavy-traffic regime — many client threads, many clique
//! sizes, one shared substrate:
//!
//! * a [`QueryServer`] spawns a configurable number of **shard workers**,
//!   each owning a lazy `n → CliqueService` map, so every clique size's
//!   sessions are warmed exactly once and then reused for every later
//!   query of that size (same-`n` requests always hash to the same
//!   shard);
//! * cloneable [`ServiceHandle`]s let any number of client threads submit
//!   typed [`Request`]s concurrently — the handle is `Send + Sync`, the
//!   per-request reply comes back on a private channel; the
//!   [`submit_tagged`](ServiceHandle::submit_tagged) flavor instead routes
//!   every answer onto one shared channel as an id-tagged [`TaggedReply`],
//!   in completion order — the fan-in a connection multiplexer (the
//!   `cc-net` wire server) needs for pipelined out-of-order replies;
//! * shard queues are **bounded**: [`ServiceHandle::call`] blocks when a
//!   queue is full (backpressure), [`ServiceHandle::try_call`] returns
//!   [`ServerError::Overloaded`] instead;
//! * a shard drains its queue in gulps and **coalesces** the drained run
//!   into per-clique-size batches served back-to-back on one warm
//!   session — the server-side analogue of
//!   [`CliqueSession::run_many`](cc_sim::CliqueSession::run_many) —
//!   recording batch-size telemetry as it goes;
//! * [`QueryServer::shutdown`] is **graceful**: in-flight and queued
//!   requests are answered before the workers exit, and late callers get
//!   [`ServerError::ShutDown`] rather than a hang;
//! * [`FleetStats`] aggregates, per shard, the underlying
//!   [`SessionStats`](cc_core::SessionStats) counters plus queue-depth
//!   and batch-size telemetry.
//!
//! The contract is inherited from the session layer and asserted under
//! concurrent load in the workspace's `tests/server.rs`: **every response
//! is bit-identical to a direct sequential [`CliqueService`]
//! call** — sharding, coalescing and interleaving are invisible in the
//! answers, exactly as the paper's determinism is invisible to
//! scheduling. (Amortizing fixed per-invocation costs across many
//! instances is the same argument as the multi-instance scheduling of
//! Chang–Huang–Su, *Deterministic Expander Routing: Faster and More
//! Versatile*.)
//!
//! ```rust
//! use cc_server::{QueryServer, Request, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = QueryServer::new(ServerConfig::new(2))?;
//! let handle = server.handle();
//!
//! // Handles are cheap to clone and safe to use from many threads.
//! let worker = {
//!     let handle = handle.clone();
//!     std::thread::spawn(move || {
//!         let keys: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
//!         handle.call(Request::Sort(keys))
//!     })
//! };
//! let inst = cc_core::routing::RoutingInstance::from_demands(8, |_, _| 1)?;
//! let routed = handle.call(Request::Route(inst))?;
//! assert!(routed.metrics().comm_rounds() <= 16);
//! assert!(worker.join().unwrap().is_ok());
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.requests(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod request;
mod server;
mod shard;
mod stats;

pub use config::ServerConfig;
pub use error::ServerError;
pub use request::{QueryResult, Request};
pub use server::{Pending, QueryServer, ServiceHandle};
pub use shard::{ReplyWaker, TaggedReply};
pub use stats::{FleetStats, ShardStats};
