use crate::error::ServerError;

/// Sizing knobs for a [`QueryServer`](crate::QueryServer).
///
/// Every knob is a plain value with a validated floor, so a config is
/// deterministic once constructed; only [`ServerConfig::default`] consults
/// the host (one shard per available core, capped at 8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    shards: usize,
    queue_capacity: usize,
    coalesce_limit: usize,
}

impl ServerConfig {
    /// A config with `shards` shard workers and the default queue bound
    /// (64 requests per shard) and coalescing gulp (16 requests).
    pub fn new(shards: usize) -> Self {
        ServerConfig {
            shards,
            queue_capacity: 64,
            coalesce_limit: 16,
        }
    }

    /// Sets the per-shard queue bound: how many requests may wait on one
    /// shard before [`call`](crate::ServiceHandle::call) blocks and
    /// [`try_call`](crate::ServiceHandle::try_call) reports
    /// [`Overloaded`](ServerError::Overloaded).
    #[must_use]
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets how many queued requests a shard drains into one coalesced
    /// batch before answering (1 disables coalescing).
    #[must_use]
    pub fn with_coalesce_limit(mut self, coalesce_limit: usize) -> Self {
        self.coalesce_limit = coalesce_limit;
        self
    }

    /// Number of shard workers.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-shard bounded-queue capacity.
    #[inline]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Maximum requests coalesced into one served batch.
    #[inline]
    pub fn coalesce_limit(&self) -> usize {
        self.coalesce_limit
    }

    pub(crate) fn validate(&self) -> Result<(), ServerError> {
        if self.shards == 0 {
            return Err(ServerError::invalid_config("at least one shard required"));
        }
        if self.queue_capacity == 0 {
            return Err(ServerError::invalid_config(
                "queue capacity must be at least 1",
            ));
        }
        if self.coalesce_limit == 0 {
            return Err(ServerError::invalid_config(
                "coalesce limit must be at least 1",
            ));
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    /// One shard per available core, capped at 8 — constant-round queries
    /// are short, so past a handful of shards the queues, not the CPUs,
    /// are the bottleneck.
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServerConfig::new(cores.min(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let config = ServerConfig::new(3)
            .with_queue_capacity(5)
            .with_coalesce_limit(2);
        assert_eq!(config.shards(), 3);
        assert_eq!(config.queue_capacity(), 5);
        assert_eq!(config.coalesce_limit(), 2);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServerConfig::new(0).validate().is_err());
        assert!(ServerConfig::new(1)
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(ServerConfig::new(1)
            .with_coalesce_limit(0)
            .validate()
            .is_err());
    }

    #[test]
    fn default_has_at_least_one_shard() {
        let config = ServerConfig::default();
        assert!(config.shards() >= 1 && config.shards() <= 8);
        assert!(config.validate().is_ok());
    }
}
