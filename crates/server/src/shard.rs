//! The shard worker: one thread owning a lazy `n → CliqueService` map,
//! draining its bounded queue in gulps and answering each drained batch
//! in coalesced same-`n` runs on the warm session for that clique size.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use cc_core::obs;
use cc_core::{CliqueService, CoreError};

use crate::request::{QueryResult, Request};
use crate::stats::ShardTelemetry;

/// A wake-up hook invoked *after* a [`TaggedReply`] lands on its shared
/// channel. An event-driven consumer (the `cc-net` reactor) blocks in a
/// readiness call — `poll(2)` over sockets — where an mpsc channel is
/// invisible; the waker is its out-of-band doorbell (typically a one-byte
/// write to a self-pipe whose read end sits in the poll set). Invoked
/// from shard worker threads, so it must be cheap and must never block:
/// coalesce redundant wake-ups on the consumer side, not here.
pub type ReplyWaker = Arc<dyn Fn() + Send + Sync>;

/// One answer routed over a shared reply channel: the caller-chosen
/// request id plus the result, exactly as a private-channel reply would
/// carry it. Produced by the shard workers for requests submitted with
/// [`ServiceHandle::submit_tagged`](crate::ServiceHandle::submit_tagged);
/// the id is what lets a multiplexing consumer — the `cc-net` connection
/// writer — match out-of-order completions back to their requests.
#[derive(Debug)]
pub struct TaggedReply {
    /// The id the submitter attached to the request.
    pub id: u64,
    /// The answer, exactly as [`Pending::wait`](crate::Pending) would
    /// deliver it before server-error wrapping.
    pub result: QueryResult,
}

/// Where a served request's answer goes: the private per-request channel
/// of the `submit`/`call` API, or a shared tagged channel multiplexing
/// many in-flight requests (the `submit_tagged` API). Dropping a sink
/// unanswered (only possible when the whole queue is dropped at teardown)
/// closes the private channel — surfaced by the waiting handle as
/// [`ServerError::ShutDown`](crate::ServerError) — or simply drops one
/// sender clone of the shared channel.
pub(crate) enum ReplySink {
    Private(Sender<QueryResult>),
    Tagged {
        id: u64,
        tx: Sender<TaggedReply>,
        /// Rung after the reply is on the channel; see [`ReplyWaker`].
        wake: Option<ReplyWaker>,
    },
}

impl ReplySink {
    /// Delivers `result`. A closed channel means the consumer gave up
    /// (dropped its `Pending`, or the connection writer exited); the
    /// answer is simply lost, matching the private-channel semantics.
    pub(crate) fn send(&self, result: QueryResult) {
        match self {
            ReplySink::Private(tx) => {
                let _ = tx.send(result);
            }
            ReplySink::Tagged { id, tx, wake } => {
                let _ = tx.send(TaggedReply { id: *id, result });
                // Wake even when the send failed: a consumer that closed
                // its channel only tears down further on extra wake-ups,
                // and the common case (send succeeded) must always ring.
                if let Some(wake) = wake {
                    wake();
                }
            }
        }
    }
}

/// One in-flight query: the request plus the sink its answer travels
/// back through.
pub(crate) struct QueryJob {
    pub(crate) request: Request,
    pub(crate) reply: ReplySink,
    /// [`obs::now`] stamp taken just before the queue send; the dequeue
    /// side turns it into a `fleet.queue_wait_ns` sample. `None` when
    /// timing is disabled — the histogram then simply records nothing,
    /// while every counter keeps its usual meaning.
    pub(crate) enqueued_at: Option<Instant>,
}

/// What travels on a shard's queue.
pub(crate) enum Envelope {
    /// A client query.
    Query(QueryJob),
    /// Graceful-shutdown marker: serve everything already queued, then
    /// exit. Sent once per shard by [`QueryServer::shutdown`](crate::QueryServer).
    Shutdown,
    /// Test-only: park the worker until the sender side of `gate` is
    /// dropped, acknowledging pickup on `ack` first. Lets tests fill a
    /// bounded queue deterministically (after the ack, the worker
    /// provably isn't draining it and the marker occupies no queue slot).
    #[cfg(test)]
    Park {
        /// Signals that the worker has dequeued the marker.
        ack: Sender<()>,
        /// The worker blocks until this channel's sender drops.
        gate: Receiver<()>,
    },
}

/// The worker loop. Runs until the shutdown marker arrives or every
/// sender (all handles and the server) is gone.
pub(crate) fn run_shard(
    queue: Receiver<Envelope>,
    telemetry: Arc<ShardTelemetry>,
    coalesce_limit: usize,
) {
    let mut services: HashMap<usize, CliqueService> = HashMap::new();
    let mut batch: Vec<QueryJob> = Vec::new();
    loop {
        let mut draining = false;
        // Park until there is work (or the queue closes for good).
        match queue.recv() {
            Ok(Envelope::Query(job)) => {
                telemetry.dequeued();
                telemetry.queue_wait.record_elapsed(job.enqueued_at);
                batch.push(job);
            }
            Ok(Envelope::Shutdown) => draining = true,
            #[cfg(test)]
            Ok(Envelope::Park { ack, gate }) => {
                let _ = ack.send(());
                let _ = gate.recv();
                continue;
            }
            Err(_) => return,
        }
        // Gulp: coalesce whatever else is already queued, up to the limit.
        while !draining && batch.len() < coalesce_limit {
            match queue.try_recv() {
                Ok(Envelope::Query(job)) => {
                    telemetry.dequeued();
                    telemetry.queue_wait.record_elapsed(job.enqueued_at);
                    batch.push(job);
                }
                Ok(Envelope::Shutdown) => draining = true,
                #[cfg(test)]
                Ok(Envelope::Park { ack, gate }) => {
                    let _ = ack.send(());
                    let _ = gate.recv();
                }
                Err(_) => break,
            }
        }
        serve_batch(&mut services, &mut batch, &telemetry);
        if draining {
            // Graceful drain: callers blocked on a full queue get their
            // slot as we consume, so everything that made it into the
            // queue before (or while) shutting down is still answered —
            // still in coalesced gulps, so the final telemetry keeps the
            // normal batch semantics. Once `queue` drops at return, any
            // still-racing send fails fast on the caller's side instead
            // of hanging.
            while let Ok(envelope) = queue.try_recv() {
                if let Envelope::Query(job) = envelope {
                    telemetry.dequeued();
                    telemetry.queue_wait.record_elapsed(job.enqueued_at);
                    batch.push(job);
                    if batch.len() >= coalesce_limit {
                        serve_batch(&mut services, &mut batch, &telemetry);
                    }
                }
            }
            serve_batch(&mut services, &mut batch, &telemetry);
            return;
        }
    }
}

/// Answers `batch` in order, one coalesced run per maximal same-`n`
/// stretch, then publishes the shard's aggregated session counters.
/// Clears `batch`.
fn serve_batch(
    services: &mut HashMap<usize, CliqueService>,
    batch: &mut Vec<QueryJob>,
    telemetry: &ShardTelemetry,
) {
    if batch.is_empty() {
        return;
    }
    telemetry.batch_started(batch.len() as u64);
    let mut start = 0;
    while start < batch.len() {
        let n = batch[start].request.n();
        let mut end = start + 1;
        while end < batch.len() && batch[end].request.n() == n {
            end += 1;
        }
        telemetry.coalesced_run();
        match service_for(services, n, telemetry) {
            Ok(service) => {
                for job in &batch[start..end] {
                    let run_started = obs::now();
                    let result = job.request.serve_on(service);
                    telemetry.session_run.record_elapsed(run_started);
                    telemetry.request_served(result.is_err());
                    job.reply.send(result);
                }
            }
            Err(e) => {
                for job in &batch[start..end] {
                    // A zero-length sample keeps the histogram's count in
                    // lockstep with `requests` even when the session never
                    // existed.
                    telemetry.session_run.record_elapsed(obs::now());
                    telemetry.request_served(true);
                    job.reply.send(Err(e.clone()));
                }
            }
        }
        start = end;
    }
    batch.clear();

    // Surface the session layer's own accounting per shard: the sums of
    // every live service's `SessionStats`.
    let (mut completed, mut failed, mut rounds, mut messages) = (0u64, 0u64, 0u64, 0u64);
    for service in services.values() {
        let stats = service.stats();
        completed = completed.saturating_add(stats.completed());
        failed = failed.saturating_add(stats.failed());
        rounds = rounds.saturating_add(stats.comm_rounds());
        messages = messages.saturating_add(stats.messages());
    }
    telemetry.store_session_totals(completed, failed, rounds, messages);
}

/// The warm service for clique size `n`, created on first use. Creation
/// failures (only `n == 0`) are not cached: the error is the answer.
fn service_for<'a>(
    services: &'a mut HashMap<usize, CliqueService>,
    n: usize,
    telemetry: &ShardTelemetry,
) -> Result<&'a mut CliqueService, CoreError> {
    use std::collections::hash_map::Entry;
    match services.entry(n) {
        Entry::Occupied(entry) => Ok(entry.into_mut()),
        Entry::Vacant(slot) => {
            let service = CliqueService::new(n)?;
            telemetry.session_created();
            Ok(slot.insert(service))
        }
    }
}
