use cc_core::CoreError;
use std::fmt;

/// Errors surfaced by the server layer.
///
/// [`ServerError::Query`] wraps the exact [`CoreError`] a direct
/// [`CliqueService`](cc_core::CliqueService) call would have returned —
/// the server adds no error translation, so parity tests can compare the
/// wrapped value against the sequential reference with `==`. The other
/// variants are genuinely server-side: configuration rejection, a full
/// shard queue under [`try_call`](crate::ServiceHandle::try_call), and
/// requests that race or follow [`shutdown`](crate::QueryServer::shutdown).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// The [`ServerConfig`](crate::ServerConfig) is unusable.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The target shard's bounded queue was full (returned only by the
    /// `try_` API; the blocking API waits for a slot instead).
    Overloaded,
    /// The server has shut down (or shut down while this request was
    /// waiting for its answer).
    ShutDown,
    /// The query executed and failed, exactly as it would have on a
    /// direct [`CliqueService`](cc_core::CliqueService) call.
    Query(CoreError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::InvalidConfig { reason } => {
                write!(f, "invalid server config: {reason}")
            }
            ServerError::Overloaded => write!(f, "shard queue is full"),
            ServerError::ShutDown => write!(f, "server has shut down"),
            ServerError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl ServerError {
    pub(crate) fn invalid_config(reason: impl Into<String>) -> Self {
        ServerError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// The wrapped [`CoreError`], when this is a query-level failure.
    pub fn as_query_error(&self) -> Option<&CoreError> {
        match self {
            ServerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ServerError::Query(CoreError::invalid("bad rank"));
        assert!(e.to_string().contains("bad rank"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.as_query_error().is_some());
        assert!(ServerError::Overloaded.as_query_error().is_none());
        assert!(std::error::Error::source(&ServerError::ShutDown).is_none());
        assert!(ServerError::invalid_config("zero shards")
            .to_string()
            .contains("zero shards"));
    }
}
