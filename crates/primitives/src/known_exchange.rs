//! Corollary 3.3: two-round delivery of a commonly known, line-bounded
//! demand pattern within a node group.
//!
//! All members of `W` know the demand matrix. They pad it to an
//! `m`-regular multigraph (`m` = maximum row/column sum), compute the same
//! König edge coloring locally, and send the message on each color-`c`
//! edge to relay node `c mod n` in round 1. Because every color class is a
//! perfect matching, relay `r` receives at most `⌈m/n⌉` messages per
//! sender and holds at most `⌈m/n⌉` messages per destination, so round 2
//! delivers everything directly. For `m ≤ n` this is exactly
//! Corollary 3.3 (one message per edge); for slightly larger `m` — which
//! arises under the paper's relaxed "at most n messages" semantics — the
//! same two rounds go through with a constant-factor message-size
//! increase, the device the paper invokes throughout ("we can increase
//! message size by any constant factor"). Non-members participate only as
//! relays — every edge used has at least one endpoint in `W`, so disjoint
//! groups can run exchanges concurrently.

use crate::demand::DemandMatrix;
use crate::driver::{Driver, DriverStep};
use crate::group::NodeGroup;
use cc_coloring::{
    color_exact, exact_coloring_work, pad_demands_to_regular, BipartiteMultigraph, EdgeIndexer,
};
use cc_sim::hash::combine;
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};
use std::sync::Arc;

/// Messages of a [`KnownExchange`].
#[derive(Clone, Debug)]
pub enum KxMsg<T> {
    /// Round-1 message: `payload` travels to a relay, tagged with its
    /// final destination.
    Relay {
        /// Final destination the relay must forward to.
        dst: NodeId,
        /// The application payload.
        payload: T,
    },
    /// Round-2 message: the relay's direct delivery.
    Final {
        /// The application payload.
        payload: T,
    },
}

impl<T: Payload> Payload for KxMsg<T> {
    fn size_bits(&self, n: usize) -> u64 {
        // 1 tag bit; relay legs carry the destination id.
        match self {
            KxMsg::Relay { payload, .. } => 1 + word_bits(n) + payload.size_bits(n),
            KxMsg::Final { payload } => 1 + payload.size_bits(n),
        }
    }
}

/// Maximum tolerated ratio between a demand matrix's line sums and the
/// clique size. Each unit above 1 costs one extra message per edge in both
/// exchange rounds (still `O(log n)` bits for constant factors).
pub const MAX_RELAY_FACTOR: u64 = 8;

/// How the common-knowledge routing plan is computed.
///
/// `PerEdge` is the paper's basic scheme: one multigraph edge per message,
/// colored exactly — `Θ(|messages|·log)` local computation. `Bundled` is
/// the §5 scheme (footnote 3 spirit): messages of a cell are grouped into
/// bundles of `⌈n/|W|⌉`, only the `O(n)`-edge bundle graph is colored, and
/// a bundle's messages fan out over consecutive relays — `O(n log n)`
/// local computation, at the cost of a small constant-factor increase in
/// per-edge load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// One colored edge per message (exact Corollary 3.3).
    PerEdge,
    /// One colored edge per bundle of `⌈n/|W|⌉` messages (§5).
    Bundled,
}

/// The routing schedule all members derive from common knowledge: one
/// relay per canonical edge (or bundle) of the padded demand multigraph.
#[derive(Debug)]
struct KxPlan {
    indexer: EdgeIndexer,
    colors: Vec<u32>,
    padded_edges: usize,
    degree: u64,
    /// Messages per colored edge (1 for per-edge plans).
    bundle: u64,
}

impl KxPlan {
    /// Relay node for the `k`-th payload of cell `(i, j)`.
    fn relay(&self, i: usize, j: usize, k: usize, n: usize) -> NodeId {
        let color = u64::from(self.colors[self.indexer.edge_id(i, j, k / self.bundle as usize)]);
        let slot = (k as u64) % self.bundle;
        NodeId::new(((color * self.bundle + slot) % n as u64) as usize)
    }
}

fn color_padded(group_len: usize, counts: &[u32], m: u64) -> (EdgeIndexer, Vec<u32>, usize) {
    let m32 = u32::try_from(m).expect("line sums fit u32");
    let extra = pad_demands_to_regular(group_len, group_len, counts, m32)
        .expect("line sums are <= m by construction");
    let padded: Vec<u32> = counts.iter().zip(&extra).map(|(a, b)| a + b).collect();
    let graph = BipartiteMultigraph::from_demands(group_len, group_len, &padded)
        .expect("padded matrix has the declared shape");
    let coloring = color_exact(&graph).expect("padded matrix is m-regular");
    (
        EdgeIndexer::new(group_len, group_len, &padded),
        coloring.colors().to_vec(),
        graph.num_edges(),
    )
}

fn build_plan(
    group_len: usize,
    demands: &DemandMatrix,
    n: usize,
    strategy: ExchangeStrategy,
) -> KxPlan {
    match strategy {
        ExchangeStrategy::PerEdge => {
            let m = demands.max_line_sum();
            if m == 0 {
                return KxPlan {
                    indexer: EdgeIndexer::new(group_len, group_len, demands.counts()),
                    colors: Vec::new(),
                    padded_edges: 0,
                    degree: 0,
                    bundle: 1,
                };
            }
            let (indexer, colors, padded_edges) = color_padded(group_len, demands.counts(), m);
            KxPlan {
                indexer,
                colors,
                padded_edges,
                degree: m,
                bundle: 1,
            }
        }
        ExchangeStrategy::Bundled => {
            let bundle = (n.div_ceil(group_len.max(1))).max(1) as u64;
            let bundle_counts: Vec<u32> = demands
                .counts()
                .iter()
                .map(|&c| (u64::from(c).div_ceil(bundle)) as u32)
                .collect();
            let bm = DemandMatrix::from_counts(group_len, bundle_counts);
            let m = bm.max_line_sum();
            if m == 0 {
                return KxPlan {
                    indexer: EdgeIndexer::new(group_len, group_len, bm.counts()),
                    colors: Vec::new(),
                    padded_edges: 0,
                    degree: 0,
                    bundle,
                };
            }
            let (indexer, colors, padded_edges) = color_padded(group_len, bm.counts(), m);
            KxPlan {
                indexer,
                colors,
                padded_edges,
                degree: m,
                bundle,
            }
        }
    }
}

enum Role<T> {
    Member {
        group: NodeGroup,
        demands: DemandMatrix,
        /// Outgoing payloads grouped by local destination index. The k-th
        /// entry of `outgoing[j]` is the k-th parallel edge to `j` in the
        /// canonical order — all members must use consistent local
        /// orderings for their own messages (any fixed order works).
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
        strategy: ExchangeStrategy,
    },
    /// Not a member: forwards relayed messages, outputs nothing.
    Relay,
}

/// Corollary 3.3 as a [`Driver`]: 2 rounds, output `Vec<T>` of received
/// payloads (empty on non-members).
///
/// # Preconditions (checked at activation)
///
/// * every row/column sum of `demands` is at most `n`;
/// * member `i`'s `outgoing[j].len()` equals `demands.get(i, j)`.
///
/// Payloads must self-describe (carry source/sequence ids) if receivers
/// need them: relays do not annotate provenance, mirroring the paper's
/// messages which "explicitly contain these values".
pub struct KnownExchange<T> {
    role: Role<T>,
    call: u8,
    received: Vec<T>,
}

impl<T> std::fmt::Debug for KnownExchange<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let role = match &self.role {
            Role::Member { group, .. } => format!("member of {} nodes", group.len()),
            Role::Relay => "relay".to_owned(),
        };
        write!(f, "KnownExchange({role}, call {})", self.call)
    }
}

impl<T: Payload + Send + Sync + 'static> KnownExchange<T> {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 2;

    /// Creates the member-side driver. `outgoing[j]` holds this node's
    /// payloads for the group's `j`-th member; `scope` identifies the
    /// phase for the shared plan cache (per-group disambiguation is
    /// automatic).
    pub fn member(
        group: NodeGroup,
        demands: DemandMatrix,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
    ) -> Self {
        Self::member_with_strategy(group, demands, outgoing, scope, ExchangeStrategy::PerEdge)
    }

    /// As [`KnownExchange::member`] with the §5 bundled plan: only the
    /// `O(n)`-edge bundle graph is colored, keeping local computation in
    /// `O(n log n)`.
    pub fn member_bundled(
        group: NodeGroup,
        demands: DemandMatrix,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
    ) -> Self {
        Self::member_with_strategy(group, demands, outgoing, scope, ExchangeStrategy::Bundled)
    }

    /// Member constructor with an explicit [`ExchangeStrategy`].
    pub fn member_with_strategy(
        group: NodeGroup,
        demands: DemandMatrix,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
        strategy: ExchangeStrategy,
    ) -> Self {
        KnownExchange {
            role: Role::Member {
                group,
                demands,
                outgoing,
                scope,
                strategy,
            },
            call: 0,
            received: Vec::new(),
        }
    }

    /// Creates the relay-side driver for nodes outside the group.
    pub fn relay_only() -> Self {
        KnownExchange {
            role: Role::Relay,
            call: 0,
            received: Vec::new(),
        }
    }
}

impl<T: Payload + Send + Sync + 'static> Driver for KnownExchange<T> {
    type Msg = KxMsg<T>;
    type Output = Vec<T>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        let Role::Member {
            group,
            demands,
            outgoing,
            scope,
            strategy,
        } = &mut self.role
        else {
            return Vec::new();
        };
        let me = ctx.me();
        let my_local = group
            .local_index(me)
            .expect("member constructor used on a non-member node");
        assert_eq!(
            outgoing.len(),
            group.len(),
            "outgoing must have one bucket per group member"
        );
        for (j, bucket) in outgoing.iter().enumerate() {
            assert_eq!(
                bucket.len(),
                demands.get(my_local, j) as usize,
                "outgoing bucket {j} disagrees with the demand matrix"
            );
        }

        let n = ctx.n();
        let strategy = *strategy;
        let plan_scope = CommonScope::new(scope.label, combine(scope.tag, group.stable_hash()));
        let input_hash = combine(group.stable_hash(), demands.stable_hash());
        let group_len = group.len();
        let demands_ref = demands.clone();
        let plan: Arc<KxPlan> = ctx
            .common()
            .get_or_compute(plan_scope, input_hash, move || {
                build_plan(group_len, &demands_ref, n, strategy)
            });
        assert!(
            plan.degree * plan.bundle <= MAX_RELAY_FACTOR * n as u64,
            "relay space {}×{} exceeds {MAX_RELAY_FACTOR}·n = {} — demands too concentrated",
            plan.degree,
            plan.bundle,
            MAX_RELAY_FACTOR * n as u64
        );
        // Charge the local cost of the coloring the node (conceptually)
        // computed, plus a linear pass over its own messages.
        ctx.charge_work(exact_coloring_work(plan.padded_edges, plan.degree as usize));
        ctx.note_mem(plan.padded_edges as u64 + demands.counts().len() as u64);

        let mut sends = Vec::new();
        for (j, bucket) in outgoing.iter_mut().enumerate() {
            let dst = group.member(j);
            for (k, payload) in bucket.drain(..).enumerate() {
                sends.push((plan.relay(my_local, j, k, n), KxMsg::Relay { dst, payload }));
            }
        }
        ctx.charge_work(sends.len() as u64);
        sends
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        match self.call {
            1 => {
                // Relay role (every node): forward to final destinations.
                ctx.charge_work(inbox.len() as u64);
                let sends = inbox
                    .into_iter()
                    .map(|(_, msg)| match msg {
                        KxMsg::Relay { dst, payload } => (dst, KxMsg::Final { payload }),
                        KxMsg::Final { .. } => {
                            panic!("Final message arrived in the relay round")
                        }
                    })
                    .collect();
                DriverStep::sends(sends)
            }
            2 => {
                ctx.charge_work(inbox.len() as u64);
                self.received.reserve(inbox.len());
                for (_, msg) in inbox {
                    match msg {
                        KxMsg::Final { payload } => self.received.push(payload),
                        KxMsg::Relay { .. } => {
                            panic!("Relay message arrived in the delivery round")
                        }
                    }
                }
                DriverStep::done(std::mem::take(&mut self.received))
            }
            _ => panic!("KnownExchange stepped past completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    /// A self-describing test payload: (source, sequence).
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Tag(u32, u32);

    impl Payload for Tag {
        fn size_bits(&self, n: usize) -> u64 {
            2 * word_bits(n)
        }
    }

    fn run_exchange(
        n: usize,
        group: NodeGroup,
        demand_fn: impl Fn(usize, usize) -> u32,
    ) -> (Vec<Vec<Tag>>, cc_sim::Metrics) {
        let w = group.len();
        let mut demands = DemandMatrix::new(w);
        for i in 0..w {
            for j in 0..w {
                demands.set(i, j, demand_fn(i, j));
            }
        }
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            if let Some(my_local) = group.local_index(me) {
                let outgoing: Vec<Vec<Tag>> = (0..w)
                    .map(|j| {
                        (0..demands.get(my_local, j))
                            .map(|k| Tag(me.raw(), k))
                            .collect()
                    })
                    .collect();
                drive(KnownExchange::member(
                    group.clone(),
                    demands.clone(),
                    outgoing,
                    CommonScope::new("test.kx", 0),
                ))
            } else {
                drive(KnownExchange::relay_only())
            }
        })
        .unwrap();
        (report.outputs, report.metrics)
    }

    #[test]
    fn uniform_all_to_all_within_whole_clique() {
        let n = 8;
        let group = NodeGroup::whole_clique(n);
        let (outputs, metrics) = run_exchange(n, group, |_, _| 1);
        assert_eq!(metrics.comm_rounds(), 2);
        for out in &outputs {
            assert_eq!(out.len(), n);
            // One message from every source.
            let mut sources: Vec<u32> = out.iter().map(|t| t.0).collect();
            sources.sort_unstable();
            assert_eq!(sources, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn skewed_but_balanced_demands() {
        // Cyclic demands: i sends 4 messages to i+1 (mod w).
        let n = 9;
        let group = NodeGroup::contiguous(0, 3);
        let (outputs, metrics) =
            run_exchange(
                n,
                group.clone(),
                |i, j| if (i + 1) % 3 == j { 4 } else { 0 },
            );
        assert_eq!(metrics.comm_rounds(), 2);
        for (v, out) in outputs.iter().enumerate() {
            if let Some(local) = group.local_index(NodeId::new(v)) {
                assert_eq!(out.len(), 4, "member {local} should receive 4");
                let expected_src = group.member((local + 3 - 1) % 3).raw();
                assert!(out.iter().all(|t| t.0 == expected_src));
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn subgroup_uses_outside_relays() {
        // Group {3, 4, 5} in a 12-clique: relays are nodes 0..m.
        let n = 12;
        let group = NodeGroup::contiguous(3, 3);
        let (outputs, metrics) = run_exchange(n, group, |_, _| 2);
        assert_eq!(metrics.comm_rounds(), 2);
        for (v, out) in outputs.iter().enumerate() {
            if (3..6).contains(&v) {
                assert_eq!(out.len(), 6);
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn empty_demands_complete_without_traffic() {
        let n = 4;
        let group = NodeGroup::whole_clique(n);
        let (outputs, metrics) = run_exchange(n, group, |_, _| 0);
        assert_eq!(metrics.comm_rounds(), 0);
        assert!(outputs.iter().all(Vec::is_empty));
    }

    #[test]
    fn two_disjoint_groups_in_parallel() {
        // Two groups exchanging concurrently, sharing relay nodes 0..m.
        let n = 8;
        let g1 = NodeGroup::contiguous(0, 4);
        let g2 = NodeGroup::contiguous(4, 4);
        let mk_demands = || {
            let mut d = DemandMatrix::new(4);
            for i in 0..4 {
                for j in 0..4 {
                    d.set(i, j, 2);
                }
            }
            d
        };
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let (group, scope_tag) = if me.index() < 4 { (&g1, 1) } else { (&g2, 2) };
            let local = group.local_index(me).unwrap();
            let demands = mk_demands();
            let outgoing: Vec<Vec<Tag>> = (0..4)
                .map(|j| {
                    (0..demands.get(local, j))
                        .map(|k| Tag(me.raw(), k))
                        .collect()
                })
                .collect();
            drive(KnownExchange::member(
                group.clone(),
                demands,
                outgoing,
                CommonScope::new("test.parallel", scope_tag),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        for out in &report.outputs {
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    fn bundled_strategy_delivers_identically() {
        // Same workload through per-edge and bundled plans: identical
        // multisets, identical round count.
        let n = 16;
        let group = NodeGroup::contiguous(0, 4);
        let mut demands = DemandMatrix::new(4);
        for i in 0..4 {
            for j in 0..4 {
                demands.set(i, j, ((i * 3 + j * 5) % 4) as u32 + 1);
            }
        }
        let run = |strategy: ExchangeStrategy| {
            run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                if let Some(local) = group.local_index(me) {
                    let outgoing: Vec<Vec<Tag>> = (0..4)
                        .map(|j| {
                            (0..demands.get(local, j))
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        })
                        .collect();
                    drive(KnownExchange::member_with_strategy(
                        group.clone(),
                        demands.clone(),
                        outgoing,
                        CommonScope::new("test.kx.strat", strategy as u64),
                        strategy,
                    ))
                } else {
                    drive(KnownExchange::relay_only())
                }
            })
            .unwrap()
        };
        let per_edge = run(ExchangeStrategy::PerEdge);
        let bundled = run(ExchangeStrategy::Bundled);
        assert_eq!(per_edge.metrics.comm_rounds(), 2);
        assert_eq!(bundled.metrics.comm_rounds(), 2);
        for (a, b) in per_edge.outputs.iter().zip(&bundled.outputs) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bundled_heavy_cells() {
        // One cell dominates: bundles of ⌈n/|W|⌉ = 8 messages.
        let n = 16;
        let group = NodeGroup::contiguous(0, 2);
        let mut demands = DemandMatrix::new(2);
        demands.set(0, 1, 16);
        demands.set(1, 0, 16);
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
            if let Some(local) = group.local_index(me) {
                let outgoing: Vec<Vec<Tag>> = (0..2)
                    .map(|j| {
                        (0..demands.get(local, j))
                            .map(|k| Tag(me.raw(), k))
                            .collect()
                    })
                    .collect();
                drive(KnownExchange::member_bundled(
                    group.clone(),
                    demands.clone(),
                    outgoing,
                    CommonScope::new("test.kx.heavy", 0),
                ))
            } else {
                drive(KnownExchange::relay_only())
            }
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        assert_eq!(report.outputs[0].len(), 16);
        assert_eq!(report.outputs[1].len(), 16);
    }

    #[test]
    #[should_panic(expected = "disagrees with the demand matrix")]
    fn validates_outgoing_against_demands() {
        let n = 4;
        let group = NodeGroup::whole_clique(n);
        let mut demands = DemandMatrix::new(n);
        demands.set(0, 1, 2);
        demands.set(1, 0, 2); // balanced matrix, but node 0 sends nothing
        let _ = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let outgoing: Vec<Vec<Tag>> = vec![Vec::new(); n];
            let _ = me;
            drive(KnownExchange::member(
                group.clone(),
                demands.clone(),
                outgoing,
                CommonScope::new("test.bad", 0),
            ))
        });
    }
}
