//! # cc-primitives — communication primitives of the congested clique
//!
//! The deterministic routing and sorting algorithms of Lenzen (PODC 2013)
//! are built from a small set of constant-round communication patterns:
//!
//! * [`KnownExchange`] — **Corollary 3.3**: when the demand matrix within a
//!   node group `W` is common knowledge and every row/column sum is at most
//!   `m ≤ n`, all messages are delivered in **2 rounds** by coloring the
//!   demand multigraph with `m` colors (König's theorem) and relaying each
//!   color class through a distinct intermediate node.
//! * [`SubsetExchange`] — **Corollary 3.4**: for `|W| ≤ √n` the demand
//!   matrix is *not* known in advance; two rounds of count announcement
//!   (itself a [`KnownExchange`]) establish it, then two more rounds
//!   deliver — **4 rounds** total.
//! * [`GroupAnnounce`] — each member of `W` disseminates a vector of
//!   values to all members (the "announce counts" steps of Algorithms 2
//!   and 3); a [`KnownExchange`] with a uniform demand matrix, 2 rounds.
//! * [`RelayBroadcast`] — up to `n` globally slot-indexed items become
//!   known to *every* node in 2 rounds (one relay per slot, then a
//!   broadcast), used for delimiter announcement in Algorithm 4.
//! * [`RoundRobinScatter`] — **Lemma 5.1**: an oblivious 2-round
//!   redistribution that needs no counting announcements at all, at the
//!   cost of only approximate balance (`≤ 2√n` per destination-set per
//!   node); the workhorse of the computation-optimal §5 variant.
//!
//! All primitives are written as [`Driver`]s: resumable per-node state
//! machines that a parent [`NodeMachine`](cc_sim::NodeMachine) advances one
//! round at a time, wrapping their messages into its own message enum.
//! Every node of the clique runs every driver (non-members participate as
//! relays), which is exactly how the paper's algorithms use "edges with at
//! least one endpoint in W".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod announce;
mod demand;
mod driver;
mod group;
mod headerless;
mod known_exchange;
mod relay_broadcast;
mod scatter;
mod subset_exchange;

pub use announce::{AnnounceMsg, GroupAnnounce};
pub use demand::DemandMatrix;
pub use driver::{drive, drive_protocol_on, Driver, DriverStep};
pub use group::NodeGroup;
pub use headerless::{HeaderlessExchange, HxMsg};
pub use known_exchange::{ExchangeStrategy, KnownExchange, KxMsg, MAX_RELAY_FACTOR};
pub use relay_broadcast::{RbMsg, RelayBroadcast};
pub use scatter::{RoundRobinScatter, ScatterMsg};
pub use subset_exchange::{SubsetExchange, SxMsg};
