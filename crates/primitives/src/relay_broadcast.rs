//! Two-round global dissemination of up to `n` slot-indexed items.
//!
//! Used by Algorithm 4, Step 4 (delimiter announcement): each item with a
//! globally unique slot `t < n` travels to relay node `t` in round 1; in
//! round 2 relay `t` broadcasts it to all `n` nodes (one message per edge).
//! After 2 rounds *every* node knows every item.

use crate::driver::{Driver, DriverStep};
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, NodeId, Payload};

/// Messages of a [`RelayBroadcast`].
#[derive(Clone, Debug)]
pub enum RbMsg<T> {
    /// Round 1: item travels to its slot's relay.
    ToRelay {
        /// Globally unique slot index (`< n`), also the relay's node id.
        slot: u32,
        /// The item.
        payload: T,
    },
    /// Round 2: the relay's broadcast.
    Bcast {
        /// The item's slot.
        slot: u32,
        /// The item.
        payload: T,
    },
}

impl<T: Payload> Payload for RbMsg<T> {
    fn size_bits(&self, n: usize) -> u64 {
        let (RbMsg::ToRelay { payload, .. } | RbMsg::Bcast { payload, .. }) = self;
        1 + word_bits(n) + payload.size_bits(n)
    }
}

/// Disseminates slot-indexed items to every node in 2 rounds; all nodes
/// output the same slot-sorted item list.
///
/// Slots must be globally unique and `< n` (each slot is its own relay);
/// uniqueness is the caller's responsibility — the deterministic
/// algorithms derive slots from common knowledge, and the collection phase
/// asserts no duplicates survived.
pub struct RelayBroadcast<T> {
    my_items: Vec<(u32, T)>,
    call: u8,
    collected: Vec<(u32, T)>,
}

impl<T> std::fmt::Debug for RelayBroadcast<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RelayBroadcast({} items, call {})",
            self.my_items.len(),
            self.call
        )
    }
}

impl<T: Payload> RelayBroadcast<T> {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 2;

    /// Creates the driver; `my_items` are this node's `(slot, item)`
    /// pairs (empty on nodes with nothing to announce).
    pub fn new(my_items: Vec<(u32, T)>) -> Self {
        RelayBroadcast {
            my_items,
            call: 0,
            collected: Vec::new(),
        }
    }
}

impl<T: Payload> Driver for RelayBroadcast<T> {
    type Msg = RbMsg<T>;
    /// All items in ascending slot order — identical on every node.
    type Output = Vec<(u32, T)>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        let n = ctx.n();
        ctx.charge_work(self.my_items.len() as u64);
        self.my_items
            .drain(..)
            .map(|(slot, payload)| {
                assert!((slot as usize) < n, "slot {slot} exceeds clique size {n}");
                (NodeId::new(slot as usize), RbMsg::ToRelay { slot, payload })
            })
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        match self.call {
            1 => {
                let n = ctx.n();
                let mut sends = Vec::with_capacity(inbox.len() * n);
                for (_, msg) in inbox {
                    let RbMsg::ToRelay { slot, payload } = msg else {
                        panic!("Bcast message arrived in the relay round");
                    };
                    debug_assert_eq!(slot as usize, ctx.me().index());
                    for v in 0..n {
                        sends.push((
                            NodeId::new(v),
                            RbMsg::Bcast {
                                slot,
                                payload: payload.clone(),
                            },
                        ));
                    }
                }
                ctx.charge_work(sends.len() as u64);
                DriverStep::sends(sends)
            }
            2 => {
                for (_, msg) in inbox {
                    let RbMsg::Bcast { slot, payload } = msg else {
                        panic!("ToRelay message arrived in the collection round");
                    };
                    self.collected.push((slot, payload));
                }
                // Unstable (in-place, non-allocating) is safe here: slots
                // are asserted unique below, so there are no equal keys
                // whose payload order a stable sort would have to keep.
                self.collected.sort_unstable_by_key(|&(slot, _)| slot);
                assert!(
                    self.collected.windows(2).all(|w| w[0].0 != w[1].0),
                    "duplicate broadcast slots"
                );
                ctx.charge_work(self.collected.len() as u64);
                DriverStep::done(std::mem::take(&mut self.collected))
            }
            _ => panic!("RelayBroadcast stepped past completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    #[test]
    fn all_nodes_learn_all_items() {
        let n = 6;
        // Node v announces one item in slot v with value v².
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let v = me.raw();
            drive(RelayBroadcast::new(vec![(v, u64::from(v) * u64::from(v))]))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        for out in &report.outputs {
            assert_eq!(out.len(), n);
            for (t, &(slot, value)) in out.iter().enumerate() {
                assert_eq!(slot as usize, t);
                assert_eq!(value, (t * t) as u64);
            }
        }
    }

    #[test]
    fn sparse_items_from_one_node() {
        let n = 5;
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let items = if me.index() == 2 {
                vec![(0u32, 100u64), (3, 300), (4, 400)]
            } else {
                Vec::new()
            };
            drive(RelayBroadcast::new(items))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        for out in &report.outputs {
            assert_eq!(out, &vec![(0u32, 100u64), (3, 300), (4, 400)]);
        }
    }

    #[test]
    fn no_items_no_rounds() {
        let n = 3;
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |_| {
            drive(RelayBroadcast::<u64>::new(Vec::new()))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 0);
        assert!(report.outputs.iter().all(Vec::is_empty));
    }
}
