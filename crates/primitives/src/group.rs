use cc_sim::hash::StableHasher;
use cc_sim::NodeId;
use std::hash::Hasher;

/// An ordered group of clique nodes — the `W ⊆ V` of the paper's
/// corollaries.
///
/// Members are kept in strictly increasing id order, so the *local index*
/// (the "i-th node of W") is well defined and identical on every node.
/// Most groups are contiguous blocks (`{(i−1)√n+1, …, i√n}` in the paper),
/// but the general-`n` decomposition of Theorem 3.7 also uses
/// non-contiguous groups.
///
/// ```rust
/// use cc_primitives::NodeGroup;
/// use cc_sim::NodeId;
///
/// let w = NodeGroup::contiguous(4, 3); // nodes {4, 5, 6}
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.member(1), NodeId::new(5));
/// assert_eq!(w.local_index(NodeId::new(6)), Some(2));
/// assert_eq!(w.local_index(NodeId::new(7)), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeGroup {
    members: Vec<NodeId>,
}

impl NodeGroup {
    /// The contiguous group `{start, start+1, …, start+len−1}`.
    pub fn contiguous(start: usize, len: usize) -> Self {
        NodeGroup {
            members: (start..start + len).map(NodeId::new).collect(),
        }
    }

    /// The whole clique `{0, …, n−1}`.
    pub fn whole_clique(n: usize) -> Self {
        Self::contiguous(0, n)
    }

    /// A group from explicit members.
    ///
    /// # Panics
    ///
    /// Panics unless `members` is strictly increasing (duplicates or
    /// disorder would make local indices ambiguous across nodes).
    pub fn from_members(members: Vec<NodeId>) -> Self {
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "group members must be strictly increasing"
        );
        NodeGroup { members }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` for the empty group.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member with local index `i` (the paper's "i-th node of W").
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn member(&self, i: usize) -> NodeId {
        self.members[i]
    }

    /// The local index of `node`, or `None` if it is not a member.
    #[inline]
    pub fn local_index(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok()
    }

    /// Whether `node` belongs to the group.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.local_index(node).is_some()
    }

    /// All members in increasing order.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// A stable hash of the membership (for common-knowledge scopes).
    pub fn stable_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        for m in &self.members {
            h.write(&m.raw().to_le_bytes());
        }
        h.finish()
    }
}

impl<'a> IntoIterator for &'a NodeGroup {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_group() {
        let w = NodeGroup::contiguous(2, 4);
        assert_eq!(w.members().len(), 4);
        assert_eq!(w.member(0), NodeId::new(2));
        assert_eq!(w.member(3), NodeId::new(5));
        assert!(w.contains(NodeId::new(3)));
        assert!(!w.contains(NodeId::new(6)));
    }

    #[test]
    fn local_indices_roundtrip() {
        let w = NodeGroup::from_members(vec![NodeId::new(1), NodeId::new(5), NodeId::new(9)]);
        for i in 0..w.len() {
            assert_eq!(w.local_index(w.member(i)), Some(i));
        }
        assert_eq!(w.local_index(NodeId::new(2)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_disorder() {
        let _ = NodeGroup::from_members(vec![NodeId::new(5), NodeId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicates() {
        let _ = NodeGroup::from_members(vec![NodeId::new(1), NodeId::new(1)]);
    }

    #[test]
    fn hash_distinguishes_groups() {
        let a = NodeGroup::contiguous(0, 3);
        let b = NodeGroup::contiguous(1, 3);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), NodeGroup::contiguous(0, 3).stable_hash());
    }

    #[test]
    fn empty_group() {
        let w = NodeGroup::from_members(Vec::new());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
