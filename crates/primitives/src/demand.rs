use cc_sim::hash::hash_u32s;

/// A square demand matrix over a node group: `get(i, j)` is the number of
/// messages local member `i` must deliver to local member `j`.
///
/// This is the object that must become *common knowledge* within a group
/// before Corollary 3.3 applies; its stable hash feeds the
/// common-knowledge verification of the plan cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandMatrix {
    size: usize,
    counts: Vec<u32>,
}

impl DemandMatrix {
    /// An all-zero `size × size` matrix.
    pub fn new(size: usize) -> Self {
        DemandMatrix {
            size,
            counts: vec![0; size * size],
        }
    }

    /// Builds from row-major counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != size * size`.
    pub fn from_counts(size: usize, counts: Vec<u32>) -> Self {
        assert_eq!(counts.len(), size * size, "demand matrix shape mismatch");
        DemandMatrix { size, counts }
    }

    /// Side length of the matrix (= group size).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Demand from local `i` to local `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        self.counts[i * self.size + j]
    }

    /// Sets the demand from local `i` to local `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: u32) {
        self.counts[i * self.size + j] = value;
    }

    /// Adds to the demand from local `i` to local `j`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, delta: u32) {
        self.counts[i * self.size + j] += delta;
    }

    /// Row-major view of the counts.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Sum of row `i` (messages member `i` sends).
    pub fn row_sum(&self, i: usize) -> u64 {
        self.counts[i * self.size..(i + 1) * self.size]
            .iter()
            .map(|&c| u64::from(c))
            .sum()
    }

    /// Sum of column `j` (messages member `j` receives).
    pub fn col_sum(&self, j: usize) -> u64 {
        (0..self.size).map(|i| u64::from(self.get(i, j))).sum()
    }

    /// The largest row or column sum — the minimum number of colors (and
    /// relays) a [`KnownExchange`](crate::KnownExchange) needs.
    pub fn max_line_sum(&self) -> u64 {
        let mut rows = vec![0u64; self.size];
        let mut cols = vec![0u64; self.size];
        for (i, row) in rows.iter_mut().enumerate() {
            for (j, col) in cols.iter_mut().enumerate() {
                let c = u64::from(self.get(i, j));
                *row += c;
                *col += c;
            }
        }
        rows.into_iter().chain(cols).max().unwrap_or(0)
    }

    /// Total demand.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Stable content hash (for common-knowledge scopes).
    pub fn stable_hash(&self) -> u64 {
        hash_u32s(&self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let m = DemandMatrix::from_counts(2, vec![1, 2, 3, 4]);
        assert_eq!(m.row_sum(0), 3);
        assert_eq!(m.row_sum(1), 7);
        assert_eq!(m.col_sum(0), 4);
        assert_eq!(m.col_sum(1), 6);
        assert_eq!(m.max_line_sum(), 7);
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn mutation() {
        let mut m = DemandMatrix::new(3);
        m.set(1, 2, 5);
        m.add(1, 2, 2);
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn hash_reflects_content() {
        let a = DemandMatrix::from_counts(2, vec![1, 0, 0, 1]);
        let b = DemandMatrix::from_counts(2, vec![0, 1, 1, 0]);
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_bad_shape() {
        let _ = DemandMatrix::from_counts(2, vec![1, 2, 3]);
    }
}
