use cc_sim::{BaseCtx, CliqueSession, CliqueSpec, NodeId, Payload, RunReport, SimError};

/// A resumable sub-protocol: a per-node state machine a parent
/// [`NodeMachine`](cc_sim::NodeMachine) advances one round at a time.
///
/// Lifecycle: the parent calls [`Driver::activate`] in the round it enters
/// the phase (queuing the primitive's first-round sends), then
/// [`Driver::on_round`] once per subsequent round with the messages that
/// belong to this driver, until an output is produced. A `k`-round
/// primitive produces its output exactly `k` rounds after activation, on
/// *every* node simultaneously — which is what keeps all nodes' phase
/// transitions in lockstep without any extra coordination.
///
/// Every node of the clique must run every driver: non-members of the
/// primitive's group still participate as relays (the paper's schemes use
/// all edges with at least one endpoint in `W`).
///
/// Like [`NodeMachine`](cc_sim::NodeMachine), drivers and their messages
/// and outputs are `Send`: a driver holds only its node's state, so the
/// engine may step its host machine on any worker thread.
pub trait Driver: Send {
    /// The driver's message type; the parent wraps it into its own enum.
    type Msg: Payload;
    /// Output delivered to every node when the primitive completes.
    type Output: Send;

    /// Queues the first-round sends. Called exactly once.
    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)>;

    /// Advances one round. `inbox` holds exactly the messages of this
    /// driver delivered this round (the parent demultiplexes).
    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output>;
}

/// One round's result from a [`Driver`].
#[derive(Debug)]
pub struct DriverStep<M, O> {
    /// Messages to queue for the next round.
    pub sends: Vec<(NodeId, M)>,
    /// The output, in the final round.
    pub output: Option<O>,
}

impl<M, O> DriverStep<M, O> {
    /// A round that only sends.
    pub fn sends(sends: Vec<(NodeId, M)>) -> Self {
        DriverStep {
            sends,
            output: None,
        }
    }

    /// The final round: deliver the output (with no further sends).
    pub fn done(output: O) -> Self {
        DriverStep {
            sends: Vec::new(),
            output: Some(output),
        }
    }
}

/// Runs a single driver as a standalone protocol: a convenience harness
/// used by tests and benchmarks to measure a primitive's round count in
/// isolation.
///
/// The returned machine implements [`NodeMachine`](cc_sim::NodeMachine)
/// with the driver's message type and output.
pub fn drive<D: Driver>(driver: D) -> DriverMachine<D> {
    DriverMachine { driver }
}

/// Runs one driver per node as a standalone protocol on a persistent
/// [`CliqueSession`] — the session-flavored counterpart of wrapping
/// [`drive`] in [`cc_sim::run_protocol`]. Tests and benchmarks that
/// measure a primitive's rounds *repeatedly* use this so consecutive
/// measurements reuse the session's worker threads and message arenas;
/// the report is bit-identical to a one-shot run (the session's
/// contract).
///
/// # Errors
///
/// Propagates any [`SimError`] from [`CliqueSession::run`].
pub fn drive_protocol_on<D, F>(
    session: &mut CliqueSession,
    spec: CliqueSpec,
    mut make: F,
) -> Result<RunReport<D::Output>, SimError>
where
    D: Driver + 'static,
    D::Msg: 'static,
    D::Output: 'static,
    F: FnMut(NodeId) -> D,
{
    session.run_protocol(spec, |me| drive(make(me)))
}

/// Adapter turning a [`Driver`] into a complete
/// [`NodeMachine`](cc_sim::NodeMachine); see [`drive`].
#[derive(Debug)]
pub struct DriverMachine<D> {
    driver: D,
}

impl<D: Driver> cc_sim::NodeMachine for DriverMachine<D> {
    type Msg = D::Msg;
    type Output = D::Output;

    fn on_start(&mut self, ctx: &mut cc_sim::Ctx<'_, Self::Msg>) {
        let (base, outbox) = ctx.split();
        for (dst, msg) in self.driver.activate(base) {
            outbox.push((dst, msg));
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut cc_sim::Ctx<'_, Self::Msg>,
        inbox: &mut cc_sim::Inbox<Self::Msg>,
    ) -> cc_sim::Step<Self::Output> {
        let msgs = inbox.take_all();
        let (base, outbox) = ctx.split();
        let step = self.driver.on_round(base, msgs);
        for (dst, msg) in step.sends {
            outbox.push((dst, msg));
        }
        match step.output {
            Some(out) => cc_sim::Step::Done(out),
            None => cc_sim::Step::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-round driver: broadcast my id, output the ids heard.
    struct Roll {
        me: NodeId,
    }

    impl Driver for Roll {
        type Msg = u64;
        type Output = Vec<u64>;

        fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, u64)> {
            ctx.nodes().map(|v| (v, self.me.index() as u64)).collect()
        }

        fn on_round(
            &mut self,
            _ctx: &mut BaseCtx<'_>,
            inbox: Vec<(NodeId, u64)>,
        ) -> DriverStep<u64, Vec<u64>> {
            DriverStep::done(inbox.into_iter().map(|(_, m)| m).collect())
        }
    }

    /// The session harness answers exactly like the one-shot harness, and
    /// keeps doing so when reused.
    #[test]
    fn session_harness_matches_one_shot() {
        let n = 6;
        let spec = || CliqueSpec::new(n).unwrap();
        let one_shot = cc_sim::run_protocol(spec(), |me| drive(Roll { me })).unwrap();
        let mut session = CliqueSession::new();
        for _ in 0..3 {
            let on_session = drive_protocol_on(&mut session, spec(), |me| Roll { me }).unwrap();
            assert_eq!(one_shot, on_session);
        }
        assert_eq!(session.stats().completed(), 3);
    }
}
