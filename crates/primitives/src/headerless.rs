//! §6.2: known-pattern exchange with *headerless* messages.
//!
//! "With the additional assumption that nodes can identify the sender of
//! a message even if the identifier is not included, this can be achieved
//! if sources and destinations of messages are known in advance: We apply
//! Corollary 3.3 and observe that because the communication pattern is
//! known to all nodes, knowing the sender of a message is sufficient to
//! perform the communication and infer the original source of each
//! message at the destination."
//!
//! Concretely: when the demand matrix is known to *every* node (not just
//! the group), messages carry **only their payload** — zero addressing
//! bits. Relays map each incoming payload to its destination by replaying
//! the shared König plan: the colors a relay serves are `≡ r (mod n)`,
//! and a sender's messages arrive in ascending color order, so position
//! identifies the edge. Destinations reconstruct provenance the same way.
//! This is what makes `B ∈ O(M)` rounds-optimal for message size
//! `M ∈ o(log n)` — demonstrated by experiment E16 with one-bit payloads.

use crate::demand::DemandMatrix;
use crate::driver::{Driver, DriverStep};
use crate::group::NodeGroup;
use cc_coloring::{
    color_exact, exact_coloring_work, pad_demands_to_regular, BipartiteMultigraph, EdgeIndexer,
};
use cc_sim::hash::combine;
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};
use std::sync::Arc;

/// A headerless message: the payload, nothing else.
#[derive(Clone, Debug)]
pub struct HxMsg<T>(pub T);

impl<T: Payload> Payload for HxMsg<T> {
    fn size_bits(&self, n: usize) -> u64 {
        self.0.size_bits(n)
    }
}

/// The shared plan: canonical edge order, colors, and the inverse maps
/// every role needs to replay the pattern without headers.
struct HxPlan {
    indexer: EdgeIndexer,
    colors: Vec<u32>,
    edges: Vec<(u32, u32)>,
    real: Vec<bool>,
    degree: u64,
    num_edges: usize,
}

fn build_hx_plan(group_len: usize, demands: &DemandMatrix) -> HxPlan {
    let m = demands.max_line_sum();
    if m == 0 {
        return HxPlan {
            indexer: EdgeIndexer::new(group_len, group_len, demands.counts()),
            colors: Vec::new(),
            edges: Vec::new(),
            real: Vec::new(),
            degree: 0,
            num_edges: 0,
        };
    }
    let m32 = u32::try_from(m).expect("line sums fit u32");
    let extra = pad_demands_to_regular(group_len, group_len, demands.counts(), m32)
        .expect("line sums bounded by m");
    let padded: Vec<u32> = demands
        .counts()
        .iter()
        .zip(&extra)
        .map(|(a, b)| a + b)
        .collect();
    let graph = BipartiteMultigraph::from_demands(group_len, group_len, &padded)
        .expect("shape is group × group");
    let coloring = color_exact(&graph).expect("padded matrix is regular");
    // Mark which canonical edges are real (the first `demands[i][j]` of
    // every cell).
    let mut real = vec![false; graph.num_edges()];
    let indexer = EdgeIndexer::new(group_len, group_len, &padded);
    for i in 0..group_len {
        for j in 0..group_len {
            for k in 0..demands.get(i, j) as usize {
                real[indexer.edge_id(i, j, k)] = true;
            }
        }
    }
    HxPlan {
        indexer,
        colors: coloring.colors().to_vec(),
        edges: graph.edges().to_vec(),
        real,
        degree: m,
        num_edges: graph.num_edges(),
    }
}

impl HxPlan {
    /// Real edges with color ≡ `relay` (mod n) incident to left vertex
    /// `i`, in ascending color order — the order sender `i` ships them to
    /// that relay.
    fn edges_for(
        &self,
        filter: impl Fn(usize, u32, u32) -> bool,
        relay: usize,
        n: usize,
    ) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = (0..self.num_edges)
            .filter(|&e| self.real[e])
            .filter(|&e| (self.colors[e] as usize) % n == relay)
            .filter(|&e| {
                let (i, j) = self.edges[e];
                filter(e, i, j)
            })
            .map(|e| (self.colors[e], e))
            .collect();
        out.sort_unstable();
        out
    }
}

/// Corollary 3.3 with §6.2's headerless messages: 2 rounds, payload-only
/// traffic, provenance reconstructed at the destination.
///
/// Unlike [`KnownExchange`](crate::KnownExchange), *every* node must be
/// constructed with the (globally known) demand matrix, because relays
/// replay the plan instead of reading headers.
pub struct HeaderlessExchange<T> {
    group: NodeGroup,
    demands: DemandMatrix,
    outgoing: Vec<Vec<T>>,
    scope: CommonScope,
    plan: Option<Arc<HxPlan>>,
    call: u8,
}

impl<T> std::fmt::Debug for HeaderlessExchange<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HeaderlessExchange(call {})", self.call)
    }
}

impl<T: Payload + Send + Sync + 'static> HeaderlessExchange<T> {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 2;

    /// Creates the driver. `outgoing` is empty on non-members; `demands`
    /// must be identical on every node (§6.2's "known in advance to all
    /// nodes" precondition — verified through the plan cache).
    pub fn new(
        group: NodeGroup,
        demands: DemandMatrix,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
    ) -> Self {
        HeaderlessExchange {
            group,
            demands,
            outgoing,
            scope,
            plan: None,
            call: 0,
        }
    }

    fn fetch_plan(&mut self, ctx: &mut BaseCtx<'_>) -> Arc<HxPlan> {
        if let Some(p) = &self.plan {
            return p.clone();
        }
        let plan_scope = CommonScope::new(
            self.scope.label,
            combine(self.scope.tag, self.group.stable_hash()),
        );
        let input_hash = combine(self.group.stable_hash(), self.demands.stable_hash());
        let group_len = self.group.len();
        let demands = self.demands.clone();
        let plan: Arc<HxPlan> = ctx
            .common()
            .get_or_compute(plan_scope, input_hash, move || {
                build_hx_plan(group_len, &demands)
            });
        ctx.charge_work(exact_coloring_work(plan.num_edges, plan.degree as usize));
        self.plan = Some(plan.clone());
        plan
    }
}

impl<T: Payload + Send + Sync + 'static> Driver for HeaderlessExchange<T> {
    type Msg = HxMsg<T>;
    /// `(inferred source, payload)` pairs — provenance without headers.
    type Output = Vec<(NodeId, T)>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        let plan = self.fetch_plan(ctx);
        let Some(my_local) = self.group.local_index(ctx.me()) else {
            return Vec::new();
        };
        assert_eq!(self.outgoing.len(), self.group.len());
        let n = ctx.n();
        assert!(
            plan.degree <= crate::known_exchange::MAX_RELAY_FACTOR * n as u64,
            "demands too concentrated for the relay space"
        );
        // Ship each of my real edges' payloads to its color relay, in
        // ascending color order per relay (the order relays will replay).
        let mut per_dst_count = vec![0usize; self.group.len()];
        let mut labelled: Vec<(u32, usize, T)> = Vec::new(); // (color, dst_local, payload)
        for (j, bucket) in self.outgoing.iter_mut().enumerate() {
            for payload in bucket.drain(..) {
                let k = per_dst_count[j];
                per_dst_count[j] += 1;
                let e = plan.indexer.edge_id(my_local, j, k);
                labelled.push((plan.colors[e], j, payload));
            }
        }
        labelled.sort_unstable_by_key(|&(c, _, _)| c);
        ctx.charge_work(labelled.len() as u64);
        labelled
            .into_iter()
            .map(|(c, _, payload)| (NodeId::new(c as usize % n), HxMsg(payload)))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        let plan = self.fetch_plan(ctx);
        let n = ctx.n();
        match self.call {
            1 => {
                // Relay role: replay the plan. Messages from sender `s`
                // arrived in ascending color order; pair them with my
                // expected edges from `s`.
                let me = ctx.me().index();
                let mut per_sender: Vec<(NodeId, Vec<T>)> = Vec::new();
                for (src, HxMsg(payload)) in inbox {
                    match per_sender.last_mut() {
                        Some((s, v)) if *s == src => v.push(payload),
                        _ => per_sender.push((src, vec![payload])),
                    }
                }
                let mut sends = Vec::new();
                for (src, payloads) in per_sender {
                    let i_local = self
                        .group
                        .local_index(src)
                        .expect("headerless senders are members");
                    let expected = plan.edges_for(|_, i, _| i as usize == i_local, me, n);
                    assert_eq!(
                        expected.len(),
                        payloads.len(),
                        "relay expectation mismatch from {src}"
                    );
                    for ((_, e), payload) in expected.into_iter().zip(payloads) {
                        let (_, j) = plan.edges[e];
                        sends.push((self.group.member(j as usize), HxMsg(payload)));
                    }
                }
                ctx.charge_work(sends.len() as u64);
                DriverStep::sends(sends)
            }
            2 => {
                // Destination role: provenance by replay — from relay `r`
                // I expect the colors ≡ r at my column, ascending.
                let Some(my_local) = self.group.local_index(ctx.me()) else {
                    debug_assert!(inbox.is_empty());
                    return DriverStep::done(Vec::new());
                };
                let mut out = Vec::new();
                let mut per_relay: Vec<(NodeId, Vec<T>)> = Vec::new();
                for (src, HxMsg(payload)) in inbox {
                    match per_relay.last_mut() {
                        Some((s, v)) if *s == src => v.push(payload),
                        _ => per_relay.push((src, vec![payload])),
                    }
                }
                for (relay, payloads) in per_relay {
                    let expected =
                        plan.edges_for(|_, _, j| j as usize == my_local, relay.index(), n);
                    assert_eq!(
                        expected.len(),
                        payloads.len(),
                        "destination expectation mismatch from relay {relay}"
                    );
                    for ((_, e), payload) in expected.into_iter().zip(payloads) {
                        let (i, _) = plan.edges[e];
                        out.push((self.group.member(i as usize), payload));
                    }
                }
                ctx.charge_work(out.len() as u64);
                DriverStep::done(out)
            }
            _ => panic!("HeaderlessExchange stepped past completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    /// A one-bit payload — §6.2's `M ∈ o(log n)` regime.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Bit(bool);
    impl Payload for Bit {
        fn size_bits(&self, _n: usize) -> u64 {
            1
        }
    }

    #[test]
    fn one_bit_messages_with_provenance() {
        let n = 16;
        let group = NodeGroup::whole_clique(n);
        let mut demands = DemandMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                demands.set(i, j, 1);
            }
        }
        // Budget: 2 bits per edge per round suffices (≤ 2 colors per relay
        // never happens here since m = n, so 1 bit does it — give 2).
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_bits_per_edge(2), |me| {
            let outgoing: Vec<Vec<Bit>> = (0..n)
                .map(|j| vec![Bit((me.index() + j) % 2 == 0)])
                .collect();
            drive(HeaderlessExchange::new(
                group.clone(),
                demands.clone(),
                outgoing,
                CommonScope::new("test.hx", 0),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        assert_eq!(report.metrics.max_edge_bits(), 1);
        for (j, out) in report.outputs.iter().enumerate() {
            assert_eq!(out.len(), n);
            for (src, bit) in out {
                // Reconstructed provenance is exact: the payload matches
                // what that source computed for me.
                assert_eq!(bit, &Bit((src.index() + j) % 2 == 0), "src {src} → {j}");
            }
        }
    }

    #[test]
    fn skewed_known_pattern() {
        let n = 9;
        let group = NodeGroup::contiguous(0, 3);
        let mut demands = DemandMatrix::new(3);
        demands.set(0, 1, 4);
        demands.set(1, 2, 4);
        demands.set(2, 0, 4);
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_bits_per_edge(8), |me| {
            let outgoing: Vec<Vec<Bit>> = match group.local_index(me) {
                Some(local) => (0..3)
                    .map(|j| {
                        (0..demands.get(local, j))
                            .map(|k| Bit(k % 2 == 0))
                            .collect()
                    })
                    .collect(),
                None => vec![Vec::new(); 3],
            };
            drive(HeaderlessExchange::new(
                group.clone(),
                demands.clone(),
                outgoing,
                CommonScope::new("test.hx.skew", 0),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        // Member 1 receives the 4 messages from member 0, etc.
        assert_eq!(report.outputs[1].len(), 4);
        assert!(report.outputs[1].iter().all(|(s, _)| s.index() == 0));
        assert_eq!(report.outputs[0].len(), 4);
        assert!(report.outputs[0].iter().all(|(s, _)| s.index() == 2));
    }

    #[test]
    fn empty_pattern() {
        let n = 4;
        let group = NodeGroup::whole_clique(n);
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_bits_per_edge(1), |_| {
            drive(HeaderlessExchange::<Bit>::new(
                group.clone(),
                DemandMatrix::new(n),
                vec![Vec::new(); n],
                CommonScope::new("test.hx.empty", 0),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 0);
    }
}
