//! Lemma 5.1's oblivious round-robin redistribution.
//!
//! Each member of `W` sends its `j`-th message (in any caller-chosen
//! order, typically sorted by destination set) through relay node `j` to
//! member `W[(j + rank) mod |W|]`, where `rank` is the sender's own index
//! in `W`. No counts are announced and no coloring is computed — the
//! pattern is fixed — which is what brings the §5 variant's local
//! computation down to `O(n)` for these steps. The price is approximate
//! balance: if the group collectively holds at most `n` messages of a
//! class, each member ends with fewer than `2·(n/|W|)` + 1 of that class
//! (the `≤ 2√n` bound in Lemma 5.1).
//!
//! The rank offset in the target (absent from the paper's one-line sketch)
//! is what keeps round 2 conflict-free: relay `j` receives exactly one
//! message from each sender, and two senders of the same group always have
//! different targets.

use crate::driver::{Driver, DriverStep};
use crate::group::NodeGroup;
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, NodeId, Payload};

/// Messages of a [`RoundRobinScatter`].
#[derive(Clone, Debug)]
pub enum ScatterMsg<T> {
    /// Round 1: to relay, tagged with the fixed target.
    ToRelay {
        /// The member the relay must forward to.
        target: NodeId,
        /// The payload.
        payload: T,
    },
    /// Round 2: delivery to the target.
    Final {
        /// The payload.
        payload: T,
    },
}

impl<T: Payload> Payload for ScatterMsg<T> {
    fn size_bits(&self, n: usize) -> u64 {
        match self {
            ScatterMsg::ToRelay { payload, .. } => 1 + word_bits(n) + payload.size_bits(n),
            ScatterMsg::Final { payload } => 1 + payload.size_bits(n),
        }
    }
}

enum Role<T> {
    Member { group: NodeGroup, messages: Vec<T> },
    Relay,
}

/// Lemma 5.1 as a [`Driver`]: 2 rounds, oblivious (no planning), output
/// `Vec<T>` of received payloads.
///
/// # Preconditions (checked at activation)
///
/// A member may scatter at most `n` messages (one per relay).
pub struct RoundRobinScatter<T> {
    role: Role<T>,
    call: u8,
    received: Vec<T>,
}

impl<T> std::fmt::Debug for RoundRobinScatter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let role = match &self.role {
            Role::Member { messages, .. } => format!("member with {} messages", messages.len()),
            Role::Relay => "relay".to_owned(),
        };
        write!(f, "RoundRobinScatter({role}, call {})", self.call)
    }
}

impl<T: Payload> RoundRobinScatter<T> {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 2;

    /// Member-side driver: scatter `messages` (already in the caller's
    /// canonical order) round-robin across `group`.
    pub fn member(group: NodeGroup, messages: Vec<T>) -> Self {
        RoundRobinScatter {
            role: Role::Member { group, messages },
            call: 0,
            received: Vec::new(),
        }
    }

    /// Relay-side driver for nodes outside the group.
    pub fn relay_only() -> Self {
        RoundRobinScatter {
            role: Role::Relay,
            call: 0,
            received: Vec::new(),
        }
    }
}

impl<T: Payload> Driver for RoundRobinScatter<T> {
    type Msg = ScatterMsg<T>;
    type Output = Vec<T>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        let Role::Member { group, messages } = &mut self.role else {
            return Vec::new();
        };
        let rank = group
            .local_index(ctx.me())
            .expect("member constructor used on a non-member node");
        let n = ctx.n();
        assert!(
            messages.len() as u64 <= crate::known_exchange::MAX_RELAY_FACTOR * n as u64,
            "a member can scatter at most O(n) messages, got {} for n = {n}",
            messages.len()
        );
        let w = group.len();
        ctx.charge_work(messages.len() as u64);
        // Relay j % n: overflow beyond n messages wraps, costing one extra
        // message per edge per factor (constant message-size growth).
        messages
            .drain(..)
            .enumerate()
            .map(|(j, payload)| {
                let target = group.member((j + rank) % w);
                (NodeId::new(j % n), ScatterMsg::ToRelay { target, payload })
            })
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        match self.call {
            1 => {
                ctx.charge_work(inbox.len() as u64);
                let sends = inbox
                    .into_iter()
                    .map(|(_, msg)| match msg {
                        ScatterMsg::ToRelay { target, payload } => {
                            (target, ScatterMsg::Final { payload })
                        }
                        ScatterMsg::Final { .. } => {
                            panic!("Final message arrived in the relay round")
                        }
                    })
                    .collect();
                DriverStep::sends(sends)
            }
            2 => {
                ctx.charge_work(inbox.len() as u64);
                for (_, msg) in inbox {
                    match msg {
                        ScatterMsg::Final { payload } => self.received.push(payload),
                        ScatterMsg::ToRelay { .. } => {
                            panic!("ToRelay message arrived in the delivery round")
                        }
                    }
                }
                DriverStep::done(std::mem::take(&mut self.received))
            }
            _ => panic!("RoundRobinScatter stepped past completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        class: u32,
        src: u32,
        seq: u32,
    }

    impl Payload for Item {
        fn size_bits(&self, n: usize) -> u64 {
            3 * word_bits(n)
        }
    }

    #[test]
    fn redistributes_all_messages_in_two_rounds() {
        let n = 16;
        let group = NodeGroup::whole_clique(n);
        // Every node scatters n messages, class = destination-set style tag.
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let msgs: Vec<Item> = (0..n as u32)
                .map(|j| Item {
                    class: j / 4,
                    src: me.raw(),
                    seq: j,
                })
                .collect();
            drive(RoundRobinScatter::member(group.clone(), msgs))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        let total: usize = report.outputs.iter().map(Vec::len).sum();
        assert_eq!(total, n * n);
        // Perfectly uniform input ⇒ perfectly uniform output.
        for out in &report.outputs {
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn per_class_balance_bound_of_lemma_5_1() {
        // The group holds exactly n messages of each class, sorted by
        // class on every sender; after the scatter every member holds
        // fewer than 2·(n/|W|) + 1 per class.
        let n = 16;
        let w = 4;
        let group = NodeGroup::contiguous(0, w);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            if group.contains(me) {
                // Member v holds a skewed share: class c gets a chunk
                // depending on v, but classes stay globally n each.
                let mut msgs = Vec::new();
                let shares = [[8usize, 4, 2, 2], [4, 8, 2, 2], [2, 2, 8, 4], [2, 2, 4, 8]];
                let v = me.index();
                for (c, &cnt) in shares[v].iter().enumerate() {
                    for k in 0..cnt {
                        msgs.push(Item {
                            class: c as u32,
                            src: me.raw(),
                            seq: k as u32,
                        });
                    }
                }
                drive(RoundRobinScatter::member(group.clone(), msgs))
            } else {
                drive(RoundRobinScatter::relay_only())
            }
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        let bound = 2 * (n / w) + 1; // < 2·(n/|W|) + 1 per class
        for (v, out) in report.outputs.iter().enumerate() {
            if v < w {
                let mut per_class = [0usize; 4];
                for item in out {
                    per_class[item.class as usize] += 1;
                }
                for (c, &cnt) in per_class.iter().enumerate() {
                    assert!(
                        cnt < bound,
                        "member {v} holds {cnt} of class {c}, bound {bound}"
                    );
                }
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn nothing_to_scatter() {
        let n = 4;
        let group = NodeGroup::whole_clique(n);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |_| {
            drive(RoundRobinScatter::<Item>::member(group.clone(), Vec::new()))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 0);
    }
}
