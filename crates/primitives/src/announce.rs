//! Vector announcement within a group — the "each node announces … to all
//! other nodes in W" steps of Algorithms 2 and 3, realized as a
//! [`KnownExchange`] with a uniform demand matrix (2 rounds).

use crate::demand::DemandMatrix;
use crate::driver::{Driver, DriverStep};
use crate::group::NodeGroup;
use crate::known_exchange::{KnownExchange, KxMsg};
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};

/// One announced value: `(source member, vector index, value)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnounceMsg {
    /// Local index of the announcing member within the group.
    pub src_local: u32,
    /// Position of the value in the announced vector.
    pub index: u32,
    /// The value itself (counts or keys; at most two machine words).
    pub value: u64,
}

impl Payload for AnnounceMsg {
    fn size_bits(&self, n: usize) -> u64 {
        // src + index + a two-word value.
        4 * word_bits(n)
    }
}

/// Every member of `W` disseminates a fixed-length vector of values to all
/// members (2 rounds). Output on members: `values[src_local][index]`;
/// non-members relay and receive an empty matrix.
///
/// # Preconditions (checked at activation)
///
/// `|W| · vector_len ≤ n` — the relay count of the underlying exchange
/// (this is the `|W|² ≤ f·|W|` condition of Corollary 3.4 when
/// `vector_len = |W|`).
pub struct GroupAnnounce {
    inner: KnownExchange<AnnounceMsg>,
    group_len: usize,
    vector_len: usize,
    is_member: bool,
}

impl std::fmt::Debug for GroupAnnounce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupAnnounce({} members × {} values)",
            self.group_len, self.vector_len
        )
    }
}

impl GroupAnnounce {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 2;

    /// Member-side driver: announce `my_values` (same length on every
    /// member) to the whole group.
    ///
    /// # Panics
    ///
    /// Panics at activation if `me` is not in `group`.
    pub fn member(
        group: NodeGroup,
        my_local: usize,
        my_values: Vec<u64>,
        scope: CommonScope,
    ) -> Self {
        let w = group.len();
        let l = my_values.len();
        let mut demands = DemandMatrix::new(w);
        for i in 0..w {
            for j in 0..w {
                demands.set(i, j, l as u32);
            }
        }
        let outgoing: Vec<Vec<AnnounceMsg>> = (0..w)
            .map(|_| {
                my_values
                    .iter()
                    .enumerate()
                    .map(|(t, &value)| AnnounceMsg {
                        src_local: my_local as u32,
                        index: t as u32,
                        value,
                    })
                    .collect()
            })
            .collect();
        GroupAnnounce {
            inner: KnownExchange::member(group, demands, outgoing, scope),
            group_len: w,
            vector_len: l,
            is_member: true,
        }
    }

    /// Relay-side driver for nodes outside the group.
    pub fn relay_only() -> Self {
        GroupAnnounce {
            inner: KnownExchange::relay_only(),
            group_len: 0,
            vector_len: 0,
            is_member: false,
        }
    }
}

impl Driver for GroupAnnounce {
    type Msg = KxMsg<AnnounceMsg>;
    /// `output[src_local][index] = value`; empty for non-members.
    type Output = Vec<Vec<u64>>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        self.inner.activate(ctx)
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        let step = self.inner.on_round(ctx, inbox);
        match step.output {
            None => DriverStep::sends(step.sends),
            Some(received) => {
                if !self.is_member {
                    debug_assert!(received.is_empty());
                    return DriverStep::done(Vec::new());
                }
                let mut matrix = vec![vec![0u64; self.vector_len]; self.group_len];
                let mut seen = vec![vec![false; self.vector_len]; self.group_len];
                for msg in received {
                    let (s, t) = (msg.src_local as usize, msg.index as usize);
                    assert!(
                        s < self.group_len && t < self.vector_len,
                        "announcement ({s}, {t}) out of range"
                    );
                    assert!(!seen[s][t], "duplicate announcement ({s}, {t})");
                    seen[s][t] = true;
                    matrix[s][t] = msg.value;
                }
                assert!(
                    seen.iter().all(|row| row.iter().all(|&b| b)),
                    "missing announcements"
                );
                ctx.charge_work((self.group_len * self.vector_len) as u64);
                DriverStep::done(matrix)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    #[test]
    fn every_member_learns_all_vectors() {
        let n = 9;
        let group = NodeGroup::contiguous(3, 3);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            if let Some(local) = group.local_index(me) {
                let values: Vec<u64> = (0..3).map(|t| (local * 10 + t) as u64).collect();
                drive(GroupAnnounce::member(
                    group.clone(),
                    local,
                    values,
                    CommonScope::new("test.ann", 0),
                ))
            } else {
                drive(GroupAnnounce::relay_only())
            }
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        for (v, matrix) in report.outputs.iter().enumerate() {
            if (3..6).contains(&v) {
                for (s, row) in matrix.iter().enumerate() {
                    for (t, &cell) in row.iter().enumerate() {
                        assert_eq!(cell, (s * 10 + t) as u64);
                    }
                }
            } else {
                assert!(matrix.is_empty());
            }
        }
    }

    #[test]
    fn empty_vectors() {
        let n = 4;
        let group = NodeGroup::whole_clique(n);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let local = group.local_index(me).unwrap();
            drive(GroupAnnounce::member(
                group.clone(),
                local,
                Vec::new(),
                CommonScope::new("test.ann.empty", 0),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 0);
        for matrix in &report.outputs {
            assert!(matrix.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn whole_clique_sqrt_vectors() {
        // |W| = n = 9 announcing vectors of length... |W|·L ≤ n means L=1.
        let n = 9;
        let group = NodeGroup::whole_clique(n);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let local = group.local_index(me).unwrap();
            drive(GroupAnnounce::member(
                group.clone(),
                local,
                vec![me.raw() as u64 * 7],
                CommonScope::new("test.ann.one", 0),
            ))
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        for matrix in &report.outputs {
            for (s, row) in matrix.iter().enumerate() {
                assert_eq!(row, &vec![s as u64 * 7]);
            }
        }
    }
}
