//! Corollary 3.4: four-round delivery inside a group of at most `√n`
//! nodes when the demand pattern is *not* known in advance.
//!
//! Rounds 1–2 announce every member's outgoing-count row to every member
//! (a [`KnownExchange`] with the trivially known uniform pattern — this is
//! where `|W| ≤ √n` matters: `|W|²` count messages per node must fit the
//! `≤ n` relay budget). Rounds 3–4 run the real exchange with the now
//! common demand matrix.

use crate::demand::DemandMatrix;
use crate::driver::{Driver, DriverStep};
use crate::group::NodeGroup;
use crate::known_exchange::{KnownExchange, KxMsg};
use cc_sim::hash::combine;
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, CommonScope, NodeId, Payload};

/// A count announcement: member `src_local` will send `count` payloads to
/// member `dst_local`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountMsg {
    src_local: u32,
    dst_local: u32,
    count: u32,
}

impl Payload for CountMsg {
    fn size_bits(&self, n: usize) -> u64 {
        4 * word_bits(n)
    }
}

/// Messages of a [`SubsetExchange`]: phase A (counts) or phase B (data).
#[derive(Clone, Debug)]
pub enum SxMsg<T> {
    /// Count-announcement phase.
    Counts(KxMsg<CountMsg>),
    /// Data-delivery phase.
    Data(KxMsg<T>),
}

impl<T: Payload> Payload for SxMsg<T> {
    fn size_bits(&self, n: usize) -> u64 {
        1 + match self {
            SxMsg::Counts(m) => m.size_bits(n),
            SxMsg::Data(m) => m.size_bits(n),
        }
    }
}

enum SxRole<T> {
    Member {
        group: NodeGroup,
        my_local: usize,
        outgoing: Option<Vec<Vec<T>>>,
        scope: CommonScope,
        strategy: crate::known_exchange::ExchangeStrategy,
    },
    Relay,
}

/// Corollary 3.4 as a [`Driver`]: 4 rounds, output `Vec<T>`.
///
/// # Preconditions (checked at activation / when counts arrive)
///
/// * `|W|² ≤ n` (i.e. `|W| ≤ √n`), so the count announcement fits;
/// * each member sends at most `n` payloads and the resulting demand
///   matrix has line sums at most `n`.
pub struct SubsetExchange<T> {
    role: SxRole<T>,
    phase_a: KnownExchange<CountMsg>,
    phase_b: Option<KnownExchange<T>>,
    call: u8,
}

impl<T> std::fmt::Debug for SubsetExchange<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubsetExchange(call {})", self.call)
    }
}

impl<T: Payload + Send + Sync + 'static> SubsetExchange<T> {
    /// Number of communication rounds this primitive takes.
    pub const ROUNDS: u64 = 4;

    /// Member-side driver. `outgoing[j]` holds payloads for the group's
    /// `j`-th member; unlike [`KnownExchange`], no other member needs to
    /// know these counts in advance.
    ///
    /// # Panics
    ///
    /// Panics if `me` (checked at activation) is not in `group`, or if
    /// `outgoing.len() != group.len()`.
    pub fn member(
        group: NodeGroup,
        my_local: usize,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
    ) -> Self {
        Self::member_with_strategy(
            group,
            my_local,
            outgoing,
            scope,
            crate::known_exchange::ExchangeStrategy::PerEdge,
        )
    }

    /// As [`SubsetExchange::member`] with the §5 bundled data phase,
    /// keeping local computation in `O(n log n)`.
    pub fn member_bundled(
        group: NodeGroup,
        my_local: usize,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
    ) -> Self {
        Self::member_with_strategy(
            group,
            my_local,
            outgoing,
            scope,
            crate::known_exchange::ExchangeStrategy::Bundled,
        )
    }

    /// Member constructor with an explicit data-phase strategy.
    pub fn member_with_strategy(
        group: NodeGroup,
        my_local: usize,
        outgoing: Vec<Vec<T>>,
        scope: CommonScope,
        strategy: crate::known_exchange::ExchangeStrategy,
    ) -> Self {
        assert_eq!(
            outgoing.len(),
            group.len(),
            "outgoing must have one bucket per group member"
        );
        let w = group.len();
        // Phase A: each member announces its count row to every member —
        // a known uniform pattern of |W| values per ordered pair.
        let mut demands_a = DemandMatrix::new(w);
        for i in 0..w {
            for j in 0..w {
                demands_a.set(i, j, w as u32);
            }
        }
        let counts_row: Vec<u32> = outgoing.iter().map(|b| b.len() as u32).collect();
        let outgoing_a: Vec<Vec<CountMsg>> = (0..w)
            .map(|_| {
                counts_row
                    .iter()
                    .enumerate()
                    .map(|(t, &count)| CountMsg {
                        src_local: my_local as u32,
                        dst_local: t as u32,
                        count,
                    })
                    .collect()
            })
            .collect();
        let scope_a = CommonScope::new(scope.label, combine(scope.tag, 0xA));
        SubsetExchange {
            role: SxRole::Member {
                group: group.clone(),
                my_local,
                outgoing: Some(outgoing),
                scope,
                strategy,
            },
            phase_a: KnownExchange::member(group, demands_a, outgoing_a, scope_a),
            phase_b: None,
            call: 0,
        }
    }

    /// Relay-side driver for nodes outside the group.
    pub fn relay_only() -> Self {
        SubsetExchange {
            role: SxRole::Relay,
            phase_a: KnownExchange::relay_only(),
            phase_b: None,
            call: 0,
        }
    }
}

fn split_inbox<T>(
    inbox: Vec<(NodeId, SxMsg<T>)>,
) -> (Vec<(NodeId, KxMsg<CountMsg>)>, Vec<(NodeId, KxMsg<T>)>) {
    let mut counts = Vec::new();
    let mut data = Vec::new();
    for (src, msg) in inbox {
        match msg {
            SxMsg::Counts(m) => counts.push((src, m)),
            SxMsg::Data(m) => data.push((src, m)),
        }
    }
    (counts, data)
}

impl<T: Payload + Send + Sync + 'static> Driver for SubsetExchange<T> {
    type Msg = SxMsg<T>;
    type Output = Vec<T>;

    fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, Self::Msg)> {
        if let SxRole::Member { group, .. } = &self.role {
            let w = group.len() as u64;
            assert!(
                w * w <= crate::known_exchange::MAX_RELAY_FACTOR * ctx.n() as u64,
                "Cor 3.4 requires |W| = O(sqrt(n)): |W| = {}, n = {}",
                group.len(),
                ctx.n()
            );
        }
        self.phase_a
            .activate(ctx)
            .into_iter()
            .map(|(dst, m)| (dst, SxMsg::Counts(m)))
            .collect()
    }

    fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, Self::Msg)>,
    ) -> DriverStep<Self::Msg, Self::Output> {
        self.call += 1;
        let (counts_msgs, data_msgs) = split_inbox(inbox);
        match self.call {
            1 => {
                let step = self.phase_a.on_round(ctx, counts_msgs);
                debug_assert!(step.output.is_none());
                DriverStep::sends(
                    step.sends
                        .into_iter()
                        .map(|(dst, m)| (dst, SxMsg::Counts(m)))
                        .collect(),
                )
            }
            2 => {
                let step = self.phase_a.on_round(ctx, counts_msgs);
                let received = step.output.expect("phase A completes at call 2");
                debug_assert!(step.sends.is_empty());
                // Build phase B with the learned demand matrix.
                let mut phase_b = match &mut self.role {
                    SxRole::Member {
                        group,
                        my_local,
                        outgoing,
                        scope,
                        strategy,
                    } => {
                        let w = group.len();
                        let mut demands = DemandMatrix::new(w);
                        let mut seen = vec![false; w * w];
                        for c in received {
                            let (i, j) = (c.src_local as usize, c.dst_local as usize);
                            assert!(i < w && j < w, "count announcement out of range");
                            assert!(!seen[i * w + j], "duplicate count announcement");
                            seen[i * w + j] = true;
                            demands.set(i, j, c.count);
                        }
                        assert!(seen.iter().all(|&b| b), "missing count announcements");
                        ctx.charge_work((w * w) as u64);
                        let outgoing = outgoing.take().expect("outgoing consumed once");
                        let _ = my_local;
                        let scope_b = CommonScope::new(scope.label, combine(scope.tag, 0xB));
                        KnownExchange::member_with_strategy(
                            group.clone(),
                            demands,
                            outgoing,
                            scope_b,
                            *strategy,
                        )
                    }
                    SxRole::Relay => KnownExchange::relay_only(),
                };
                let sends = phase_b
                    .activate(ctx)
                    .into_iter()
                    .map(|(dst, m)| (dst, SxMsg::Data(m)))
                    .collect();
                self.phase_b = Some(phase_b);
                DriverStep::sends(sends)
            }
            3 => {
                let step = self
                    .phase_b
                    .as_mut()
                    .expect("phase B exists from call 2")
                    .on_round(ctx, data_msgs);
                debug_assert!(step.output.is_none());
                DriverStep::sends(
                    step.sends
                        .into_iter()
                        .map(|(dst, m)| (dst, SxMsg::Data(m)))
                        .collect(),
                )
            }
            4 => {
                let step = self
                    .phase_b
                    .as_mut()
                    .expect("phase B exists from call 2")
                    .on_round(ctx, data_msgs);
                let out = step.output.expect("phase B completes at call 4");
                DriverStep::done(out)
            }
            _ => panic!("SubsetExchange stepped past completion"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive;
    use cc_sim::{run_protocol, CliqueSpec};

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Tag(u32, u32);

    impl Payload for Tag {
        fn size_bits(&self, n: usize) -> u64 {
            2 * word_bits(n)
        }
    }

    #[test]
    fn unknown_demands_delivered_in_four_rounds() {
        let n = 16;
        let group = NodeGroup::contiguous(0, 4); // |W| = 4 = sqrt(16)
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            if let Some(local) = group.local_index(me) {
                // Irregular, privately known demands: local i sends
                // (i + j + 1) messages to j, for j != i.
                let outgoing: Vec<Vec<Tag>> = (0..4)
                    .map(|j| {
                        if j == local {
                            Vec::new()
                        } else {
                            (0..(local + j + 1) as u32)
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        }
                    })
                    .collect();
                drive(SubsetExchange::member(
                    group.clone(),
                    local,
                    outgoing,
                    CommonScope::new("test.sx", 0),
                ))
            } else {
                drive(SubsetExchange::relay_only())
            }
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 4);
        for (v, out) in report.outputs.iter().enumerate() {
            if let Some(j) = group.local_index(NodeId::new(v)) {
                let expected: usize = (0..4).filter(|&i| i != j).map(|i| i + j + 1).sum();
                assert_eq!(out.len(), expected, "member {j}");
            } else {
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn empty_exchange() {
        let n = 9;
        let group = NodeGroup::contiguous(3, 3);
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            if let Some(local) = group.local_index(me) {
                drive(SubsetExchange::<Tag>::member(
                    group.clone(),
                    local,
                    vec![Vec::new(); 3],
                    CommonScope::new("test.sx.empty", 0),
                ))
            } else {
                drive(SubsetExchange::relay_only())
            }
        })
        .unwrap();
        // The count announcement always communicates (counts of zero are
        // still announced), so phase A costs 2 rounds; phase B is silent.
        assert_eq!(report.metrics.comm_rounds(), 2);
        assert!(report.outputs.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "requires |W| = O(sqrt(n))")]
    fn rejects_oversized_group() {
        let n = 16;
        let group = NodeGroup::whole_clique(n); // 256 > 8·16
        let _ = run_protocol(CliqueSpec::new(n).unwrap(), |me| {
            let local = group.local_index(me).unwrap();
            drive(SubsetExchange::<Tag>::member(
                group.clone(),
                local,
                vec![Vec::new(); n],
                CommonScope::new("test.sx.big", 0),
            ))
        });
    }

    #[test]
    fn moderately_oversized_group_bundles_relays() {
        // |W| = 6 in a 9-clique: |W|² = 36 > n, but ≤ 8n — the mod-n relay
        // bundling keeps the exchange at 4 rounds with a constant-factor
        // message-size increase.
        let n = 9;
        let group = NodeGroup::contiguous(0, 6);
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
            if let Some(local) = group.local_index(me) {
                let outgoing: Vec<Vec<Tag>> = (0..6)
                    .map(|j| {
                        (0..((local + j) % 3) as u32)
                            .map(|k| Tag(me.raw(), k))
                            .collect()
                    })
                    .collect();
                drive(SubsetExchange::member(
                    group.clone(),
                    local,
                    outgoing,
                    CommonScope::new("test.sx.mid", 0),
                ))
            } else {
                drive(SubsetExchange::relay_only())
            }
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 4);
        let total: usize = report.outputs.iter().map(Vec::len).sum();
        let expected: usize = (0..6)
            .map(|i| (0..6).map(|j| (i + j) % 3).sum::<usize>())
            .sum();
        assert_eq!(total, expected);
    }
}
