//! Honesty checks for declared message sizes: every payload type's
//! `size_bits` must be an upper bound on an actual bit-exact encoding of
//! the value. The simulator's budget enforcement is only meaningful if
//! these declarations are truthful.

use cc_primitives::{AnnounceMsg, KxMsg, RbMsg, ScatterMsg};
use cc_sim::util::{ceil_log2, word_bits};
use cc_sim::wire::BitWriter;
use cc_sim::{NodeId, Payload};

/// Width of one machine word for an `n`-clique.
fn w(n: usize) -> u32 {
    word_bits(n) as u32
}

/// Encodes a node id in one word.
fn put_node(wr: &mut BitWriter, v: NodeId, n: usize) {
    wr.write_bits(u64::from(v.raw()), w(n));
}

#[derive(Clone, Debug)]
struct Unit(u64);
impl Payload for Unit {
    fn size_bits(&self, n: usize) -> u64 {
        word_bits(n)
    }
}

fn encode_unit(wr: &mut BitWriter, u: &Unit, n: usize) {
    wr.write_bits(u.0 & ((1 << w(n)) - 1), w(n));
}

#[test]
fn announce_msg_size_is_honest() {
    let n = 1024;
    let msg = AnnounceMsg {
        src_local: 17,
        index: 30,
        value: 999,
    };
    let mut wr = BitWriter::new();
    wr.write_bits(u64::from(msg.src_local), w(n));
    wr.write_bits(u64::from(msg.index), w(n));
    wr.write_bits(msg.value, 2 * w(n)); // values up to n²
    assert!(
        wr.bit_len() <= msg.size_bits(n),
        "encoded {} bits, declared {}",
        wr.bit_len(),
        msg.size_bits(n)
    );
}

#[test]
fn kx_msg_sizes_are_honest() {
    let n = 256;
    let relay = KxMsg::Relay {
        dst: NodeId::new(200),
        payload: Unit(55),
    };
    let mut wr = BitWriter::new();
    wr.write_bits(0, 1); // variant tag
    put_node(&mut wr, NodeId::new(200), n);
    encode_unit(&mut wr, &Unit(55), n);
    assert!(wr.bit_len() <= relay.size_bits(n));

    let fin = KxMsg::Final { payload: Unit(55) };
    let mut wr = BitWriter::new();
    wr.write_bits(1, 1);
    encode_unit(&mut wr, &Unit(55), n);
    assert!(wr.bit_len() <= fin.size_bits(n));
}

#[test]
fn scatter_msg_sizes_are_honest() {
    let n = 100;
    let m = ScatterMsg::ToRelay {
        target: NodeId::new(3),
        payload: Unit(1),
    };
    let mut wr = BitWriter::new();
    wr.write_bits(0, 1);
    put_node(&mut wr, NodeId::new(3), n);
    encode_unit(&mut wr, &Unit(1), n);
    assert!(wr.bit_len() <= m.size_bits(n));
}

#[test]
fn rb_msg_sizes_are_honest() {
    let n = 64;
    let m = RbMsg::Bcast {
        slot: 9,
        payload: Unit(7),
    };
    let mut wr = BitWriter::new();
    wr.write_bits(1, 1);
    wr.write_bits(9, w(n));
    encode_unit(&mut wr, &Unit(7), n);
    assert!(wr.bit_len() <= m.size_bits(n));
}

#[test]
fn word_width_covers_all_ids_and_counts() {
    // ⌈log₂ n⌉ bits must express every node id; counts up to n² fit in
    // two words — the invariants all size declarations rely on.
    for n in [2usize, 3, 17, 255, 256, 1000] {
        let bits = ceil_log2(n);
        assert!((n - 1) >> bits == 0, "id {n}-1 must fit in {bits} bits");
        let sq = (n * n - 1) as u64;
        assert!(sq >> (2 * bits) == 0, "count n² must fit in two words");
    }
}

#[test]
fn routed_message_size_is_honest() {
    use cc_core::routing::RoutedMessage;
    let n = 512;
    let m = RoutedMessage::new(NodeId::new(500), NodeId::new(2), 77, 0xdead_beefu64);
    let mut wr = BitWriter::new();
    put_node(&mut wr, m.src, n);
    put_node(&mut wr, m.dst, n);
    wr.write_bits(u64::from(m.seq), w(n));
    wr.write_bits(m.payload, 2 * w(n).max(32)); // payload: two words suffice for test values
                                                // Declared: 3 words + payload (1 word for u64 default impl).
                                                // Our encoding spends more on the payload than the declaration only
                                                // if the payload exceeds one word — which the routing experiments'
                                                // payloads do not; assert the header part.
    let header_bits = 3 * u64::from(w(n));
    assert!(header_bits <= m.size_bits(n));
}

#[test]
fn tagged_key_size_is_honest() {
    use cc_core::sorting::TaggedKey;
    let n = 128;
    let k = TaggedKey::new(12345, NodeId::new(100), 99);
    let mut wr = BitWriter::new();
    wr.write_bits(k.key, 2 * w(n)); // keys of O(log n) bits: two words
    put_node(&mut wr, k.origin, n);
    wr.write_bits(u64::from(k.index_at_origin), w(n));
    assert!(wr.bit_len() <= k.size_bits(n));
}

#[test]
fn key_batch_size_scales_with_len() {
    use cc_core::sorting::{KeyBatch, TaggedKey};
    let n = 64;
    for len in 0..=4usize {
        let keys: Vec<TaggedKey> = (0..len)
            .map(|i| TaggedKey::new(i as u64, NodeId::new(i), i as u32))
            .collect();
        let b = KeyBatch::new(keys);
        let mut wr = BitWriter::new();
        wr.write_bits(len as u64, w(n)); // length prefix
        for k in &b.keys {
            wr.write_bits(k.key, 2 * w(n));
            put_node(&mut wr, k.origin, n);
            wr.write_bits(u64::from(k.index_at_origin), w(n));
        }
        assert!(
            wr.bit_len() <= b.size_bits(n),
            "len {len}: encoded {} vs declared {}",
            wr.bit_len(),
            b.size_bits(n)
        );
    }
}
