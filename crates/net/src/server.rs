//! The TCP front of the query fleet: the event-driven reactor backend
//! (default) and the legacy thread-per-connection backend, behind one
//! [`NetServer`] with identical wire semantics — pipelining,
//! backpressure, PROTO_ERR teardown and graceful drain.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cc_core::obs::{self, Counter, Gauge, Histogram, Registry};
use cc_server::{FleetStats, QueryServer, ServerConfig, ServerError, ServiceHandle, TaggedReply};

use crate::codec::{self, Frame};
use crate::error::{NetError, WireError};
use crate::frame::{self, DEFAULT_MAX_FRAME_BYTES};

/// Which serving core a [`NetServer`] runs. Both speak the same wire
/// protocol with the same semantics; they differ only in how sockets map
/// to threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServingMode {
    /// One event-driven reactor thread multiplexes every connection via
    /// `poll(2)` readiness — thread count stays O(shards) however many
    /// clients connect. The default, and the C10k path. On non-unix
    /// targets (no `poll`) this transparently falls back to
    /// [`ServingMode::ThreadPerConnection`].
    #[default]
    Reactor,
    /// The legacy core: one reader and one writer thread per accepted
    /// connection. Kept as the comparison baseline while the reactor
    /// soaks; scheduled for removal once the benches retire it.
    ThreadPerConnection,
}

/// Which readiness mechanism the reactor core multiplexes on. Both
/// backends drive identical per-connection state machines and produce
/// identical wire behaviour; they differ only in how the kernel reports
/// readiness — and therefore in how serving cost scales with *idle*
/// connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReactorBackend {
    /// Edge-triggered `epoll`: every fd registered once, interest masks
    /// updated only when a connection's paused/write-pending state
    /// changes, readiness delivered as an O(ready) event list. Idle
    /// connections cost nothing per iteration. The default on Linux;
    /// resolves to [`ReactorBackend::Poll`] everywhere else.
    Epoll,
    /// `poll(2)`: the pollfd array is rebuilt and the kernel scans every
    /// registration on each wait — O(n) per iteration. Retained as the
    /// portable fallback, the correctness oracle the parity tests compare
    /// against, and the `CC_REACTOR=poll` kill switch.
    Poll,
}

impl ReactorBackend {
    /// The backend this host defaults to: epoll on Linux, poll elsewhere.
    #[must_use]
    pub fn default_for_host() -> Self {
        if cfg!(target_os = "linux") {
            ReactorBackend::Epoll
        } else {
            ReactorBackend::Poll
        }
    }

    /// Resolves an optional explicit choice to the backend a bind will
    /// actually run: the `CC_REACTOR` environment variable (`poll` or
    /// `epoll`) wins as an operational kill switch — mirroring
    /// `CC_RADIX=off` — then the explicit choice, then
    /// [`default_for_host`](ReactorBackend::default_for_host); and
    /// `Epoll` degrades to `Poll` on targets without it.
    #[must_use]
    pub fn resolve(explicit: Option<ReactorBackend>) -> ReactorBackend {
        let env = match std::env::var("CC_REACTOR").as_deref() {
            Ok("poll") => Some(ReactorBackend::Poll),
            Ok("epoll") => Some(ReactorBackend::Epoll),
            _ => None,
        };
        let chosen = env.or(explicit).unwrap_or_else(Self::default_for_host);
        if chosen == ReactorBackend::Epoll && !cfg!(target_os = "linux") {
            ReactorBackend::Poll
        } else {
            chosen
        }
    }
}

impl Default for ReactorBackend {
    fn default() -> Self {
        Self::default_for_host()
    }
}

/// Sizing knobs for a [`NetServer`]: the inner fleet's [`ServerConfig`]
/// plus the wire-level frame cap, the serving mode, the reactor topology
/// and the slow-peer stall bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetServerConfig {
    fleet: ServerConfig,
    max_frame_bytes: u64,
    write_timeout: Duration,
    idle_timeout: Duration,
    serving_mode: ServingMode,
    conn_send_buffer: Option<u32>,
    reactor_backend: Option<ReactorBackend>,
    reactor_threads: usize,
}

impl NetServerConfig {
    /// A config whose fleet has `shards` shard workers (defaults
    /// otherwise, including the [`DEFAULT_MAX_FRAME_BYTES`] frame cap).
    pub fn new(shards: usize) -> Self {
        NetServerConfig {
            fleet: ServerConfig::new(shards),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            serving_mode: ServingMode::default(),
            conn_send_buffer: None,
            reactor_backend: None,
            reactor_threads: 1,
        }
    }

    /// Replaces the whole inner fleet configuration (queue capacity,
    /// coalescing, shard count).
    #[must_use]
    pub fn with_fleet(mut self, fleet: ServerConfig) -> Self {
        self.fleet = fleet;
        self
    }

    /// Sets the cap on one frame's payload size in bytes. Frames above it
    /// are rejected with [`WireError::FrameTooLarge`] — on the read side
    /// before allocation.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u64) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// The inner fleet configuration.
    #[inline]
    pub fn fleet(&self) -> &ServerConfig {
        &self.fleet
    }

    /// The frame payload cap in bytes.
    #[inline]
    pub fn max_frame_bytes(&self) -> u64 {
        self.max_frame_bytes
    }

    /// Sets the bound on any single blocked reply write. A client that
    /// stops reading long enough for its TCP window *and* this timeout to
    /// fill is treated as gone: its connection is torn down rather than
    /// parking a writer thread — and with it [`NetServer::shutdown`] /
    /// `Drop` — forever. Armed at accept time, because a socket timeout
    /// installed after a write has already parked does not wake it.
    ///
    /// # Panics
    ///
    /// Panics on a zero duration (the OS rejects it as a socket timeout).
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "write timeout must be non-zero");
        self.write_timeout = timeout;
        self
    }

    /// The bound on any single blocked reply write.
    #[inline]
    pub fn write_timeout(&self) -> Duration {
        self.write_timeout
    }

    /// Sets the slow-loris bound: how long a *partial* frame may sit
    /// without completing before the reactor tears the connection down
    /// (counted in [`NetStats::idle_teardowns`]). Dribbled bytes do not
    /// refresh the clock — only a completed frame does — so a
    /// byte-at-a-time client is evicted however steadily it drips.
    /// Reactor-only; the thread-per-connection backend relies on the
    /// write timeout alone.
    ///
    /// # Panics
    ///
    /// Panics on a zero duration, like
    /// [`with_write_timeout`](NetServerConfig::with_write_timeout).
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "idle timeout must be non-zero");
        self.idle_timeout = timeout;
        self
    }

    /// The slow-loris bound on a stalled partial frame.
    #[inline]
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    /// Selects the serving core; see [`ServingMode`].
    #[must_use]
    pub fn with_serving_mode(mut self, mode: ServingMode) -> Self {
        self.serving_mode = mode;
        self
    }

    /// The selected serving core.
    #[inline]
    pub fn serving_mode(&self) -> ServingMode {
        self.serving_mode
    }

    /// Caps each accepted connection's kernel send buffer (`SO_SNDBUF`)
    /// at roughly `bytes`. Unset, the kernel autotunes the buffer up to
    /// `tcp_wmem[2]` (megabytes per socket), which both unbounds kernel
    /// memory under many slow readers and lets a reader that never
    /// drains absorb replies for a long time before the stalled-write
    /// deadline can notice. The kernel rounds the value (Linux doubles
    /// it) and clamps to its own floor. Unix-only; ignored elsewhere.
    ///
    /// # Panics
    ///
    /// Panics on zero (the cap would round to the OS floor anyway —
    /// pass the floor explicitly if that is what you want).
    #[must_use]
    pub fn with_conn_send_buffer(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "send buffer cap must be non-zero");
        self.conn_send_buffer = Some(bytes);
        self
    }

    /// The per-connection kernel send buffer cap, if one is set.
    #[inline]
    pub fn conn_send_buffer(&self) -> Option<u32> {
        self.conn_send_buffer
    }

    /// Pins the reactor's readiness backend instead of letting the host
    /// default decide; see [`ReactorBackend`]. The `CC_REACTOR`
    /// environment variable still overrides an explicit choice — it is
    /// the operational kill switch, like `CC_RADIX=off` for the sort
    /// engine. Ignored under [`ServingMode::ThreadPerConnection`].
    #[must_use]
    pub fn with_reactor_backend(mut self, backend: ReactorBackend) -> Self {
        self.reactor_backend = Some(backend);
        self
    }

    /// The explicitly pinned readiness backend, if any. What a bind will
    /// actually run is [`NetServerConfig::resolved_reactor_backend`].
    #[inline]
    pub fn reactor_backend(&self) -> Option<ReactorBackend> {
        self.reactor_backend
    }

    /// The backend a bind with this config will actually run, after the
    /// `CC_REACTOR` override and the host fallback are applied.
    #[must_use]
    pub fn resolved_reactor_backend(&self) -> ReactorBackend {
        ReactorBackend::resolve(self.reactor_backend)
    }

    /// Sets the number of reactor event-loop threads. At one (the
    /// default) a single loop owns the listener and every connection. At
    /// N, reactor 0 still owns the listener and deals each accepted
    /// socket to the least-loaded reactor; every reactor owns its own fd
    /// set, readiness backend and doorbell, and fleet fan-in is unchanged
    /// (`submit_tagged` from whichever loop read the request). Ignored
    /// under [`ServingMode::ThreadPerConnection`].
    ///
    /// # Panics
    ///
    /// Panics on zero — someone has to own the listener.
    #[must_use]
    pub fn with_reactor_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "reactor thread count must be non-zero");
        self.reactor_threads = threads;
        self
    }

    /// The configured number of reactor event-loop threads.
    #[inline]
    pub fn reactor_threads(&self) -> usize {
        self.reactor_threads
    }
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            fleet: ServerConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            serving_mode: ServingMode::default(),
            conn_send_buffer: None,
            reactor_backend: None,
            reactor_threads: 1,
        }
    }
}

/// Wire-level counters plus the fleet's own telemetry.
#[derive(Clone, Debug)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames successfully decoded and submitted (or answered
    /// inline with a server-level error).
    pub frames_in: u64,
    /// Frames written back: replies plus protocol-error notices.
    pub frames_out: u64,
    /// Connections torn down for undecodable input.
    pub protocol_errors: u64,
    /// Connections the reactor evicted on a deadline: a partial frame
    /// that stopped completing (slow loris) or replies the peer stopped
    /// reading. Always zero under
    /// [`ServingMode::ThreadPerConnection`], whose write timeout kills
    /// silently at the socket layer.
    pub idle_teardowns: u64,
    /// Reactor event-loop threads serving connections; zero under
    /// [`ServingMode::ThreadPerConnection`].
    pub reactors: usize,
    /// The inner [`QueryServer`]'s per-shard telemetry.
    pub fleet: FleetStats,
}

/// The wire-level metrics, shared by whichever backend serves — one
/// instance per [`NetServer`], read by [`NetServer::stats`]. Normally
/// built with [`Telemetry::new`] over the fleet's [`Registry`] so one
/// `Request::Stats` snapshot covers the whole serving stack; the
/// `Default` form (standalone, unregistered cells) remains for unit
/// tests that drive connection state machines directly.
#[derive(Default)]
pub(crate) struct Telemetry {
    pub(crate) connections: Counter,
    pub(crate) frames_in: Counter,
    pub(crate) frames_out: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) idle_teardowns: Counter,
    /// Time from a complete request frame's arrival to its decoded
    /// [`cc_server::Request`] — data requests only, so the count moves in
    /// lockstep with the fleet's per-shard `requests` counters.
    pub(crate) decode_ns: Histogram,
    /// Time a data reply spends between entering the write path and its
    /// last byte handed to the kernel. Stats replies and error notices
    /// are excluded so the count stays in lockstep with served requests.
    pub(crate) write_ns: Histogram,
    /// Reactor loop: returns from the blocking readiness wait.
    pub(crate) reactor_wakeups: Counter,
    /// Ready events delivered per wakeup.
    pub(crate) reactor_ready_set: Histogram,
    /// Time servicing one loop iteration between two readiness waits.
    pub(crate) reactor_loop_ns: Histogram,
    /// Readiness waits issued through the epoll backend.
    pub(crate) reactor_polls_epoll: Counter,
    /// Readiness waits issued through the `poll(2)` backend.
    pub(crate) reactor_polls_poll: Counter,
    /// Sockets adopted off the accept-handoff (inject) channel.
    pub(crate) reactor_injected: Counter,
    /// Handed-off sockets not yet adopted by their target reactor.
    pub(crate) reactor_inject_depth: Gauge,
}

impl Telemetry {
    /// Registry-backed construction: every cell is shared with `registry`
    /// under its `net.*` name, so wire metrics land in the same snapshot
    /// as the fleet's `fleet.*` ones.
    pub(crate) fn new(registry: &Registry) -> Telemetry {
        Telemetry {
            connections: registry.counter("net.connections"),
            frames_in: registry.counter("net.frames_in"),
            frames_out: registry.counter("net.frames_out"),
            protocol_errors: registry.counter("net.protocol_errors"),
            idle_teardowns: registry.counter("net.idle_teardowns"),
            decode_ns: registry.histogram("net.decode_ns"),
            write_ns: registry.histogram("net.write_ns"),
            reactor_wakeups: registry.counter("net.reactor.wakeups"),
            reactor_ready_set: registry.histogram("net.reactor.ready_set"),
            reactor_loop_ns: registry.histogram("net.reactor.loop_ns"),
            reactor_polls_epoll: registry.counter("net.reactor.polls.epoll"),
            reactor_polls_poll: registry.counter("net.reactor.polls.poll"),
            reactor_injected: registry.counter("net.reactor.injected"),
            reactor_inject_depth: registry.gauge("net.reactor.inject_depth"),
        }
    }

    /// One consistent read of the wire counters, completed with the given
    /// fleet snapshot — the single construction point of [`NetStats`].
    fn snapshot(&self, fleet: FleetStats, reactors: usize) -> NetStats {
        NetStats {
            connections: self.connections.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            protocol_errors: self.protocol_errors.get(),
            idle_teardowns: self.idle_teardowns.get(),
            reactors,
            fleet,
        }
    }
}

/// Default bound on one blocked reply write: long enough for any live
/// client to drain its receive window, short enough that a vanished peer
/// cannot park a writer thread — or [`NetServer::shutdown`] / `Drop`,
/// which join it — indefinitely. The reactor applies the same bound per
/// queued frame: no completed-frame flush for this long tears the
/// connection down.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default slow-loris bound: how long the reactor lets a partial frame
/// sit without completing before evicting the connection.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Cap on unanswered-or-unwritten requests per connection. This is the
/// reply-side half of the backpressure contract: completed replies wait
/// on the connection's channel only until the writer ships them, so a
/// client that pipelines without reading would otherwise make the server
/// buffer unboundedly. At the cap, the connection's reader stops reading
/// (TCP pushes back on the client) until the writer catches up. Above
/// the client library's `PIPELINE_WINDOW`, so well-behaved clients never
/// hit it.
pub const MAX_CONN_INFLIGHT: usize = 64;

/// Counts one connection's requests between fleet submission and reply
/// write-out, blocking the reader at [`MAX_CONN_INFLIGHT`].
#[derive(Default)]
struct InflightGate {
    count: Mutex<usize>,
    cv: Condvar,
}

impl InflightGate {
    /// Blocks until a slot is free, then takes it.
    fn acquire(&self) {
        let mut count = self.count.lock().expect("gate lock");
        while *count >= MAX_CONN_INFLIGHT {
            count = self.cv.wait(count).expect("gate lock");
        }
        *count += 1;
    }

    /// Returns a slot (reply written, dropped, or answered inline).
    fn release(&self) {
        let mut count = self.count.lock().expect("gate lock");
        *count -= 1;
        drop(count);
        self.cv.notify_one();
    }
}

struct Shared {
    closed: AtomicBool,
    max_frame_bytes: u64,
    write_timeout: Duration,
    #[cfg_attr(not(unix), allow(dead_code))]
    conn_send_buffer: Option<u32>,
    telemetry: Arc<Telemetry>,
    /// The fleet's metric registry — the source for inline
    /// `Frame::StatsRequest` answers.
    registry: Registry,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, ConnEntry>>,
}

impl Shared {
    /// Called by a connection's writer as its last act: drop the
    /// connection's registry entry — and with it the registry fd — so a
    /// long-lived server under churn does not accumulate dead sockets.
    /// If the accept loop has not attached the thread handles yet (a
    /// connection that lived and died faster than registration), leave a
    /// tombstone for it to collect instead.
    fn reap(&self, id: u64) {
        let mut conns = self.conns.lock().expect("conns lock");
        if let Some(entry) = conns.get_mut(&id) {
            if entry.writer.is_some() {
                conns.remove(&id);
            } else {
                entry.done = true;
            }
        }
    }
}

/// One live connection: the registry clone used to force the reader off
/// its blocking read, plus the two thread handles (attached by the
/// accept loop just after spawning; `done` marks a connection whose
/// writer finished before that attachment). Finished connections remove
/// their own entry — dropping the in-thread `JoinHandle`s detaches the
/// already-exiting threads — so the registry holds only live sockets.
struct ConnEntry {
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    done: bool,
}

/// Writes one frame under the sink lock (writer thread and the reader's
/// fatal-notice path share the socket; the lock keeps frames atomic).
fn write_locked(sink: &Mutex<TcpStream>, payload: &[u8]) -> Result<(), NetError> {
    let mut stream = sink.lock().expect("sink lock");
    frame::write_frame(&mut *stream, payload)
}

/// The per-connection reader: slices frames off the socket, decodes, and
/// submits into the fleet under the connection's id tags. Exits on client
/// disconnect, server shutdown (the registry half-closes the socket) or
/// the first undecodable frame. Dropping `replies` on exit is what lets
/// the writer drain every still-owed reply and then close.
fn run_reader(
    mut stream: TcpStream,
    handle: ServiceHandle,
    replies: Sender<TaggedReply>,
    gate: Arc<InflightGate>,
    sink: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
) {
    loop {
        // Best-effort id for protocol-error notices: the offending
        // frame's request id when the decoder got far enough, else 0.
        let mut notice_id = 0;
        let fatal = match frame::read_frame(&mut stream, shared.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let decode_started = obs::now();
                match codec::decode_frame(&payload) {
                    Ok(Frame::Request { id, request }) => {
                        shared.telemetry.decode_ns.record_elapsed(decode_started);
                        shared.telemetry.frames_in.incr();
                        // Backpressure, both directions: the gate blocks while
                        // too many of this connection's replies are completed
                        // but unwritten (a client pipelining without reading),
                        // and submit_tagged blocks while the target shard's
                        // bounded queue is full. Either way this loop stops
                        // reading and TCP flow control pushes back on the
                        // client. Server-level rejections (only ShutDown here;
                        // the tagged path never uses try_submit) are answered
                        // inline so a pipelining client is never left waiting.
                        gate.acquire();
                        match handle.submit_tagged(id, request, &replies) {
                            Ok(()) => continue,
                            Err(e) => {
                                // No reply will reach the writer's channel.
                                gate.release();
                                let notice = codec::encode_reply(id, &Err(e));
                                if write_locked(&sink, &notice).is_err() {
                                    break;
                                }
                                shared.telemetry.frames_out.incr();
                                continue;
                            }
                        }
                    }
                    Ok(Frame::StatsRequest { id }) => {
                        // Answered inline from the registry — a stats probe
                        // never competes with data requests for shard queue
                        // slots or gate capacity, and its reply is excluded
                        // from `net.write_ns` so that histogram's count
                        // keeps tracking served data requests.
                        //
                        // The snapshot is taken *under the sink lock*: any
                        // data reply the client has already seen was written
                        // under this lock and its bookkeeping completed
                        // before the lock released, so the snapshot counts
                        // every reply that prompted this probe.
                        shared.telemetry.frames_in.incr();
                        let mut stream = sink.lock().expect("sink lock");
                        let payload = codec::encode_stats_reply(id, &shared.registry.snapshot());
                        if frame::write_frame(&mut *stream, &payload).is_err() {
                            break;
                        }
                        drop(stream);
                        shared.telemetry.frames_out.incr();
                        continue;
                    }
                    Ok(
                        Frame::Reply { id, .. }
                        | Frame::ProtocolError { id, .. }
                        | Frame::StatsReply { id, .. },
                    ) => {
                        notice_id = id;
                        WireError::malformed("clients may send only request frames")
                    }
                    Err(e) => {
                        // The header (and its request id) may have parsed even
                        // though the body did not; name the request if so.
                        notice_id = codec::peek_request_id(&payload).unwrap_or(0);
                        e
                    }
                }
            }
            // An oversized length prefix is a protocol error worth
            // reporting; transport failures and disconnects are not.
            Err(NetError::Wire(e)) => e,
            Err(_) => break,
        };
        // Undecodable input: report which way it failed, then drop the
        // connection — after a framing error there is no resync point.
        shared.telemetry.protocol_errors.incr();
        if write_locked(&sink, &codec::encode_protocol_error(notice_id, &fatal)).is_ok() {
            shared.telemetry.frames_out.incr();
        }
        break;
    }
    let _ = stream.shutdown(Shutdown::Read);
}

/// The per-connection writer: drains the tagged reply channel — fed by
/// every shard this connection's requests landed on, in completion order —
/// and writes each reply frame. The channel closes only when the reader
/// has exited *and* every in-flight request has been answered, so by
/// construction every queued reply is written before the socket closes.
/// The writer is the connection's last thread to finish, so it also reaps
/// the registry entry.
fn run_writer(
    conn_id: u64,
    replies: Receiver<TaggedReply>,
    gate: Arc<InflightGate>,
    sink: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
) {
    // After a write failure the client is gone and remaining replies have
    // no destination — but the channel must still be drained, releasing
    // the gate each time, or a reader parked at the in-flight cap would
    // never wake to observe the dead socket.
    let mut client_gone = false;
    while let Ok(reply) = replies.recv() {
        if !client_gone {
            let payload = codec::encode_reply(reply.id, &reply.result.map_err(ServerError::Query));
            let write_started = obs::now();
            let mut stream = sink.lock().expect("sink lock");
            if frame::write_frame(&mut *stream, &payload).is_ok() {
                // Recorded while still holding the sink lock: a stats
                // probe prompted by this very reply snapshots under the
                // same lock, so the sample is visible before the snapshot
                // can be taken.
                shared.telemetry.write_ns.record_elapsed(write_started);
                shared.telemetry.frames_out.incr();
            } else {
                client_gone = true;
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        gate.release();
    }
    let _ = sink.lock().expect("sink lock").shutdown(Shutdown::Both);
    shared.reap(conn_id);
}

/// The accept loop polls a nonblocking listener: a blocking `accept`
/// would need an out-of-band wake-up at shutdown (fragile for wildcard
/// or interface binds), while a poll observes the `closed` flag within
/// one 5 ms sleep interval on any bind, so `shutdown`/`Drop` joins this
/// thread deterministically and connection-setup latency stays small.
fn accept_loop(listener: TcpListener, handle: ServiceHandle, shared: Arc<Shared>) {
    loop {
        if shared.closed.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                // Persistent accept errors (fd exhaustion, EMFILE) must
                // not busy-spin a core; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // The listener is nonblocking; the per-connection socket must not
        // be (inheritance of the flag is platform-dependent).
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let (registry, sink_stream) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(a), Ok(b)) => (a, b),
            // Out of fds: drop the socket; the client sees a reset, and
            // the connection is never counted as serviced.
            _ => continue,
        };
        // One frame per reply either way (write_frame coalesces prefix +
        // payload), so turn Nagle off like the client does; and arm the
        // write bound now — a socket timeout installed later, after a
        // send has parked on a stalled peer, would not wake it.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(shared.write_timeout));
        #[cfg(unix)]
        crate::reactor::cap_send_buffer(&stream, shared.conn_send_buffer);
        shared.telemetry.connections.incr();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.conns.lock().expect("conns lock").insert(
            conn_id,
            ConnEntry {
                stream: registry,
                reader: None,
                writer: None,
                done: false,
            },
        );
        let sink = Arc::new(Mutex::new(sink_stream));
        let gate = Arc::new(InflightGate::default());
        let (reply_tx, reply_rx) = channel();
        let reader = {
            let shared = Arc::clone(&shared);
            let handle = handle.clone();
            let sink = Arc::clone(&sink);
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .name("cc-net-reader".into())
                .spawn(move || run_reader(stream, handle, reply_tx, gate, sink, shared))
                .expect("spawn connection reader")
        };
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cc-net-writer".into())
                .spawn(move || run_writer(conn_id, reply_rx, gate, sink, shared))
                .expect("spawn connection writer")
        };
        let mut conns = shared.conns.lock().expect("conns lock");
        if let Some(entry) = conns.get_mut(&conn_id) {
            if entry.done {
                // The whole connection finished before this attachment;
                // dropping the handles detaches the exited threads.
                conns.remove(&conn_id);
            } else {
                entry.reader = Some(reader);
                entry.writer = Some(writer);
            }
        }
    }
}

/// A TCP server exposing a [`QueryServer`] fleet over the `cc-net` wire
/// protocol. See the [crate docs](crate) for the protocol and the
/// architecture.
///
/// By default ([`ServingMode::Reactor`]) every accepted connection is
/// multiplexed on one event-driven reactor thread: frames → requests →
/// [`ServiceHandle`] tagged fan-in → reply write queues, with
/// backpressure surfacing as read-pausing. One connection can pipeline
/// any number of requests and receives replies in completion order,
/// tagged with its request ids; a full shard queue pauses that
/// connection's reads, which TCP propagates to the client. The legacy
/// [`ServingMode::ThreadPerConnection`] core (a reader and writer thread
/// per socket) serves identically and remains as a baseline.
pub struct NetServer {
    local_addr: SocketAddr,
    telemetry: Arc<Telemetry>,
    backend: Backend,
    fleet: Option<QueryServer>,
}

/// The running serving core and its shutdown levers.
enum Backend {
    /// Accept loop + per-connection thread pairs, coordinated through
    /// the connection registry.
    Threaded {
        shared: Arc<Shared>,
        accept: Option<JoinHandle<()>>,
    },
    /// The reactor fleet: one or more event-loop threads; `closed` + a
    /// ring on every doorbell get their attention, joining them completes
    /// the drain.
    #[cfg(unix)]
    Reactor {
        shared: Arc<crate::reactor::ReactorShared>,
        wakers: Vec<cc_server::ReplyWaker>,
        threads: Vec<JoinHandle<()>>,
    },
}

impl Backend {
    /// How many reactor event loops serve connections — zero when the
    /// threaded core does.
    fn reactors(&self) -> usize {
        match self {
            Backend::Threaded { .. } => 0,
            #[cfg(unix)]
            Backend::Reactor {
                threads, wakers, ..
            } => threads.len().max(wakers.len()),
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.backend {
            Backend::Threaded { .. } => "thread-per-connection",
            #[cfg(unix)]
            Backend::Reactor { .. } => "reactor",
        };
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("backend", &mode)
            .finish_non_exhaustive()
    }
}

/// Spawns the thread-per-connection core: the fallback for
/// [`ServingMode::Reactor`] on non-unix targets, the whole story for
/// [`ServingMode::ThreadPerConnection`].
fn spawn_threaded(
    listener: TcpListener,
    handle: ServiceHandle,
    telemetry: Arc<Telemetry>,
    registry: Registry,
    config: &NetServerConfig,
) -> Backend {
    let shared = Arc::new(Shared {
        closed: AtomicBool::new(false),
        max_frame_bytes: config.max_frame_bytes,
        write_timeout: config.write_timeout,
        conn_send_buffer: config.conn_send_buffer,
        telemetry,
        registry,
        next_conn: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cc-net-accept".into())
            .spawn(move || accept_loop(listener, handle, shared))
            .expect("spawn accept loop")
    };
    Backend::Threaded {
        shared,
        accept: Some(accept),
    }
}

impl NetServer {
    /// Spawns the fleet, binds `addr` (use port 0 for an ephemeral port)
    /// and starts the configured serving core.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] for an invalid fleet config, [`NetError::Io`]
    /// for bind failures.
    pub fn bind(addr: impl ToSocketAddrs, config: NetServerConfig) -> Result<Self, NetError> {
        let fleet = QueryServer::new(config.fleet.clone()).map_err(NetError::Server)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // The wire layer records into the fleet's own registry, so one
        // stats snapshot spans sockets, queues and sessions.
        let registry = fleet.registry().clone();
        let telemetry = Arc::new(Telemetry::new(&registry));
        let backend = match config.serving_mode {
            #[cfg(unix)]
            ServingMode::Reactor => {
                let shared = Arc::new(crate::reactor::ReactorShared {
                    closed: AtomicBool::new(false),
                    telemetry: Arc::clone(&telemetry),
                    registry: registry.clone(),
                    max_frame_bytes: config.max_frame_bytes,
                    write_timeout: config.write_timeout,
                    idle_timeout: config.idle_timeout,
                    conn_send_buffer: config.conn_send_buffer,
                });
                let (threads, wakers) = crate::reactor::spawn(
                    listener,
                    fleet.handle(),
                    Arc::clone(&shared),
                    config.resolved_reactor_backend(),
                    config.reactor_threads,
                )?;
                Backend::Reactor {
                    shared,
                    wakers,
                    threads,
                }
            }
            #[cfg(not(unix))]
            ServingMode::Reactor => spawn_threaded(
                listener,
                fleet.handle(),
                Arc::clone(&telemetry),
                registry.clone(),
                &config,
            ),
            ServingMode::ThreadPerConnection => spawn_threaded(
                listener,
                fleet.handle(),
                Arc::clone(&telemetry),
                registry.clone(),
                &config,
            ),
        };
        Ok(NetServer {
            local_addr,
            telemetry,
            backend,
            fleet: Some(fleet),
        })
    }

    /// The bound address — the port to hand to clients when binding
    /// ephemeral (`127.0.0.1:0`).
    #[inline]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// An in-process handle onto the same fleet the TCP connections feed —
    /// local callers skip the codec entirely and still share sessions,
    /// queues and telemetry with remote ones.
    pub fn handle(&self) -> ServiceHandle {
        self.fleet
            .as_ref()
            .expect("fleet lives until drop")
            .handle()
    }

    /// A live snapshot of the wire and fleet telemetry. Counters move
    /// while the server runs; for quiescent totals use the snapshot
    /// returned by [`NetServer::shutdown`].
    pub fn stats(&self) -> NetStats {
        self.telemetry.snapshot(
            self.fleet.as_ref().expect("fleet lives until drop").stats(),
            self.backend.reactors(),
        )
    }

    /// Graceful shutdown. In order: stop accepting; half-close every
    /// connection's read side (no new requests); let the fleet answer
    /// everything already submitted; flush every queued reply and close
    /// each socket; then drain and join the fleet itself. Clients with
    /// requests in flight get all their replies before their connection
    /// closes.
    pub fn shutdown(mut self) -> NetStats {
        self.shutdown_impl();
        let reactors = self.backend.reactors();
        self.telemetry.snapshot(
            self.fleet
                .take()
                .expect("first shutdown consumes the fleet")
                .shutdown(),
            reactors,
        )
    }

    fn shutdown_impl(&mut self) {
        match &mut self.backend {
            Backend::Threaded { shared, accept } => {
                if shared.closed.swap(true, Ordering::AcqRel) {
                    return;
                }
                // The polling accept loop observes `closed` within one
                // sleep interval (the listener drops with it), on any
                // bind address.
                if let Some(accept) = accept.take() {
                    let _ = accept.join();
                }
                let conns = std::mem::take(&mut *shared.conns.lock().expect("conns lock"));
                for conn in conns.values() {
                    // Half-close: readers come off their blocking read and
                    // exit; writers keep the write side until every reply
                    // is out — the accept-time write timeout bounds that
                    // drain against clients that stopped reading, so these
                    // joins cannot park forever.
                    let _ = conn.stream.shutdown(Shutdown::Read);
                }
                for conn in conns.into_values() {
                    if let Some(reader) = conn.reader {
                        let _ = reader.join();
                    }
                    if let Some(writer) = conn.writer {
                        let _ = writer.join();
                    }
                }
            }
            #[cfg(unix)]
            Backend::Reactor {
                shared,
                wakers,
                threads,
            } => {
                if shared.closed.swap(true, Ordering::AcqRel) {
                    return;
                }
                // Ringing every doorbell gets each loop off its wait; the
                // reactors then half-close every connection, answer
                // everything already submitted, flush and exit — the
                // write/idle deadlines bound the drain against stalled
                // peers, so these joins cannot park forever.
                for waker in wakers.iter() {
                    waker();
                }
                for thread in threads.drain(..) {
                    let _ = thread.join();
                }
            }
        }
        // Operator-facing exit report, gated behind `CC_OBS_DUMP` so test
        // and CI output stays quiet. Runs once: a second shutdown (or the
        // Drop after an explicit one) early-returns above.
        if matches!(std::env::var("CC_OBS_DUMP").as_deref(), Ok(v) if !v.is_empty() && v != "0") {
            if let Some(fleet) = &self.fleet {
                eprintln!("{}", fleet.registry().snapshot());
            }
        }
    }
}

impl Drop for NetServer {
    /// Dropping performs the same graceful drain as
    /// [`NetServer::shutdown`], minus the returned stats.
    fn drop(&mut self) {
        self.shutdown_impl();
        // `fleet` (if not consumed by an explicit shutdown) drains in its
        // own Drop.
    }
}
