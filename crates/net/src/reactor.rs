//! The event-driven serving core: reactor threads multiplexing every
//! connection through an O(ready) readiness backend.
//!
//! The thread-per-connection backend spends two OS threads and a blocking
//! reply channel per socket. This module replaces all of that with
//! **reactor** threads multiplexing accepted sockets through readiness
//! notifications:
//!
//! * all sockets are **non-blocking**; a reactor never parks inside a
//!   read, write, accept or fleet submission — the only place it blocks
//!   is one readiness wait over the fds it owns, so an idle server is
//!   exactly the reactor threads parked (plus the shard workers parked on
//!   their queues);
//! * readiness arrives through a swappable [`Backend`] seam: the default
//!   on Linux is **edge-triggered `epoll`** — every fd registered once,
//!   interest masks updated only when a connection's paused/write-pending
//!   state actually changes, events delivered as an O(ready) list — while
//!   **`poll(2)`** remains as the portable oracle and the `CC_REACTOR=poll`
//!   kill switch (it rebuilds its set per wait, which is exactly the O(n)
//!   wall the epoll backend removes);
//! * between waits the loop touches only the **attention set** — the
//!   connections with cached readiness, parked submissions or armed
//!   deadline clocks — never the whole table, so thousands of idle
//!   sockets cost nothing per iteration;
//! * each connection is a pair of **state machines**: the read side
//!   accumulates partial frames in a reusable [`FrameDecoder`] buffer,
//!   the write side drains a queue of [`OutFrame`]s with one
//!   `write_vectored` per flush (pipelined replies coalesce into a single
//!   syscall) that resumes mid-frame after `WouldBlock`, recycling
//!   flushed frame buffers through a per-connection pool;
//! * fleet replies arrive on **one shared [`TaggedReply`] channel per
//!   reactor** (the `submit_tagged` fan-in), announced by a
//!   [`ReplyWaker`] that writes a byte to a self-pipe whose read end sits
//!   in the readiness set — an mpsc channel is invisible to the kernel,
//!   the pipe is its doorbell. An [`AtomicBool`] coalesces rings so the
//!   pipe holds at most one unread byte no matter how many shards
//!   complete at once;
//! * with `reactor_threads > 1`, reactor 0 owns the listener and deals
//!   each accepted socket to the **least-loaded reactor** over an inject
//!   channel plus doorbell ring; every reactor owns its fd set, backend
//!   instance and doorbell outright — no lock is ever shared between
//!   event loops;
//! * **backpressure is read-pausing**: a connection past its in-flight
//!   cap, or whose submission bounced off a full shard queue (the request
//!   is *parked*, not dropped), simply loses read interest — TCP flow
//!   control pushes back on the client, and no reactor state grows;
//! * **slow peers are evicted on deadlines**: a partial frame that stops
//!   completing (a byte-dribbling slow loris) or a reply that stops
//!   flushing (a client that never reads) trips the idle/write timeout
//!   and the connection is torn down without ever stalling its
//!   neighbours.
//!
//! The `poll(2)`/`epoll` bindings are the crate's single `unsafe` island:
//! `repr(C)` structs and the foreign calls, all confined to [`sys`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, IoSlice, PipeReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cc_core::obs::{self, Registry};
use cc_server::{ReplyWaker, Request, ServerError, ServiceHandle, TaggedReply};

use crate::codec::{self, Frame};
use crate::error::WireError;
use crate::frame::{self, FrameDecoder};
use crate::server::{ReactorBackend, Telemetry, MAX_CONN_INFLIGHT};

/// The `poll(2)` and `epoll` bindings — the one `unsafe` corner of the
/// crate, kept to `repr(C)` structs and the foreign calls.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_ulong};
    use std::io;
    use std::time::Duration;

    /// `struct pollfd`, bit-for-bit.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub(super) struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub(super) const POLLIN: i16 = 0x001;
    pub(super) const POLLOUT: i16 = 0x004;
    pub(super) const POLLERR: i16 = 0x008;
    pub(super) const POLLHUP: i16 = 0x010;
    pub(super) const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> c_int;
    }

    #[cfg(target_os = "linux")]
    const SOL_SOCKET: c_int = 1;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(target_os = "linux")]
    const SO_SNDBUF: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const SO_SNDBUF: c_int = 0x1001;

    /// Caps a socket's kernel send buffer (`SO_SNDBUF`), switching off
    /// autotuning for it. The kernel rounds and clamps as it pleases.
    pub(super) fn set_send_buffer(fd: c_int, bytes: u32) -> io::Result<()> {
        let val: c_int = c_int::try_from(bytes).unwrap_or(c_int::MAX);
        // SAFETY: plain setsockopt with a c_int-sized option value whose
        // pointer and length describe a live stack local.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                core::ptr::from_ref(&val).cast(),
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Millisecond timeout in the convention `poll` and `epoll_wait`
    /// share: `-1` blocks indefinitely, and a sub-millisecond non-zero
    /// timeout rounds *up* so a near deadline cannot degenerate into a
    /// zero-timeout busy spin.
    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => {
                let mut ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    ms = 1;
                }
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        }
    }

    /// Blocks until some registered fd is ready or `timeout` elapses
    /// (`None` blocks indefinitely). Retries `EINTR` internally.
    pub(super) fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = timeout_ms(timeout);
        loop {
            // SAFETY: `fds` is a valid exclusive slice of `PollFd`, which
            // is layout-identical to the kernel's `struct pollfd`; the
            // call writes only the `revents` fields within the slice.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    /// Edge-triggered delivery: the kernel queues an event on a readiness
    /// *transition* and the consumer must drain to `WouldBlock` — which
    /// the reactor's cached-readiness flags do anyway.
    pub(super) const EPOLLET: u32 = 1 << 31;

    #[cfg(target_os = "linux")]
    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub(super) const EPOLL_CTL_MOD: c_int = 3;

    /// `struct epoll_event`, bit-for-bit. x86-64 is the one ABI where the
    /// kernel packs it (no padding between the 32-bit mask and 64-bit
    /// data); everywhere else natural alignment matches.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// An owned epoll instance: created `CLOEXEC`, closed on drop.
    #[cfg(target_os = "linux")]
    pub(super) struct EpollFd(c_int);

    #[cfg(target_os = "linux")]
    impl EpollFd {
        pub(super) fn new() -> io::Result<Self> {
            // SAFETY: plain syscall taking only a flags word.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollFd(fd))
        }

        /// `epoll_ctl`: add, modify or delete one fd's persistent
        /// registration. `data` rides back verbatim in every event for
        /// the fd — the reactor stores its connection token there.
        pub(super) fn ctl(&self, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` is a live stack local matching the kernel's
            // epoll_event layout; the kernel copies it out during the call.
            let rc = unsafe { epoll_ctl(self.0, op, fd, &mut ev) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        /// Blocks until events arrive or `timeout` elapses, filling `buf`
        /// with at most `buf.len()` ready events — O(ready), however many
        /// fds are registered. Retries `EINTR` internally; same timeout
        /// convention as [`wait`].
        pub(super) fn wait(
            &self,
            buf: &mut [EpollEvent],
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = timeout_ms(timeout);
            let cap = c_int::try_from(buf.len()).unwrap_or(c_int::MAX);
            loop {
                // SAFETY: `buf` is a valid exclusive slice; the kernel
                // writes at most `cap` events into it.
                let rc = unsafe { epoll_wait(self.0, buf.as_mut_ptr(), cap, timeout_ms) };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    impl Drop for EpollFd {
        fn drop(&mut self) {
            // SAFETY: closing the fd this struct exclusively owns.
            unsafe {
                close(self.0);
            }
        }
    }
}

/// How long the reactor waits before re-attempting a parked (shard-queue
/// rejected) submission. Short enough that freed queue slots are taken
/// promptly, long enough not to spin.
const PARK_RETRY_TICK: Duration = Duration::from_millis(10);

/// How long the listener sits with accept readiness ignored after an
/// accept error (fd exhaustion): readiness we cannot consume must not
/// busy-spin the loop.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Per-connection cap on bytes read in one reactor iteration — fairness:
/// a firehose connection cannot monopolize the loop while others wait.
const READ_BUDGET: usize = 1 << 20;

/// Doorbell token in the readiness backend.
const TOKEN_WAKE: u64 = 0;
/// Listener token in the readiness backend (reactor 0 only).
const TOKEN_LISTENER: u64 = 1;
/// Connection ids map to tokens at this offset.
const TOKEN_CONN_BASE: u64 = 2;

/// Ready events fetched per `epoll_wait`. Undelivered events stay queued
/// in the kernel, so a small fixed buffer bounds memory without losing
/// anything.
const EPOLL_BATCH: usize = 256;

/// Most queued frames one `write_vectored` coalesces.
const WRITE_BATCH: usize = 64;

/// Flushed outbound frame buffers recycled per connection. Sixteen covers
/// a full pipelining burst without holding a slow connection's peak
/// allocation forever.
const FRAME_POOL_CAP: usize = 16;

/// One readiness report, backend-agnostic: which registration fired and
/// which directions are now actionable.
#[derive(Clone, Copy, Debug)]
struct Event {
    token: u64,
    readable: bool,
    writable: bool,
    /// Error or hangup: the peer is gone or the fd is broken. Both state
    /// machines are allowed to run (the error surfaces as a read/write
    /// failure) and the connection is torn down if neither can consume it.
    erred: bool,
}

/// The portable oracle: interest kept in a map, the `pollfd` array
/// rebuilt on every wait — O(n) per iteration by design, which is what
/// the epoll backend exists to beat. Retained as the correctness
/// baseline, the non-Linux fallback and the `CC_REACTOR=poll` kill
/// switch.
#[derive(Default)]
struct PollBackend {
    regs: HashMap<u64, (RawFd, bool, bool)>,
    pollfds: Vec<sys::PollFd>,
    tokens: Vec<u64>,
}

/// Edge-triggered `epoll`: every fd registered once with its token in
/// `epoll_event.data`, interest changed only via `EPOLL_CTL_MOD` when a
/// connection's paused/write-pending state flips, readiness fetched as
/// an O(ready) batch.
#[cfg(target_os = "linux")]
struct EpollBackend {
    ep: sys::EpollFd,
    buf: Vec<sys::EpollEvent>,
}

/// The readiness seam both event-loop backends sit behind. The reactor
/// calls `update` only when a connection's desired interest actually
/// changes, so the epoll backend performs zero syscalls for a connection
/// whose state is steady — and the poll backend simply mirrors the mask
/// into its map.
enum Backend {
    Poll(PollBackend),
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
}

impl Backend {
    fn new(kind: ReactorBackend) -> std::io::Result<Backend> {
        match kind {
            #[cfg(target_os = "linux")]
            ReactorBackend::Epoll => Ok(Backend::Epoll(EpollBackend {
                ep: sys::EpollFd::new()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; EPOLL_BATCH],
            })),
            #[cfg(not(target_os = "linux"))]
            ReactorBackend::Epoll => Ok(Backend::Poll(PollBackend::default())),
            ReactorBackend::Poll => Ok(Backend::Poll(PollBackend::default())),
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(read: bool, write: bool) -> u32 {
        let mut mask = sys::EPOLLET;
        if read {
            mask |= sys::EPOLLIN;
        }
        if write {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    /// Installs a new fd with its initial interest.
    fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> std::io::Result<()> {
        match self {
            Backend::Poll(p) => {
                p.regs.insert(token, (fd, read, write));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => {
                e.ep.ctl(sys::EPOLL_CTL_ADD, fd, Self::epoll_mask(read, write), token)
            }
        }
    }

    /// Changes an installed fd's interest. Call only on a real change —
    /// that is the contract that makes the epoll backend O(ready).
    fn update(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> std::io::Result<()> {
        match self {
            Backend::Poll(p) => {
                p.regs.insert(token, (fd, read, write));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => {
                e.ep.ctl(sys::EPOLL_CTL_MOD, fd, Self::epoll_mask(read, write), token)
            }
        }
    }

    /// Removes an fd ahead of closing it.
    fn deregister(&mut self, fd: RawFd, token: u64) {
        match self {
            Backend::Poll(p) => {
                p.regs.remove(&token);
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => {
                let _ = e.ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, token);
            }
        }
    }

    /// Blocks for readiness, replacing `out` with the ready list.
    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> std::io::Result<()> {
        out.clear();
        match self {
            Backend::Poll(p) => {
                p.pollfds.clear();
                p.tokens.clear();
                for (&token, &(fd, read, write)) in &p.regs {
                    let mut events = 0i16;
                    if read {
                        events |= sys::POLLIN;
                    }
                    if write {
                        events |= sys::POLLOUT;
                    }
                    p.pollfds.push(sys::PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    p.tokens.push(token);
                }
                sys::wait(&mut p.pollfds, timeout)?;
                for (pfd, &token) in p.pollfds.iter().zip(&p.tokens) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: pfd.revents & sys::POLLIN != 0,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        erred: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                    });
                }
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => {
                let n = e.ep.wait(&mut e.buf, timeout)?;
                for ev in &e.buf[..n] {
                    // Copy out of the (possibly packed) FFI struct before
                    // taking references to the fields.
                    let (events, data) = (ev.events, ev.data);
                    out.push(Event {
                        token: data,
                        readable: events & sys::EPOLLIN != 0,
                        writable: events & sys::EPOLLOUT != 0,
                        erred: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

/// State shared between the reactor threads and the owning
/// [`NetServer`](crate::NetServer): the shutdown flag plus the config the
/// loops consult every iteration.
pub(crate) struct ReactorShared {
    pub(crate) closed: AtomicBool,
    pub(crate) telemetry: Arc<Telemetry>,
    /// The fleet's metric registry — the source for inline
    /// `Frame::StatsRequest` answers.
    pub(crate) registry: Registry,
    pub(crate) max_frame_bytes: u64,
    pub(crate) write_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) conn_send_buffer: Option<u32>,
}

/// Best-effort `SO_SNDBUF` cap on an accepted socket; refusal is not a
/// reason to drop the connection.
pub(crate) fn cap_send_buffer(stream: &TcpStream, bytes: Option<u32>) {
    if let Some(bytes) = bytes {
        let _ = sys::set_send_buffer(stream.as_raw_fd(), bytes);
    }
}

/// One queued outbound frame: prefix + payload contiguous, with a resume
/// offset for partial sends. `gated` marks reply frames that hold one of
/// the connection's [`MAX_CONN_INFLIGHT`] slots until fully flushed.
struct OutFrame {
    bytes: Vec<u8>,
    sent: usize,
    gated: bool,
    /// [`obs::now`] stamp from when the frame entered the write queue;
    /// recorded into `net.write_ns` when the last byte flushes. Taken for
    /// gated (data reply) frames only, so the histogram's count tracks
    /// served requests — notices and stats replies stay out of it.
    queued_at: Option<Instant>,
}

/// One connection's full state: both state machines plus the accounting
/// that drives readiness interest and teardown deadlines.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: VecDeque<OutFrame>,
    /// A request the fleet rejected with `Overloaded`, held for retry;
    /// while parked the connection does not read (backpressure).
    parked: Option<(u64, Request)>,
    /// Requests submitted to the fleet whose replies have not come back.
    in_fleet: usize,
    /// Requests submitted whose replies have not *fully flushed* — the
    /// reactor's analogue of the threaded backend's `InflightGate`; at
    /// [`MAX_CONN_INFLIGHT`] the connection stops reading.
    gate: usize,
    /// No more bytes will be read: client EOF, read error, protocol
    /// error, or server drain.
    eof: bool,
    /// Torn down (write failure, backend error, deadline); removed at the
    /// next attention pass, dropping anything still queued.
    dead: bool,
    /// Since when a partial frame has been pending while we were willing
    /// to read — the slow-loris clock. Armed when a partial appears, *not*
    /// refreshed by dribbled bytes, cleared by every completed frame.
    partial_since: Option<Instant>,
    /// Since when the write queue has been non-empty without a completed
    /// frame flush — the never-reads clock.
    out_since: Option<Instant>,
    /// Cached read readiness. Under edge-triggered epoll an event is the
    /// only notification we get, so readiness must be remembered across
    /// iterations (a read budget breakout, a backpressure pause) and
    /// cleared only by `WouldBlock`.
    read_ready: bool,
    /// Cached write readiness; cleared by `WouldBlock`, restored by a
    /// writable event or a full drain.
    write_ready: bool,
    /// An error/hangup event was seen; sticky. If neither state machine
    /// can consume it (paused read, empty write queue), teardown.
    hangup: bool,
    /// Last interest mask installed in the backend: `(read, write)`. The
    /// loop issues `Backend::update` only when the desired mask differs.
    interest: (bool, bool),
    /// Flushed outbound frame buffers, recycled through
    /// [`frame::frame_into`] — after one warm-up burst the reply path
    /// allocates nothing.
    pool: Vec<Vec<u8>>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: VecDeque::new(),
            parked: None,
            in_fleet: 0,
            gate: 0,
            eof: false,
            dead: false,
            partial_since: None,
            out_since: None,
            read_ready: false,
            write_ready: true,
            hangup: false,
            interest: (true, false),
            pool: Vec::new(),
        }
    }

    /// Whether the reactor wants read readiness for this connection —
    /// false exactly when backpressure applies (parked submission or
    /// in-flight cap) or no more input can come.
    fn wants_read(&self) -> bool {
        !self.eof && self.parked.is_none() && self.gate < MAX_CONN_INFLIGHT
    }

    /// Fully served: nothing left to read, retry, answer or flush.
    fn done(&self) -> bool {
        self.eof && self.parked.is_none() && self.in_fleet == 0 && self.out.is_empty()
    }

    /// Re-derives the slow-loris clock. Keeps an armed clock armed (byte
    /// dribbles do not refresh it); [`Ctx::parse`] clears it whenever a
    /// frame completes, so only a *stuck* partial accumulates time.
    fn update_partial(&mut self, now: Instant) {
        let pending = self.wants_read() && self.decoder.has_partial_frame();
        self.partial_since = match (pending, self.partial_since) {
            (false, _) => None,
            (true, None) => Some(now),
            (true, since) => since,
        };
    }

    /// Server drain: stop reading, discard any undelivered input (the
    /// threaded backend's half-close discards the same bytes in the
    /// kernel), keep everything owed flowing out.
    fn begin_drain(&mut self) {
        self.eof = true;
        self.read_ready = false;
        self.decoder.clear();
        self.partial_since = None;
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    /// Queues one outbound frame — built into a recycled buffer — and
    /// flushes eagerly when the socket last looked writable: in the
    /// common case the frame leaves in this call and the queue never
    /// grows.
    fn push_payload(&mut self, payload: &[u8], gated: bool, telemetry: &Telemetry, now: Instant) {
        if self.dead {
            return;
        }
        let mut bytes = self.pool.pop().unwrap_or_default();
        frame::frame_into(&mut bytes, payload);
        if self.out.is_empty() {
            self.out_since = Some(now);
        }
        self.out.push_back(OutFrame {
            bytes,
            sent: 0,
            gated,
            queued_at: if gated { obs::now() } else { None },
        });
        if self.write_ready {
            self.flush(telemetry, now);
        }
    }

    /// The write state machine: drains the queue front-first with one
    /// `write_vectored` per pass — pipelined replies coalesce into a
    /// single syscall — resuming partial sends, until empty or
    /// `WouldBlock`. Frame completion is the unit of accounting:
    /// `frames_out`, gate slots, the never-reads clock and buffer
    /// recycling all advance only when a whole frame has left.
    fn flush(&mut self, telemetry: &Telemetry, now: Instant) {
        while !self.out.is_empty() {
            let written = {
                let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(self.out.len().min(WRITE_BATCH));
                let mut frames = self.out.iter();
                let front = frames.next().expect("queue is non-empty");
                iov.push(IoSlice::new(&front.bytes[front.sent..]));
                for frame in frames.take(WRITE_BATCH - 1) {
                    iov.push(IoSlice::new(&frame.bytes));
                }
                self.stream.write_vectored(&iov)
            };
            match written {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(mut wrote) => {
                    while wrote > 0 {
                        let front = self.out.front_mut().expect("written bytes imply a frame");
                        let remaining = front.bytes.len() - front.sent;
                        if wrote < remaining {
                            front.sent += wrote;
                            break;
                        }
                        wrote -= remaining;
                        let sent = self.out.pop_front().expect("front exists");
                        telemetry.frames_out.incr();
                        if sent.gated {
                            self.gate -= 1;
                            telemetry.write_ns.record_elapsed(sent.queued_at);
                        }
                        self.out_since = if self.out.is_empty() { None } else { Some(now) };
                        self.recycle(sent.bytes);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.write_ready = false;
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.write_ready = true;
    }

    /// Returns a flushed frame buffer to the connection's pool.
    fn recycle(&mut self, mut bytes: Vec<u8>) {
        if self.pool.len() < FRAME_POOL_CAP {
            bytes.clear();
            self.pool.push(bytes);
        }
    }
}

/// Everything the per-connection handlers need besides the connection
/// itself — split from the conn map so the borrow checker lets one
/// connection be serviced while the context stays mutable.
struct Ctx {
    handle: ServiceHandle,
    shared: Arc<ReactorShared>,
    reply_tx: Sender<TaggedReply>,
    reply_rx: Receiver<TaggedReply>,
    waker: ReplyWaker,
    wake_pending: Arc<AtomicBool>,
    /// Fleet tag → (connection, client-chosen wire id). The indirection
    /// exists because wire ids are client-chosen and collide across
    /// connections; fleet tags must not.
    tokens: HashMap<u64, (u64, u64)>,
    next_token: u64,
    /// Connections needing servicing this iteration: cached readiness,
    /// parked submissions, armed deadline clocks. Everything *not* in
    /// here costs zero per loop — the invariant that keeps thousands of
    /// idle connections free.
    attention: HashSet<u64>,
}

impl Ctx {
    /// The read state machine's pump: fill from the socket until it would
    /// block (or the fairness budget is spent), parsing as bytes land so
    /// backpressure pauses the fill mid-stream. `WouldBlock` — and only
    /// `WouldBlock` — clears the cached read readiness, which is what
    /// edge-triggered delivery requires.
    fn fill_and_parse(&mut self, conn_id: u64, conn: &mut Conn, now: Instant) {
        let mut budget = READ_BUDGET;
        while conn.wants_read() {
            match conn.decoder.fill_from(&mut conn.stream) {
                Ok(0) => {
                    conn.eof = true;
                    conn.read_ready = false;
                    break;
                }
                Ok(n) => {
                    self.parse(conn_id, conn, now);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        // Budget spent with the socket still readable:
                        // read_ready stays set, the attention set re-runs
                        // us next iteration.
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.read_ready = false;
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transport failure: no more input; what was already
                    // buffered mid-frame is garbage.
                    conn.eof = true;
                    conn.read_ready = false;
                    conn.decoder.clear();
                    break;
                }
            }
        }
        self.parse(conn_id, conn, now);
    }

    /// Slices and dispatches every complete buffered frame, stopping at
    /// backpressure (parked submission / in-flight cap) or the first
    /// protocol error. Mirrors the threaded reader's dispatch, including
    /// its telemetry points.
    fn parse(&mut self, conn_id: u64, conn: &mut Conn, now: Instant) {
        let mut progressed = false;
        while !conn.dead && conn.parked.is_none() && conn.gate < MAX_CONN_INFLIGHT {
            match conn.decoder.next_frame(self.shared.max_frame_bytes) {
                Ok(None) => break,
                Ok(Some(range)) => {
                    progressed = true;
                    let decode_started = obs::now();
                    match codec::decode_frame(conn.decoder.payload(range.clone())) {
                        Ok(Frame::Request { id, request }) => {
                            self.shared
                                .telemetry
                                .decode_ns
                                .record_elapsed(decode_started);
                            self.shared.telemetry.frames_in.incr();
                            self.submit(conn_id, conn, id, request, now);
                        }
                        Ok(Frame::StatsRequest { id }) => {
                            // Answered inline from the registry — a stats
                            // probe never enters the fleet queues, takes no
                            // gate slot, and its reply stays out of
                            // `net.write_ns` (count parity with served data
                            // requests).
                            self.shared.telemetry.frames_in.incr();
                            let payload =
                                codec::encode_stats_reply(id, &self.shared.registry.snapshot());
                            conn.push_payload(&payload, false, &self.shared.telemetry, now);
                        }
                        Ok(
                            Frame::Reply { id, .. }
                            | Frame::ProtocolError { id, .. }
                            | Frame::StatsReply { id, .. },
                        ) => {
                            self.protocol_error(
                                conn,
                                id,
                                WireError::malformed("clients may send only request frames"),
                                now,
                            );
                            break;
                        }
                        Err(e) => {
                            // The header (and its request id) may have
                            // parsed even though the body did not.
                            let notice_id =
                                codec::peek_request_id(conn.decoder.payload(range)).unwrap_or(0);
                            self.protocol_error(conn, notice_id, e, now);
                            break;
                        }
                    }
                }
                Err(e) => {
                    // Oversized length prefix: protocol error, reported
                    // before any allocation happened.
                    self.protocol_error(conn, 0, e, now);
                    break;
                }
            }
        }
        if progressed {
            // A completed frame resets the slow-loris clock; update_partial
            // re-arms it only if a *new* partial is already pending.
            conn.partial_since = None;
        }
        if conn.eof && conn.parked.is_none() && conn.gate < MAX_CONN_INFLIGHT {
            // Everything decodable has been dispatched; a partial tail at
            // EOF is discarded, exactly like the blocking reader's
            // disconnected exit.
            conn.decoder.clear();
        }
        conn.update_partial(now);
    }

    /// Submits one decoded request into the fleet under a fresh token.
    /// `Overloaded` parks the request (read-pausing backpressure); other
    /// rejections are answered inline so a pipelining client is never
    /// left waiting.
    fn submit(
        &mut self,
        conn_id: u64,
        conn: &mut Conn,
        wire_id: u64,
        request: Request,
        now: Instant,
    ) {
        let token = self.next_token;
        match self
            .handle
            .try_submit_tagged_with_waker(token, request, &self.reply_tx, &self.waker)
        {
            Ok(()) => {
                self.next_token += 1;
                self.tokens.insert(token, (conn_id, wire_id));
                conn.in_fleet += 1;
                conn.gate += 1;
            }
            Err((ServerError::Overloaded, request)) => {
                conn.parked = Some((wire_id, request));
            }
            Err((e, _)) => {
                let payload = codec::encode_reply(wire_id, &Err(e));
                conn.push_payload(&payload, false, &self.shared.telemetry, now);
            }
        }
    }

    /// Reports undecodable input with a `PROTO_ERR` notice and closes the
    /// read side — after a framing error there is no resync point. The
    /// notice and every still-owed reply drain through the write queue.
    fn protocol_error(&mut self, conn: &mut Conn, notice_id: u64, error: WireError, now: Instant) {
        self.shared.telemetry.protocol_errors.incr();
        conn.eof = true;
        conn.read_ready = false;
        conn.decoder.clear();
        conn.partial_since = None;
        let _ = conn.stream.shutdown(Shutdown::Read);
        let payload = codec::encode_protocol_error(notice_id, &error);
        conn.push_payload(&payload, false, &self.shared.telemetry, now);
    }
}

/// Another reactor as seen by the accepting one: where to hand a fresh
/// socket, how to ring its doorbell, and how loaded it currently is.
struct Peer {
    inject: Sender<TcpStream>,
    waker: ReplyWaker,
    load: Arc<AtomicUsize>,
}

/// What must happen before the next blocking wait, accumulated over one
/// attention pass.
#[derive(Default)]
struct Wake {
    /// Earliest scheduled instant: a parked retry, a deadline, a backoff.
    deadline: Option<Instant>,
    /// Actionable readiness is still cached (read budget breakout, listener
    /// not yet drained): wait with a zero timeout, service, repeat.
    immediate: bool,
}

/// One reactor: its readiness backend, its connection table, its doorbell
/// and its slice of the accept load. Runs [`Reactor::run`] on its own
/// thread until drained.
struct Reactor {
    /// Reactor 0 owns the listener; the rest serve only injected sockets.
    listener: Option<TcpListener>,
    wake_rx: PipeReader,
    backend: Backend,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    accept_backoff: Option<Instant>,
    /// Cached listener readiness — edge-triggered delivery means an
    /// un-drained accept queue must be remembered, not re-reported.
    listener_ready: bool,
    events: Vec<Event>,
    /// Scratch for one drained attention set.
    scratch: Vec<u64>,
    /// Sockets handed over by the accepting reactor.
    inject_rx: Receiver<TcpStream>,
    /// The inject channel's senders are gone (drain has begun everywhere);
    /// no more sockets can arrive.
    inject_done: bool,
    /// All reactors (self included at index 0), held by the accepting
    /// reactor only; cleared at drain so the inject channels disconnect.
    peers: Vec<Peer>,
    /// This reactor's live-connection gauge, shared with the acceptor's
    /// `peers` entry for least-connections placement.
    load: Arc<AtomicUsize>,
    ctx: Ctx,
}

/// Keeps the earlier of an optional deadline and a new candidate.
fn earlier(best: Option<Instant>, candidate: Instant) -> Option<Instant> {
    match best {
        Some(b) if b <= candidate => Some(b),
        _ => Some(candidate),
    }
}

impl Reactor {
    /// The loop. One iteration: adopt handed-over sockets, service the
    /// attention set (cached readiness, parked retries, deadline clocks,
    /// interest-mask sync, teardown), park in the backend's wait, then
    /// apply the ready events — the reply doorbell, the listener and the
    /// flagged connections.
    fn run(mut self) {
        let shared = Arc::clone(&self.ctx.shared);
        let mut draining = false;
        // Armed after each readiness wait returns; the span recorded into
        // `net.reactor.loop_ns` is therefore exactly the non-blocked work
        // between two waits — never the parked time inside one.
        let mut iter_started: Option<Instant> = None;
        loop {
            if !draining && self.ctx.shared.closed.load(Ordering::Acquire) {
                draining = true;
                if let Some(listener) = self.listener.take() {
                    self.backend
                        .deregister(listener.as_raw_fd(), TOKEN_LISTENER);
                }
                self.listener_ready = false;
                // Dropping the peer senders disconnects every inject
                // channel: each reactor can then prove no more sockets
                // are coming and exit when its own table drains. The
                // doorbell ring must come strictly *after* the drop — a
                // peer that checked its channel between our drop and its
                // ring would otherwise see `Empty`, park unbounded, and
                // never learn the channel died (channel disconnection by
                // itself wakes nobody).
                for peer in self.peers.drain(..) {
                    drop(peer.inject);
                    (peer.waker)();
                }
                let Reactor { conns, ctx, .. } = &mut self;
                for (&id, conn) in conns.iter_mut() {
                    conn.begin_drain();
                    ctx.attention.insert(id);
                }
            }
            self.adopt_injected(draining);
            let now = Instant::now();
            let mut wake = Wake::default();
            self.process_attention(now, &mut wake);
            if draining && self.conns.is_empty() && self.inject_done {
                return;
            }
            if self.listener_ready {
                match self.accept_backoff {
                    Some(until) => wake.deadline = earlier(wake.deadline, until),
                    None => wake.immediate = true,
                }
            }
            if draining && !self.inject_done {
                // Safety net over the ring-after-drop handshake above:
                // while the inject channel could still disconnect, poll it
                // on a tick rather than trusting any single wakeup.
                wake.deadline = earlier(wake.deadline, now + PARK_RETRY_TICK);
            }
            let timeout = if wake.immediate {
                Some(Duration::ZERO)
            } else {
                wake.deadline.map(|t| t.saturating_duration_since(now))
            };
            shared
                .telemetry
                .reactor_loop_ns
                .record_elapsed(iter_started.take());
            match self.backend {
                Backend::Poll(_) => shared.telemetry.reactor_polls_poll.incr(),
                #[cfg(target_os = "linux")]
                Backend::Epoll(_) => shared.telemetry.reactor_polls_epoll.incr(),
            }
            if self.backend.wait(timeout, &mut self.events).is_err() {
                // The wait itself failing (ENOMEM) is transient; yield
                // rather than spin.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            iter_started = obs::now();
            shared.telemetry.reactor_wakeups.incr();
            shared
                .telemetry
                .reactor_ready_set
                .record(self.events.len() as u64);
            let now = Instant::now();
            self.apply_events();
            // Clear-then-drain: a reply landing after the drain below
            // finds the flag clear, rings a fresh byte, and the next wait
            // returns immediately — no lost wake-ups.
            self.ctx.wake_pending.store(false, Ordering::SeqCst);
            self.drain_replies(now);
            self.maybe_accept(now);
        }
    }

    /// Folds the backend's ready list into per-connection cached
    /// readiness and the attention set — O(ready), the whole point.
    fn apply_events(&mut self) {
        let events = std::mem::take(&mut self.events);
        for ev in &events {
            match ev.token {
                TOKEN_WAKE => {
                    let mut sink = [0u8; 64];
                    let _ = self.wake_rx.read(&mut sink);
                }
                TOKEN_LISTENER => self.listener_ready = true,
                token => {
                    let id = token - TOKEN_CONN_BASE;
                    if let Some(conn) = self.conns.get_mut(&id) {
                        if ev.readable {
                            conn.read_ready = true;
                        }
                        if ev.writable {
                            conn.write_ready = true;
                        }
                        if ev.erred {
                            // Let both state machines run: the failure
                            // surfaces as a read/write error, or as an
                            // unconsumable hangup at the attention pass.
                            conn.read_ready = true;
                            conn.write_ready = true;
                            conn.hangup = true;
                        }
                        self.ctx.attention.insert(id);
                    }
                }
            }
        }
        self.events = events;
    }

    /// Services every connection in the attention set: the read pump, the
    /// write drain, parked retries, freed-gate re-parsing, deadline
    /// clocks, teardown and interest-mask sync. Connections that remain
    /// interesting (armed clocks, leftover readiness) re-enter the set;
    /// everything else costs nothing until its next event.
    fn process_attention(&mut self, now: Instant, wake: &mut Wake) {
        let Reactor {
            conns,
            ctx,
            backend,
            load,
            scratch,
            ..
        } = self;
        let idle = ctx.shared.idle_timeout;
        let write = ctx.shared.write_timeout;
        scratch.clear();
        scratch.extend(ctx.attention.drain());
        for &id in scratch.iter() {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if !conn.dead {
                if conn.read_ready && conn.wants_read() {
                    ctx.fill_and_parse(id, conn, now);
                }
                if conn.write_ready && !conn.out.is_empty() && !conn.dead {
                    conn.flush(&ctx.shared.telemetry, now);
                }
                if !conn.dead {
                    if let Some((wire_id, request)) = conn.parked.take() {
                        // The advisory capacity check skips futile tries; a
                        // lost race against another handle simply re-parks.
                        if ctx.handle.has_capacity_for(request.n()) {
                            ctx.submit(id, conn, wire_id, request, now);
                        } else {
                            conn.parked = Some((wire_id, request));
                        }
                    }
                }
                if !conn.dead && conn.wants_read() && conn.decoder.buffered() > 0 {
                    // Parse input unblocked by freed gate slots or
                    // un-parking.
                    ctx.parse(id, conn, now);
                }
                conn.update_partial(now);
                let read_stalled = conn
                    .partial_since
                    .is_some_and(|t| now.duration_since(t) >= idle);
                let write_stalled = conn
                    .out_since
                    .is_some_and(|t| now.duration_since(t) >= write);
                if !conn.dead && (read_stalled || write_stalled) {
                    conn.dead = true;
                    ctx.shared.telemetry.idle_teardowns.incr();
                }
                if !conn.dead
                    && conn.hangup
                    && !conn.wants_read()
                    && conn.out.is_empty()
                    && !conn.done()
                {
                    // An error on a fully paused connection: neither state
                    // machine can consume it. The peer is gone; tear down.
                    conn.dead = true;
                }
            }
            if conn.dead || conn.done() {
                let conn = conns.remove(&id).expect("present: just serviced");
                backend.deregister(conn.stream.as_raw_fd(), id + TOKEN_CONN_BASE);
                load.fetch_sub(1, Ordering::Relaxed);
                if conn.dead {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
                // A graceful close: everything owed was flushed; dropping
                // the stream sends FIN.
                continue;
            }
            let desired = (conn.wants_read(), !conn.out.is_empty());
            if desired != conn.interest {
                if desired.0 && !conn.interest.0 {
                    // Re-enabling read interest: bytes may have landed
                    // while we were paused without IN in the mask, so
                    // force one speculative read rather than rely on the
                    // backend re-reporting.
                    conn.read_ready = true;
                }
                if backend
                    .update(
                        conn.stream.as_raw_fd(),
                        id + TOKEN_CONN_BASE,
                        desired.0,
                        desired.1,
                    )
                    .is_err()
                {
                    conn.dead = true;
                    ctx.attention.insert(id);
                    continue;
                }
                conn.interest = desired;
            }
            // Reschedule: anything still interesting re-enters the set.
            let mut keep = false;
            if conn.parked.is_some() {
                wake.deadline = earlier(wake.deadline, now + PARK_RETRY_TICK);
                keep = true;
            }
            if let Some(t) = conn.partial_since {
                wake.deadline = earlier(wake.deadline, t + idle);
                keep = true;
            }
            if let Some(t) = conn.out_since {
                wake.deadline = earlier(wake.deadline, t + write);
                keep = true;
            }
            if conn.read_ready && conn.wants_read() {
                wake.immediate = true;
                keep = true;
            }
            if keep {
                ctx.attention.insert(id);
            }
        }
    }

    /// Routes each completed reply to its connection's write queue via
    /// the token map. Tokens of connections torn down in the meantime
    /// resolve to nothing and the reply is dropped, exactly as the
    /// threaded writer drops replies for a vanished client.
    fn drain_replies(&mut self, now: Instant) {
        let Reactor { conns, ctx, .. } = self;
        while let Ok(reply) = ctx.reply_rx.try_recv() {
            let Some((conn_id, wire_id)) = ctx.tokens.remove(&reply.id) else {
                continue;
            };
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue;
            };
            conn.in_fleet -= 1;
            ctx.attention.insert(conn_id);
            if conn.dead {
                continue;
            }
            let payload = codec::encode_reply(wire_id, &reply.result.map_err(ServerError::Query));
            conn.push_payload(&payload, true, &ctx.shared.telemetry, now);
        }
    }

    /// Drains the inject channel: sockets the accepting reactor dealt to
    /// this one. Under drain a fresh socket is adopted straight into the
    /// draining state. A disconnected channel proves no more handoffs can
    /// ever arrive — one leg of the drain exit condition.
    fn adopt_injected(&mut self, draining: bool) {
        if self.inject_done {
            return;
        }
        loop {
            match self.inject_rx.try_recv() {
                Ok(stream) => {
                    // The acceptor already counted this handoff into our
                    // load gauge.
                    self.ctx.shared.telemetry.reactor_injected.incr();
                    self.ctx.shared.telemetry.reactor_inject_depth.add(-1);
                    let id = self.next_conn;
                    if self.insert_conn(stream) {
                        if draining {
                            if let Some(conn) = self.conns.get_mut(&id) {
                                conn.begin_drain();
                            }
                            self.ctx.attention.insert(id);
                        }
                    } else {
                        self.load.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.inject_done = true;
                    return;
                }
            }
        }
    }

    /// Accepts until the listener would block, placing each socket on the
    /// least-loaded reactor. Accept errors (fd exhaustion) put the
    /// listener on a short backoff — with its read interest dropped, so
    /// the un-drained accept queue cannot busy-spin a level-triggered
    /// backend — instead of spinning.
    fn maybe_accept(&mut self, now: Instant) {
        if !self.listener_ready || self.listener.is_none() {
            return;
        }
        if let Some(until) = self.accept_backoff {
            if now < until {
                return;
            }
            self.accept_backoff = None;
            if let Some(listener) = &self.listener {
                let _ = self
                    .backend
                    .update(listener.as_raw_fd(), TOKEN_LISTENER, true, false);
            }
        }
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            let accepted = listener.accept();
            match accepted {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // One frame per reply; Nagle would delay them.
                    let _ = stream.set_nodelay(true);
                    cap_send_buffer(&stream, self.ctx.shared.conn_send_buffer);
                    self.ctx.shared.telemetry.connections.incr();
                    self.place(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.listener_ready = false;
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.accept_backoff = Some(now + ACCEPT_BACKOFF);
                    if let Some(listener) = &self.listener {
                        let _ =
                            self.backend
                                .update(listener.as_raw_fd(), TOKEN_LISTENER, false, false);
                    }
                    return;
                }
            }
        }
    }

    /// Deals one accepted socket to the least-loaded reactor — itself
    /// included. A handoff bumps the target's load gauge immediately (the
    /// owner decrements at removal) and rings its doorbell so the socket
    /// is adopted within one wait.
    fn place(&mut self, stream: TcpStream) {
        let target = if self.peers.len() > 1 {
            (0..self.peers.len())
                .min_by_key(|&i| self.peers[i].load.load(Ordering::Relaxed))
                .unwrap_or(0)
        } else {
            0
        };
        if target == 0 {
            if self.insert_conn(stream) {
                self.load.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let peer = &self.peers[target];
            peer.load.fetch_add(1, Ordering::Relaxed);
            if peer.inject.send(stream).is_ok() {
                self.ctx.shared.telemetry.reactor_inject_depth.add(1);
                (peer.waker)();
            } else {
                peer.load.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Installs one socket into this reactor's table and backend. Failure
    /// (backend registration refused) drops the socket; the client sees a
    /// reset and the connection is never serviced.
    fn insert_conn(&mut self, stream: TcpStream) -> bool {
        let id = self.next_conn;
        let conn = Conn::new(stream);
        if self
            .backend
            .register(
                conn.stream.as_raw_fd(),
                id + TOKEN_CONN_BASE,
                conn.wants_read(),
                false,
            )
            .is_err()
        {
            return false;
        }
        self.next_conn += 1;
        self.conns.insert(id, conn);
        true
    }
}

/// Builds `reactors` event loops over `listener` — per-reactor doorbells,
/// reply channels and readiness backends, with reactor 0 owning the
/// listener and dealing accepted sockets least-connections across the
/// fleet — and spawns their threads. Returns the join handles and the
/// wakers — ringing every waker after setting `shared.closed` is how
/// shutdown gets the loops' attention.
pub(crate) fn spawn(
    listener: TcpListener,
    handle: ServiceHandle,
    shared: Arc<ReactorShared>,
    backend: ReactorBackend,
    reactors: usize,
) -> std::io::Result<(Vec<JoinHandle<()>>, Vec<ReplyWaker>)> {
    let reactors = reactors.max(1);
    struct Plumbing {
        wake_rx: PipeReader,
        wake_pending: Arc<AtomicBool>,
        waker: ReplyWaker,
        inject_rx: Receiver<TcpStream>,
        load: Arc<AtomicUsize>,
    }
    let mut slots = Vec::with_capacity(reactors);
    let mut peers = Vec::with_capacity(reactors);
    let mut wakers = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        let (wake_rx, wake_tx) = std::io::pipe()?;
        let wake_pending = Arc::new(AtomicBool::new(false));
        let waker: ReplyWaker = {
            let pending = Arc::clone(&wake_pending);
            Arc::new(move || {
                // Coalesced doorbell: only the ring that flips the flag
                // writes a byte, so the pipe can never fill no matter how
                // many shard workers complete at once.
                if !pending.swap(true, Ordering::SeqCst) {
                    let _ = (&wake_tx).write(&[1u8]);
                }
            })
        };
        let (inject_tx, inject_rx) = channel();
        let load = Arc::new(AtomicUsize::new(0));
        peers.push(Peer {
            inject: inject_tx,
            waker: Arc::clone(&waker),
            load: Arc::clone(&load),
        });
        wakers.push(Arc::clone(&waker));
        slots.push(Plumbing {
            wake_rx,
            wake_pending,
            waker,
            inject_rx,
            load,
        });
    }
    let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(reactors);
    let mut listener = Some(listener);
    let mut peers = Some(peers);
    let mut build = || -> std::io::Result<()> {
        for (i, slot) in slots.drain(..).enumerate() {
            let mut be = Backend::new(backend)?;
            be.register(slot.wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
            let own_listener = if i == 0 { listener.take() } else { None };
            if let Some(l) = &own_listener {
                be.register(l.as_raw_fd(), TOKEN_LISTENER, true, false)?;
            }
            let (reply_tx, reply_rx) = channel();
            let reactor = Reactor {
                listener: own_listener,
                wake_rx: slot.wake_rx,
                backend: be,
                conns: HashMap::new(),
                next_conn: 0,
                accept_backoff: None,
                listener_ready: false,
                events: Vec::new(),
                scratch: Vec::new(),
                inject_rx: slot.inject_rx,
                inject_done: false,
                peers: if i == 0 {
                    peers.take().expect("peers handed to reactor 0 once")
                } else {
                    Vec::new()
                },
                load: slot.load,
                ctx: Ctx {
                    handle: handle.clone(),
                    shared: Arc::clone(&shared),
                    reply_tx,
                    reply_rx,
                    waker: slot.waker,
                    wake_pending: slot.wake_pending,
                    tokens: HashMap::new(),
                    next_token: 0,
                    attention: HashSet::new(),
                },
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cc-net-reactor-{i}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(())
    };
    match build() {
        Ok(()) => Ok((threads, wakers)),
        Err(e) => {
            // A partial fleet must not leak parked threads: flag the
            // drain, ring every doorbell, join what started.
            shared.closed.store(true, Ordering::Release);
            for waker in &wakers {
                waker();
            }
            for thread in threads {
                let _ = thread.join();
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use std::net::TcpListener;

    /// A nonblocking server-side `Conn` wired to a blocking client
    /// socket, for driving the write state machine directly.
    fn conn_pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        (Conn::new(server), client)
    }

    #[test]
    fn vectored_flush_sends_pipelined_frames_bit_identical() {
        let (mut conn, mut client) = conn_pair();
        let telemetry = Telemetry::default();
        let now = Instant::now();
        let payloads: Vec<Vec<u8>> = (0u8..5)
            .map(|i| vec![i; 100 * (usize::from(i) + 1)])
            .collect();
        // Queue everything with the socket marked un-writable so nothing
        // leaves early, then restore readiness: the whole pipeline must
        // drain through a single vectored flush pass.
        conn.write_ready = false;
        for payload in &payloads {
            conn.push_payload(payload, false, &telemetry, now);
        }
        assert_eq!(conn.out.len(), payloads.len());
        conn.write_ready = true;
        conn.flush(&telemetry, now);
        assert!(
            conn.out.is_empty(),
            "loopback buffer fits five small frames"
        );
        assert_eq!(telemetry.frames_out.get(), 5);
        for payload in &payloads {
            let got = read_frame(&mut client, u64::MAX)
                .expect("read frame")
                .expect("frame present");
            assert_eq!(&got, payload, "pipelined frame arrived bit-identical");
        }
    }

    #[test]
    fn flush_resumes_partial_frames_across_vectored_writes() {
        let (mut conn, mut client) = conn_pair();
        let telemetry = Telemetry::default();
        let now = Instant::now();
        // Big enough that the kernel socket buffer cannot take it all in
        // one write: the vectored path must resume mid-frame.
        let payloads: Vec<Vec<u8>> = (0u8..4).map(|i| vec![i ^ 0x5a; 1 << 20]).collect();
        conn.write_ready = false;
        for payload in &payloads {
            conn.push_payload(payload, false, &telemetry, now);
        }
        conn.write_ready = true;
        client.set_nonblocking(false).expect("blocking client");
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(Some(frame)) = read_frame(&mut client, u64::MAX) {
                got.push(frame);
                if got.len() == 4 {
                    break;
                }
            }
            got
        });
        while !conn.out.is_empty() {
            conn.flush(&telemetry, now);
            if !conn.write_ready {
                // Kernel buffer full: let the reader drain a little.
                std::thread::sleep(Duration::from_millis(1));
                conn.write_ready = true;
            }
        }
        let got = reader.join().expect("reader thread");
        assert_eq!(got, payloads, "partial-resume kept every byte in order");
        assert_eq!(telemetry.frames_out.get(), 4);
    }

    #[test]
    fn reply_buffers_recycle_without_reallocating_after_warm_up() {
        let (mut conn, mut client) = conn_pair();
        let telemetry = Telemetry::default();
        let now = Instant::now();
        let payload = vec![0xabu8; 512];
        // Warm-up: the first reply allocates its frame buffer, flushes,
        // and parks the buffer in the pool.
        conn.push_payload(&payload, false, &telemetry, now);
        assert!(conn.out.is_empty(), "loopback flush completes inline");
        assert_eq!(conn.pool.len(), 1, "flushed buffer was recycled");
        let warm_ptr = conn.pool[0].as_ptr();
        let warm_cap = conn.pool[0].capacity();
        for _ in 0..32 {
            conn.push_payload(&payload, false, &telemetry, now);
            assert_eq!(conn.pool.len(), 1, "steady state reuses one buffer");
            assert_eq!(
                conn.pool[0].as_ptr(),
                warm_ptr,
                "same allocation recycled on every reply"
            );
            assert_eq!(conn.pool[0].capacity(), warm_cap, "no reallocation");
        }
        // The bytes that arrived are still well-formed frames.
        client.set_nonblocking(false).expect("blocking client");
        for _ in 0..33 {
            let got = read_frame(&mut client, u64::MAX)
                .expect("read frame")
                .expect("frame present");
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn pool_is_bounded() {
        let (mut conn, _client) = conn_pair();
        for _ in 0..(FRAME_POOL_CAP * 2) {
            conn.recycle(Vec::with_capacity(64));
        }
        assert_eq!(conn.pool.len(), FRAME_POOL_CAP);
    }
}
