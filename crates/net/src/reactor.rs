//! The event-driven serving core: one thread, one `poll(2)` loop, every
//! connection.
//!
//! The thread-per-connection backend spends two OS threads and a blocking
//! reply channel per socket. This module replaces all of that with a
//! single **reactor** thread multiplexing every accepted socket through
//! readiness notifications:
//!
//! * all sockets are **non-blocking**; the reactor never parks inside a
//!   read, write, accept or fleet submission — the only place it blocks
//!   is one `poll(2)` call over every fd it owns, so an idle server is
//!   exactly one parked thread (plus the shard workers parked on their
//!   queues);
//! * each connection is a pair of **state machines**: the read side
//!   accumulates partial frames in a reusable [`FrameDecoder`] buffer,
//!   the write side drains a queue of [`OutFrame`]s that resume mid-frame
//!   after `WouldBlock`;
//! * fleet replies arrive on **one shared [`TaggedReply`] channel** (the
//!   `submit_tagged` fan-in), announced by a [`ReplyWaker`] that writes a
//!   byte to a self-pipe whose read end sits in the poll set — an mpsc
//!   channel is invisible to `poll(2)`, the pipe is its doorbell. An
//!   [`AtomicBool`] coalesces rings so the pipe holds at most one unread
//!   byte no matter how many shards complete at once;
//! * **backpressure is read-pausing**: a connection past its in-flight
//!   cap, or whose submission bounced off a full shard queue (the request
//!   is *parked*, not dropped), simply loses read interest — TCP flow
//!   control pushes back on the client, and no reactor state grows;
//! * **slow peers are evicted on deadlines**: a partial frame that stops
//!   completing (a byte-dribbling slow loris) or a reply that stops
//!   flushing (a client that never reads) trips the idle/write timeout
//!   and the connection is torn down without ever stalling its
//!   neighbours.
//!
//! The `poll(2)` binding is the crate's single `unsafe` island: a
//! `repr(C)` pollfd and one FFI call, both confined to [`sys`].

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, PipeReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cc_server::{ReplyWaker, Request, ServerError, ServiceHandle, TaggedReply};

use crate::codec::{self, Frame};
use crate::error::WireError;
use crate::frame::{self, FrameDecoder};
use crate::server::{Telemetry, MAX_CONN_INFLIGHT};

/// The `poll(2)` binding — the one `unsafe` corner of the crate, kept to
/// a `repr(C)` struct and a single foreign call.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_ulong};
    use std::io;
    use std::time::Duration;

    /// `struct pollfd`, bit-for-bit.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub(super) struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub(super) const POLLIN: i16 = 0x001;
    pub(super) const POLLOUT: i16 = 0x004;
    pub(super) const POLLERR: i16 = 0x008;
    pub(super) const POLLHUP: i16 = 0x010;
    pub(super) const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> c_int;
    }

    #[cfg(target_os = "linux")]
    const SOL_SOCKET: c_int = 1;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(target_os = "linux")]
    const SO_SNDBUF: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const SO_SNDBUF: c_int = 0x1001;

    /// Caps a socket's kernel send buffer (`SO_SNDBUF`), switching off
    /// autotuning for it. The kernel rounds and clamps as it pleases.
    pub(super) fn set_send_buffer(fd: c_int, bytes: u32) -> io::Result<()> {
        let val: c_int = c_int::try_from(bytes).unwrap_or(c_int::MAX);
        // SAFETY: plain setsockopt with a c_int-sized option value whose
        // pointer and length describe a live stack local.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_SNDBUF,
                core::ptr::from_ref(&val).cast(),
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Blocks until some registered fd is ready or `timeout` elapses
    /// (`None` blocks indefinitely). Retries `EINTR` internally; rounds a
    /// sub-millisecond timeout *up* so a near deadline cannot degenerate
    /// into a zero-timeout busy spin.
    pub(super) fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let mut ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    ms = 1;
                }
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        };
        loop {
            // SAFETY: `fds` is a valid exclusive slice of `PollFd`, which
            // is layout-identical to the kernel's `struct pollfd`; the
            // call writes only the `revents` fields within the slice.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// How long the reactor waits before re-attempting a parked (shard-queue
/// rejected) submission. Short enough that freed queue slots are taken
/// promptly, long enough not to spin.
const PARK_RETRY_TICK: Duration = Duration::from_millis(10);

/// How long the listener sits out of the poll set after an accept error
/// (fd exhaustion): a level-triggered readiness we cannot consume must
/// not busy-spin the loop.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Per-connection cap on bytes read in one poll iteration — fairness: a
/// firehose connection cannot monopolize the loop while others wait.
const READ_BUDGET: usize = 1 << 20;

/// State shared between the reactor thread and the owning
/// [`NetServer`](crate::NetServer): the shutdown flag plus the config the
/// loop consults every iteration.
pub(crate) struct ReactorShared {
    pub(crate) closed: AtomicBool,
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) max_frame_bytes: u64,
    pub(crate) write_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) conn_send_buffer: Option<u32>,
}

/// Best-effort `SO_SNDBUF` cap on an accepted socket; refusal is not a
/// reason to drop the connection.
pub(crate) fn cap_send_buffer(stream: &TcpStream, bytes: Option<u32>) {
    if let Some(bytes) = bytes {
        let _ = sys::set_send_buffer(stream.as_raw_fd(), bytes);
    }
}

/// One queued outbound frame: prefix + payload contiguous, with a resume
/// offset for partial sends. `gated` marks reply frames that hold one of
/// the connection's [`MAX_CONN_INFLIGHT`] slots until fully flushed.
struct OutFrame {
    bytes: Vec<u8>,
    sent: usize,
    gated: bool,
}

/// One connection's full state: both state machines plus the accounting
/// that drives poll interest and teardown deadlines.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: VecDeque<OutFrame>,
    /// A request the fleet rejected with `Overloaded`, held for retry;
    /// while parked the connection does not read (backpressure).
    parked: Option<(u64, Request)>,
    /// Requests submitted to the fleet whose replies have not come back.
    in_fleet: usize,
    /// Requests submitted whose replies have not *fully flushed* — the
    /// reactor's analogue of the threaded backend's `InflightGate`; at
    /// [`MAX_CONN_INFLIGHT`] the connection stops reading.
    gate: usize,
    /// No more bytes will be read: client EOF, read error, protocol
    /// error, or server drain.
    eof: bool,
    /// Torn down (write failure, poll error, deadline); removed at the
    /// next reap, dropping anything still queued.
    dead: bool,
    /// Since when a partial frame has been pending while we were willing
    /// to read — the slow-loris clock. Armed when a partial appears, *not*
    /// refreshed by dribbled bytes, cleared by every completed frame.
    partial_since: Option<Instant>,
    /// Since when the write queue has been non-empty without a completed
    /// frame flush — the never-reads clock.
    out_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: VecDeque::new(),
            parked: None,
            in_fleet: 0,
            gate: 0,
            eof: false,
            dead: false,
            partial_since: None,
            out_since: None,
        }
    }

    /// Whether the reactor wants read readiness for this connection —
    /// false exactly when backpressure applies (parked submission or
    /// in-flight cap) or no more input can come.
    fn wants_read(&self) -> bool {
        !self.eof && self.parked.is_none() && self.gate < MAX_CONN_INFLIGHT
    }

    /// Fully served: nothing left to read, retry, answer or flush.
    fn done(&self) -> bool {
        self.eof && self.parked.is_none() && self.in_fleet == 0 && self.out.is_empty()
    }

    /// Re-derives the slow-loris clock. Keeps an armed clock armed (byte
    /// dribbles do not refresh it); [`Ctx::parse`] clears it whenever a
    /// frame completes, so only a *stuck* partial accumulates time.
    fn update_partial(&mut self, now: Instant) {
        let pending = self.wants_read() && self.decoder.has_partial_frame();
        self.partial_since = match (pending, self.partial_since) {
            (false, _) => None,
            (true, None) => Some(now),
            (true, since) => since,
        };
    }

    /// Server drain: stop reading, discard any undelivered input (the
    /// threaded backend's half-close discards the same bytes in the
    /// kernel), keep everything owed flowing out.
    fn begin_drain(&mut self) {
        self.eof = true;
        self.decoder.clear();
        self.partial_since = None;
        let _ = self.stream.shutdown(Shutdown::Read);
    }
}

/// Everything the per-connection handlers need besides the connection
/// itself — split from the conn map so the borrow checker lets one
/// connection be serviced while the context stays mutable.
struct Ctx {
    handle: ServiceHandle,
    shared: Arc<ReactorShared>,
    reply_tx: Sender<TaggedReply>,
    reply_rx: Receiver<TaggedReply>,
    waker: ReplyWaker,
    wake_pending: Arc<AtomicBool>,
    /// Fleet tag → (connection, client-chosen wire id). The indirection
    /// exists because wire ids are client-chosen and collide across
    /// connections; fleet tags must not.
    tokens: HashMap<u64, (u64, u64)>,
    next_token: u64,
}

impl Ctx {
    /// The read state machine's pump: fill from the socket until it would
    /// block (or the fairness budget is spent), parsing as bytes land so
    /// backpressure pauses the fill mid-stream.
    fn fill_and_parse(&mut self, conn_id: u64, conn: &mut Conn, now: Instant) {
        let mut budget = READ_BUDGET;
        while conn.wants_read() {
            match conn.decoder.fill_from(&mut conn.stream) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    self.parse(conn_id, conn, now);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transport failure: no more input; what was already
                    // buffered mid-frame is garbage.
                    conn.eof = true;
                    conn.decoder.clear();
                    break;
                }
            }
        }
        self.parse(conn_id, conn, now);
    }

    /// Slices and dispatches every complete buffered frame, stopping at
    /// backpressure (parked submission / in-flight cap) or the first
    /// protocol error. Mirrors the threaded reader's dispatch, including
    /// its telemetry points.
    fn parse(&mut self, conn_id: u64, conn: &mut Conn, now: Instant) {
        let mut progressed = false;
        while !conn.dead && conn.parked.is_none() && conn.gate < MAX_CONN_INFLIGHT {
            match conn.decoder.next_frame(self.shared.max_frame_bytes) {
                Ok(None) => break,
                Ok(Some(range)) => {
                    progressed = true;
                    match codec::decode_frame(conn.decoder.payload(range.clone())) {
                        Ok(Frame::Request { id, request }) => {
                            self.shared
                                .telemetry
                                .frames_in
                                .fetch_add(1, Ordering::Relaxed);
                            self.submit(conn_id, conn, id, request, now);
                        }
                        Ok(Frame::Reply { id, .. } | Frame::ProtocolError { id, .. }) => {
                            self.protocol_error(
                                conn,
                                id,
                                WireError::malformed("clients may send only request frames"),
                                now,
                            );
                            break;
                        }
                        Err(e) => {
                            // The header (and its request id) may have
                            // parsed even though the body did not.
                            let notice_id =
                                codec::peek_request_id(conn.decoder.payload(range)).unwrap_or(0);
                            self.protocol_error(conn, notice_id, e, now);
                            break;
                        }
                    }
                }
                Err(e) => {
                    // Oversized length prefix: protocol error, reported
                    // before any allocation happened.
                    self.protocol_error(conn, 0, e, now);
                    break;
                }
            }
        }
        if progressed {
            // A completed frame resets the slow-loris clock; update_partial
            // re-arms it only if a *new* partial is already pending.
            conn.partial_since = None;
        }
        if conn.eof && conn.parked.is_none() && conn.gate < MAX_CONN_INFLIGHT {
            // Everything decodable has been dispatched; a partial tail at
            // EOF is discarded, exactly like the blocking reader's
            // disconnected exit.
            conn.decoder.clear();
        }
        conn.update_partial(now);
    }

    /// Submits one decoded request into the fleet under a fresh token.
    /// `Overloaded` parks the request (read-pausing backpressure); other
    /// rejections are answered inline so a pipelining client is never
    /// left waiting.
    fn submit(
        &mut self,
        conn_id: u64,
        conn: &mut Conn,
        wire_id: u64,
        request: Request,
        now: Instant,
    ) {
        let token = self.next_token;
        match self
            .handle
            .try_submit_tagged_with_waker(token, request, &self.reply_tx, &self.waker)
        {
            Ok(()) => {
                self.next_token += 1;
                self.tokens.insert(token, (conn_id, wire_id));
                conn.in_fleet += 1;
                conn.gate += 1;
            }
            Err((ServerError::Overloaded, request)) => {
                conn.parked = Some((wire_id, request));
            }
            Err((e, _)) => {
                let payload = codec::encode_reply(wire_id, &Err(e));
                self.push_out(conn, frame::frame_vec(&payload), false, now);
            }
        }
    }

    /// Reports undecodable input with a `PROTO_ERR` notice and closes the
    /// read side — after a framing error there is no resync point. The
    /// notice and every still-owed reply drain through the write queue.
    fn protocol_error(&mut self, conn: &mut Conn, notice_id: u64, error: WireError, now: Instant) {
        self.shared
            .telemetry
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        conn.eof = true;
        conn.decoder.clear();
        conn.partial_since = None;
        let _ = conn.stream.shutdown(Shutdown::Read);
        let payload = codec::encode_protocol_error(notice_id, &error);
        self.push_out(conn, frame::frame_vec(&payload), false, now);
    }

    /// Queues one outbound frame and flushes eagerly — in the common case
    /// of a drained socket buffer the frame leaves in this call and the
    /// queue never grows.
    fn push_out(&mut self, conn: &mut Conn, bytes: Vec<u8>, gated: bool, now: Instant) {
        if conn.dead {
            return;
        }
        if conn.out.is_empty() {
            conn.out_since = Some(now);
        }
        conn.out.push_back(OutFrame {
            bytes,
            sent: 0,
            gated,
        });
        self.flush(conn, now);
    }

    /// The write state machine: drains the queue front-first, resuming
    /// partial sends, until empty or `WouldBlock`. Frame completion is
    /// the unit of accounting — `frames_out`, gate slots and the
    /// never-reads clock all advance only when a whole frame has left.
    fn flush(&mut self, conn: &mut Conn, now: Instant) {
        while let Some(front) = conn.out.front_mut() {
            match conn.stream.write(&front.bytes[front.sent..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(k) => {
                    front.sent += k;
                    if front.sent == front.bytes.len() {
                        let gated = front.gated;
                        conn.out.pop_front();
                        self.shared
                            .telemetry
                            .frames_out
                            .fetch_add(1, Ordering::Relaxed);
                        if gated {
                            conn.gate -= 1;
                        }
                        conn.out_since = if conn.out.is_empty() { None } else { Some(now) };
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }
}

/// The reactor itself: the poll set, the connection table and the shared
/// context. Runs [`Reactor::run`] on its own thread until drained.
struct Reactor {
    listener: Option<TcpListener>,
    wake_rx: PipeReader,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    accept_backoff: Option<Instant>,
    pollfds: Vec<sys::PollFd>,
    poll_ids: Vec<u64>,
    ctx: Ctx,
}

/// Keeps the earlier of an optional deadline and a new candidate.
fn earlier(best: Option<Instant>, candidate: Instant) -> Option<Instant> {
    match best {
        Some(b) if b <= candidate => Some(b),
        _ => Some(candidate),
    }
}

impl Reactor {
    /// The loop. One iteration: reap finished connections, build the poll
    /// set, park in `poll(2)`, then service whatever woke us — the reply
    /// doorbell, the listener, ready sockets, parked submissions and
    /// expired deadlines, in that order.
    fn run(mut self) {
        let mut draining = false;
        loop {
            if !draining && self.ctx.shared.closed.load(Ordering::Acquire) {
                draining = true;
                self.listener = None;
                for conn in self.conns.values_mut() {
                    conn.begin_drain();
                }
            }
            self.conns.retain(|_, conn| {
                if conn.dead {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return false;
                }
                // A graceful close: everything owed was flushed; dropping
                // the stream sends FIN.
                !conn.done()
            });
            if draining && self.conns.is_empty() {
                return;
            }
            let now = Instant::now();
            let timeout = self.poll_timeout(now);
            let listener_polled = self.build_pollfds(now);
            if sys::wait(&mut self.pollfds, timeout).is_err() {
                // poll itself failing (ENOMEM) is transient; yield rather
                // than spin.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let now = Instant::now();
            if self.pollfds[0].revents != 0 {
                let mut sink = [0u8; 64];
                let _ = self.wake_rx.read(&mut sink);
            }
            // Clear-then-drain: a reply landing after the drain below
            // finds the flag clear, rings a fresh byte, and the next poll
            // returns immediately — no lost wake-ups.
            self.ctx.wake_pending.store(false, Ordering::SeqCst);
            self.drain_replies(now);
            if listener_polled && self.pollfds[1].revents != 0 {
                self.accept_ready(now);
            }
            self.dispatch(listener_polled, now);
            self.retry_parked(now);
            self.sweep(now);
        }
    }

    /// The next instant anything is *scheduled* to happen: a parked
    /// retry, a slow-loris or never-reads deadline, the accept backoff.
    /// `None` — block indefinitely — whenever the fleet is fully idle.
    fn poll_timeout(&self, now: Instant) -> Option<Duration> {
        let idle = self.ctx.shared.idle_timeout;
        let write = self.ctx.shared.write_timeout;
        let mut best: Option<Instant> = None;
        for conn in self.conns.values() {
            if conn.parked.is_some() {
                best = earlier(best, now + PARK_RETRY_TICK);
            }
            if let Some(t) = conn.partial_since {
                best = earlier(best, t + idle);
            }
            if let Some(t) = conn.out_since {
                best = earlier(best, t + write);
            }
        }
        if let Some(t) = self.accept_backoff {
            best = earlier(best, t);
        }
        best.map(|t| t.saturating_duration_since(now))
    }

    /// Rebuilds the poll set: the wake pipe always, the listener unless
    /// backing off, then every live connection with interest derived from
    /// its state machines. Paused connections stay registered with no
    /// interest bits — `POLLERR`/`POLLHUP` are reported regardless, so a
    /// vanished peer is still noticed.
    fn build_pollfds(&mut self, now: Instant) -> bool {
        self.pollfds.clear();
        self.poll_ids.clear();
        self.pollfds.push(sys::PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        let listener_polled = match (&self.listener, self.accept_backoff) {
            (Some(_), Some(until)) if now < until => false,
            (Some(listener), _) => {
                self.accept_backoff = None;
                self.pollfds.push(sys::PollFd {
                    fd: listener.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
                true
            }
            (None, _) => false,
        };
        for (&id, conn) in &self.conns {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= sys::POLLIN;
            }
            if !conn.out.is_empty() {
                events |= sys::POLLOUT;
            }
            self.pollfds.push(sys::PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            self.poll_ids.push(id);
        }
        listener_polled
    }

    /// Routes each completed reply to its connection's write queue via
    /// the token map. Tokens of connections torn down in the meantime
    /// resolve to nothing and the reply is dropped, exactly as the
    /// threaded writer drops replies for a vanished client.
    fn drain_replies(&mut self, now: Instant) {
        let Reactor { conns, ctx, .. } = self;
        while let Ok(reply) = ctx.reply_rx.try_recv() {
            let Some((conn_id, wire_id)) = ctx.tokens.remove(&reply.id) else {
                continue;
            };
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue;
            };
            conn.in_fleet -= 1;
            if conn.dead {
                continue;
            }
            let payload = codec::encode_reply(wire_id, &reply.result.map_err(ServerError::Query));
            ctx.push_out(conn, frame::frame_vec(&payload), true, now);
        }
    }

    /// Accepts until the listener would block. Accept errors (fd
    /// exhaustion) put the listener on a short backoff instead of
    /// busy-spinning its level-triggered readiness.
    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // One frame per reply; Nagle would delay them.
                    let _ = stream.set_nodelay(true);
                    cap_send_buffer(&stream, self.ctx.shared.conn_send_buffer);
                    self.ctx
                        .shared
                        .telemetry
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.accept_backoff = Some(now + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Services every connection the poll flagged: errors first, then the
    /// read pump, then the write drain.
    fn dispatch(&mut self, listener_polled: bool, now: Instant) {
        let base = 1 + usize::from(listener_polled);
        let Reactor {
            conns,
            ctx,
            pollfds,
            poll_ids,
            ..
        } = self;
        for (i, pfd) in pollfds.iter().enumerate().skip(base) {
            let rev = pfd.revents;
            if rev == 0 {
                continue;
            }
            let id = poll_ids[i - base];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if rev & sys::POLLNVAL != 0 {
                conn.dead = true;
                continue;
            }
            let erred = rev & (sys::POLLERR | sys::POLLHUP) != 0;
            if (rev & sys::POLLIN != 0 || erred) && conn.wants_read() {
                ctx.fill_and_parse(id, conn, now);
            }
            if (rev & sys::POLLOUT != 0 || erred) && !conn.out.is_empty() {
                ctx.flush(conn, now);
            }
            if erred && !conn.wants_read() && conn.out.is_empty() {
                // An error on a fully paused connection: neither state
                // machine can consume it, and a level-triggered poll would
                // report it forever. The peer is gone; tear down.
                conn.dead = true;
            }
        }
    }

    /// Re-attempts parked submissions. The advisory capacity check skips
    /// futile tries; a lost race against another handle simply re-parks.
    fn retry_parked(&mut self, now: Instant) {
        let Reactor { conns, ctx, .. } = self;
        for (&id, conn) in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            if let Some((wire_id, request)) = conn.parked.take() {
                if ctx.handle.has_capacity_for(request.n()) {
                    ctx.submit(id, conn, wire_id, request, now);
                } else {
                    conn.parked = Some((wire_id, request));
                }
            }
        }
    }

    /// End-of-iteration pass: parse input unblocked by freed gate slots
    /// or un-parking, refresh the slow-loris clocks, and kill every
    /// connection past a deadline.
    fn sweep(&mut self, now: Instant) {
        let Reactor { conns, ctx, .. } = self;
        let idle = ctx.shared.idle_timeout;
        let write = ctx.shared.write_timeout;
        for (&id, conn) in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            if conn.wants_read() && conn.decoder.buffered() > 0 {
                ctx.parse(id, conn, now);
            }
            conn.update_partial(now);
            let read_stalled = conn
                .partial_since
                .is_some_and(|t| now.duration_since(t) >= idle);
            let write_stalled = conn
                .out_since
                .is_some_and(|t| now.duration_since(t) >= write);
            if read_stalled || write_stalled {
                conn.dead = true;
                ctx.shared
                    .telemetry
                    .idle_teardowns
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Builds the wake pipe and reply channel, then spawns the reactor
/// thread over `listener`. Returns the join handle and the waker —
/// ringing the waker after setting `shared.closed` is how shutdown gets
/// the loop's attention.
pub(crate) fn spawn(
    listener: TcpListener,
    handle: ServiceHandle,
    shared: Arc<ReactorShared>,
) -> std::io::Result<(JoinHandle<()>, ReplyWaker)> {
    let (wake_rx, wake_tx) = std::io::pipe()?;
    let wake_pending = Arc::new(AtomicBool::new(false));
    let waker: ReplyWaker = {
        let pending = Arc::clone(&wake_pending);
        Arc::new(move || {
            // Coalesced doorbell: only the ring that flips the flag writes
            // a byte, so the pipe can never fill no matter how many shard
            // workers complete at once.
            if !pending.swap(true, Ordering::SeqCst) {
                let _ = (&wake_tx).write(&[1u8]);
            }
        })
    };
    let (reply_tx, reply_rx) = channel();
    let reactor = Reactor {
        listener: Some(listener),
        wake_rx,
        conns: HashMap::new(),
        next_conn: 0,
        accept_backoff: None,
        pollfds: Vec::new(),
        poll_ids: Vec::new(),
        ctx: Ctx {
            handle,
            shared,
            reply_tx,
            reply_rx,
            waker: Arc::clone(&waker),
            wake_pending,
            tokens: HashMap::new(),
            next_token: 0,
        },
    };
    let thread = std::thread::Builder::new()
        .name("cc-net-reactor".into())
        .spawn(move || reactor.run())?;
    Ok((thread, waker))
}
