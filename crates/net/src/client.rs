//! The blocking client: one TCP connection, `call`, `pipeline` and the
//! `submit`/`wait_next` split for driving many connections from one
//! thread.

use std::collections::VecDeque;
use std::io::{BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use cc_core::obs::Snapshot;
use cc_core::Outcome;
use cc_server::Request;

use crate::codec::{self, Frame, WireResult};
use crate::error::{NetError, WireError};
use crate::frame::{self, FrameDecoder, DEFAULT_MAX_REPLY_FRAME_BYTES};

/// How many pipelined requests [`CcClient::pipeline`] keeps in flight:
/// deep enough to keep every shard of a typical fleet busy, shallow
/// enough that the unread-reply backlog stays within ordinary TCP
/// buffering.
pub const PIPELINE_WINDOW: usize = 32;

/// A blocking client of a [`NetServer`](crate::NetServer).
///
/// One client owns one connection and is single-threaded by design
/// (`&mut self`); concurrency comes from opening one client per thread —
/// or from the split API: [`CcClient::submit`] sends without waiting and
/// [`CcClient::wait_next`] collects whichever reply completes next, so a
/// single thread can keep many clients (connections) in flight at once.
/// Request ids are assigned internally and never reused within a
/// connection.
///
/// [`CcClient::call`] is the plain request-reply roundtrip.
/// [`CcClient::pipeline`] keeps a sliding window of requests in flight,
/// letting the server's shards work them concurrently and answer out of
/// order; results are returned in request order regardless.
///
/// ## Failure and reconnection
///
/// The first transport or protocol failure poisons the connection: every
/// later operation deterministically returns [`NetError::Disconnected`]
/// (never a second, timing-dependent I/O error). A read timeout
/// ([`CcClient::with_read_timeout`]) poisons too — the stream may have
/// died mid-frame, so there is no resync point. [`CcClient::reconnect`]
/// re-dials the same server, reports which in-flight requests were
/// abandoned, and restores the client to service.
///
/// ```no_run
/// use cc_net::{CcClient, NetServer, NetServerConfig};
/// use cc_server::Request;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(2))?;
/// let mut client = CcClient::connect(server.local_addr())?;
/// let keys: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
/// let outcome = client.call(&Request::Sort(keys))?;
/// assert!(outcome.metrics().comm_rounds() > 0);
/// # Ok(())
/// # }
/// ```
pub struct CcClient {
    stream: TcpStream,
    writer: BufWriter<TcpStream>,
    /// Reply frames accumulate in one reusable buffer — the client-side
    /// half of the zero-copy read path; no per-frame allocation.
    decoder: FrameDecoder,
    next_id: u64,
    max_frame_bytes: u64,
    /// The resolved peer, kept for [`CcClient::reconnect`].
    peer: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    /// Ids submitted whose replies have not arrived, in submission order.
    inflight: VecDeque<u64>,
    /// Set by the first transport/protocol failure; everything after
    /// returns [`NetError::Disconnected`] until [`CcClient::reconnect`].
    broken: bool,
}

impl std::fmt::Debug for CcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CcClient")
            .field("peer", &self.peer)
            .field("next_id", &self.next_id)
            .field("inflight", &self.inflight.len())
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

impl CcClient {
    /// Connects to a [`NetServer`](crate::NetServer).
    ///
    /// # Errors
    ///
    /// Transport failures from connect/clone.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        CcClient::from_stream(stream, None)
    }

    /// Connects with a bound on connection establishment — a dead or
    /// blackholed address fails within `timeout` instead of the OS
    /// default (minutes of SYN retries). Every resolved address of
    /// `addr` is tried in turn, each under the timeout. The timeout is
    /// remembered and re-applied by [`CcClient::reconnect`].
    ///
    /// # Errors
    ///
    /// The last connect failure if every address fails; an
    /// [`NetError::Io`] of kind `InvalidInput` if `addr` resolves to
    /// nothing.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, NetError> {
        let mut last: Option<std::io::Error> = None;
        for peer in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&peer, timeout) {
                Ok(stream) => return CcClient::from_stream(stream, Some(timeout)),
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// The shared tail of every connect path: socket options, halves,
    /// fresh per-connection state.
    fn from_stream(stream: TcpStream, connect_timeout: Option<Duration>) -> Result<Self, NetError> {
        // One frame per query either way: batching is explicit (pipeline),
        // so turn Nagle off to keep single calls at wire latency.
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(CcClient {
            stream,
            writer: BufWriter::new(write_half),
            decoder: FrameDecoder::new(),
            next_id: 0,
            max_frame_bytes: DEFAULT_MAX_REPLY_FRAME_BYTES,
            peer,
            connect_timeout,
            read_timeout: None,
            inflight: VecDeque::new(),
            broken: false,
        })
    }

    /// Sets the cap this client enforces on reply frames (defaults to
    /// [`DEFAULT_MAX_REPLY_FRAME_BYTES`] — deliberately above the
    /// server's request cap, since replies outgrow their requests).
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u64) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Bounds every blocking read: a server that stops answering fails
    /// the call within `timeout` instead of hanging. A timed-out read
    /// poisons the connection (the reply may have died mid-frame;
    /// there is no resync point) — [`CcClient::reconnect`] restores it.
    /// Remembered and re-applied by reconnects.
    ///
    /// # Errors
    ///
    /// The OS rejecting the timeout (zero durations are invalid).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Result<Self, NetError> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.read_timeout = Some(timeout);
        Ok(self)
    }

    /// Drops the current connection (if any still lives) and dials the
    /// same server again, re-applying the connect/read timeouts and
    /// clearing the poisoned state. Requests that were in flight are
    /// abandoned — their ids are returned so a caller that tracked
    /// submissions knows exactly which work to replay; their replies
    /// would have surfaced as [`NetError::Disconnected`].
    ///
    /// Request ids keep counting up across reconnects, so an id never
    /// names two different requests in one client's lifetime.
    ///
    /// # Errors
    ///
    /// Transport failures from the new dial; the client stays poisoned
    /// and `reconnect` can be retried.
    pub fn reconnect(&mut self) -> Result<Vec<u64>, NetError> {
        self.broken = true; // a failed re-dial must leave us poisoned
        let stream = match self.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.peer, timeout)?,
            None => TcpStream::connect(self.peer)?,
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(self.read_timeout)?;
        let write_half = stream.try_clone()?;
        let failed = self.inflight.drain(..).collect();
        self.stream = stream;
        self.writer = BufWriter::new(write_half);
        self.decoder.clear();
        self.broken = false;
        Ok(failed)
    }

    /// How many submitted requests are awaiting replies.
    #[inline]
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Sends `request` without waiting, returning its request id; collect
    /// the answer (in completion order across all submissions) with
    /// [`CcClient::wait_next`]. This is the building block for driving
    /// many connections from one thread: submit on each, then wait on
    /// whichever client has replies owed.
    ///
    /// # Errors
    ///
    /// Transport failures; [`NetError::Disconnected`] if the connection
    /// is poisoned.
    pub fn submit(&mut self, request: &Request) -> Result<u64, NetError> {
        self.ensure_live()?;
        let id = self.next_id;
        self.next_id += 1;
        self.write_request(id, request)?;
        self.flush_writer()?;
        Ok(id)
    }

    /// Blocks for the next reply owed to this connection, in completion
    /// order; `Ok(None)` when nothing is in flight. The id pairs the
    /// reply with its [`CcClient::submit`].
    ///
    /// # Errors
    ///
    /// Transport and protocol failures ([`NetError::Disconnected`] once
    /// poisoned — deterministically, for every outstanding reply).
    pub fn wait_next(&mut self) -> Result<Option<(u64, WireResult)>, NetError> {
        if self.inflight.is_empty() {
            return Ok(None);
        }
        self.ensure_live()?;
        self.read_reply().map(Some)
    }

    /// Sends `request` and blocks for its answer.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] carries the exact server-side error an
    /// in-process [`ServiceHandle::call`](cc_server::ServiceHandle::call)
    /// would return; [`NetError::RepliesPending`] if [`CcClient::submit`]
    /// replies are still owed; the other variants are transport or
    /// protocol failures.
    pub fn call(&mut self, request: &Request) -> Result<Outcome, NetError> {
        // Poisoned wins over pending: a broken connection answers
        // Disconnected everywhere, even with submissions stranded.
        self.ensure_live()?;
        self.ensure_unmixed()?;
        let id = self.submit(request)?;
        match self.wait_next()? {
            Some((got, result)) if got == id => result.map_err(NetError::Server),
            // With exactly one request in flight, any other id already
            // failed inside read_reply; this arm is unreachable in
            // practice but must not panic.
            Some((got, _)) => Err(self.fail(NetError::UnexpectedId { id: got })),
            None => Err(NetError::Disconnected),
        }
    }

    /// Pipelines the whole batch — up to [`PIPELINE_WINDOW`] requests are
    /// in flight at once: the server decodes, shards and serves them
    /// concurrently and replies in completion order; this method reorders
    /// by request id and returns results in request order.
    ///
    /// Per-request server outcomes (including query errors) are inside
    /// the returned vector; only transport/protocol failures abort the
    /// whole batch.
    ///
    /// The sliding window is what makes arbitrarily large batches safe:
    /// once the window is full, a reply is consumed before the next
    /// request is written, so neither side's TCP buffering has to absorb
    /// an unbounded burst and the server's reply path is never starved
    /// of a reading peer for long.
    ///
    /// # Errors
    ///
    /// Transport ([`NetError::Io`], [`NetError::Disconnected`]) and
    /// protocol ([`NetError::Wire`], [`NetError::RemoteProtocol`],
    /// [`NetError::UnexpectedId`]) failures;
    /// [`NetError::RepliesPending`] if [`CcClient::submit`] replies are
    /// still owed.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<WireResult>, NetError> {
        self.ensure_live()?;
        self.ensure_unmixed()?;
        let base = self.next_id;
        self.next_id += requests.len() as u64;
        let mut slots: Vec<Option<WireResult>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        let mut written = 0;
        let mut received = 0;
        while received < requests.len() {
            if written < requests.len() && written - received < PIPELINE_WINDOW {
                self.write_request(base + written as u64, &requests[written])?;
                written += 1;
                // Flush at the window edge and at the end of the batch,
                // never leaving buffered requests while blocked on reads.
                if written == requests.len() || written - received >= PIPELINE_WINDOW {
                    self.flush_writer()?;
                }
                continue;
            }
            let (id, result) = self.read_reply()?;
            // read_reply already rejected ids not in flight, so the
            // subtraction cannot miss; defend anyway.
            let index = id
                .checked_sub(base)
                .filter(|&offset| (offset as usize) < written)
                .map(|offset| offset as usize)
                .ok_or(NetError::UnexpectedId { id })?;
            slots[index] = Some(result);
            received += 1;
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("all filled"))
            .collect())
    }

    /// Fetches a full metric snapshot from the server: every counter,
    /// gauge and latency histogram the serving stack records — wire
    /// counters, reactor loop metrics, per-shard fleet telemetry and the
    /// per-stage latency histograms (`net.decode_ns`,
    /// `fleet.queue_wait_ns`, `fleet.session_run_ns`, `net.write_ns`).
    /// The server answers inline at the wire layer, so a stats probe
    /// never queues behind data requests.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures;
    /// [`NetError::RepliesPending`] if [`CcClient::submit`] replies are
    /// still owed (the stats roundtrip owns the reply stream, like
    /// [`CcClient::call`]).
    pub fn stats(&mut self) -> Result<Snapshot, NetError> {
        self.ensure_live()?;
        self.ensure_unmixed()?;
        let id = self.next_id;
        self.next_id += 1;
        if let Err(e) = frame::write_frame(&mut self.writer, &codec::encode_stats_request(id)) {
            return Err(self.fail(e));
        }
        self.flush_writer()?;
        // A dedicated read loop: with nothing else in flight
        // (ensure_unmixed) the very next frame must be our stats reply.
        loop {
            match self.decoder.next_frame(self.max_frame_bytes) {
                Ok(Some(range)) => {
                    return match codec::decode_frame(self.decoder.payload(range)) {
                        Ok(Frame::StatsReply { id: got, snapshot }) if got == id => Ok(snapshot),
                        Ok(Frame::StatsReply { id: got, .. }) => {
                            Err(self.fail(NetError::UnexpectedId { id: got }))
                        }
                        Ok(Frame::ProtocolError { error, .. }) => {
                            Err(self.fail(NetError::RemoteProtocol(error)))
                        }
                        Ok(_) => Err(self.fail(NetError::Wire(WireError::malformed(
                            "expected a stats reply",
                        )))),
                        Err(e) => Err(self.fail(NetError::Wire(e))),
                    };
                }
                Ok(None) => {}
                Err(e) => return Err(self.fail(NetError::Wire(e))),
            }
            match self.decoder.fill_from(&mut self.stream) {
                Ok(0) => return Err(self.fail(NetError::Disconnected)),
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(self.fail(NetError::Io(e))),
            }
        }
    }

    /// Poisons the connection and hands the error back — every failure
    /// path funnels through here so the broken state can never be missed.
    fn fail(&mut self, e: NetError) -> NetError {
        self.broken = true;
        e
    }

    fn ensure_live(&self) -> Result<(), NetError> {
        if self.broken {
            return Err(NetError::Disconnected);
        }
        Ok(())
    }

    /// The roundtrip APIs own the whole reply stream; mixing them with
    /// un-collected `submit`s would interleave two reorder protocols.
    fn ensure_unmixed(&self) -> Result<(), NetError> {
        if self.inflight.is_empty() {
            Ok(())
        } else {
            Err(NetError::RepliesPending {
                count: self.inflight.len(),
            })
        }
    }

    /// Encodes and buffers one request frame and records it in flight.
    /// No flush — the caller batches.
    fn write_request(&mut self, id: u64, request: &Request) -> Result<(), NetError> {
        match frame::write_frame(&mut self.writer, &codec::encode_request(id, request)) {
            Ok(()) => {
                self.inflight.push_back(id);
                Ok(())
            }
            Err(e) => Err(self.fail(e)),
        }
    }

    fn flush_writer(&mut self) -> Result<(), NetError> {
        match self.writer.flush() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.fail(NetError::Io(e))),
        }
    }

    /// Reads and decodes one reply frame through the reusable decoder
    /// buffer, retiring its id from the in-flight set.
    fn read_reply(&mut self) -> Result<(u64, WireResult), NetError> {
        loop {
            // Parse before reading: an earlier fill may have buffered
            // several frames.
            match self.decoder.next_frame(self.max_frame_bytes) {
                Ok(Some(range)) => {
                    return match codec::decode_frame(self.decoder.payload(range)) {
                        Ok(Frame::Reply { id, result }) => {
                            if let Some(pos) = self.inflight.iter().position(|&x| x == id) {
                                self.inflight.remove(pos);
                                Ok((id, result))
                            } else {
                                Err(self.fail(NetError::UnexpectedId { id }))
                            }
                        }
                        Ok(Frame::ProtocolError { error, .. }) => {
                            Err(self.fail(NetError::RemoteProtocol(error)))
                        }
                        Ok(Frame::Request { .. } | Frame::StatsRequest { .. }) => Err(self.fail(
                            NetError::Wire(WireError::malformed("servers send only reply frames")),
                        )),
                        // A stats reply can only answer a stats request,
                        // and those never share the stream with data
                        // replies (`ensure_unmixed` in both directions).
                        Ok(Frame::StatsReply { .. }) => Err(self.fail(NetError::Wire(
                            WireError::malformed("unsolicited stats reply"),
                        ))),
                        Err(e) => Err(self.fail(NetError::Wire(e))),
                    };
                }
                Ok(None) => {}
                Err(e) => return Err(self.fail(NetError::Wire(e))),
            }
            match self.decoder.fill_from(&mut self.stream) {
                Ok(0) => return Err(self.fail(NetError::Disconnected)),
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(self.fail(NetError::Io(e))),
            }
        }
    }
}
