//! The blocking client: one TCP connection, `call` and `pipeline`.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cc_core::Outcome;
use cc_server::Request;

use crate::codec::{self, Frame, WireResult};
use crate::error::{NetError, WireError};
use crate::frame::{self, DEFAULT_MAX_REPLY_FRAME_BYTES};

/// How many pipelined requests [`CcClient::pipeline`] keeps in flight:
/// deep enough to keep every shard of a typical fleet busy, shallow
/// enough that the unread-reply backlog stays within ordinary TCP
/// buffering.
pub const PIPELINE_WINDOW: usize = 32;

/// A blocking client of a [`NetServer`](crate::NetServer).
///
/// One client owns one connection and is single-threaded by design
/// (`&mut self`); concurrency comes from opening one client per thread —
/// the server multiplexes all of them onto the same warm fleet. Request
/// ids are assigned internally and never reused within a connection.
///
/// [`CcClient::call`] is the plain request-reply roundtrip.
/// [`CcClient::pipeline`] keeps a sliding window of requests in flight,
/// letting the server's shards work them concurrently and answer out of
/// order; results are returned in request order regardless.
///
/// ```no_run
/// use cc_net::{CcClient, NetServer, NetServerConfig};
/// use cc_server::Request;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(2))?;
/// let mut client = CcClient::connect(server.local_addr())?;
/// let keys: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
/// let outcome = client.call(&Request::Sort(keys))?;
/// assert!(outcome.metrics().comm_rounds() > 0);
/// # Ok(())
/// # }
/// ```
pub struct CcClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_bytes: u64,
}

impl std::fmt::Debug for CcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CcClient")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl CcClient {
    /// Connects to a [`NetServer`](crate::NetServer).
    ///
    /// # Errors
    ///
    /// Transport failures from connect/clone.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        // One frame per query either way: batching is explicit (pipeline),
        // so turn Nagle off to keep single calls at wire latency.
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        Ok(CcClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 0,
            max_frame_bytes: DEFAULT_MAX_REPLY_FRAME_BYTES,
        })
    }

    /// Sets the cap this client enforces on reply frames (defaults to
    /// [`DEFAULT_MAX_REPLY_FRAME_BYTES`] — deliberately above the
    /// server's request cap, since replies outgrow their requests).
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u64) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Sends `request` and blocks for its answer.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] carries the exact server-side error an
    /// in-process [`ServiceHandle::call`](cc_server::ServiceHandle::call)
    /// would return; the other variants are transport or protocol
    /// failures.
    pub fn call(&mut self, request: &Request) -> Result<Outcome, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        frame::write_frame(&mut self.writer, &codec::encode_request(id, request))?;
        self.writer.flush().map_err(NetError::Io)?;
        let (got, result) = self.read_reply()?;
        if got != id {
            return Err(NetError::UnexpectedId { id: got });
        }
        result.map_err(NetError::Server)
    }

    /// Pipelines the whole batch — up to [`PIPELINE_WINDOW`] requests are
    /// in flight at once: the server decodes, shards and serves them
    /// concurrently and replies in completion order; this method reorders
    /// by request id and returns results in request order.
    ///
    /// Per-request server outcomes (including query errors) are inside
    /// the returned vector; only transport/protocol failures abort the
    /// whole batch.
    ///
    /// The sliding window is what makes arbitrarily large batches safe:
    /// once the window is full, a reply is consumed before the next
    /// request is written, so neither side's TCP buffering has to absorb
    /// an unbounded burst and the server's reply writer is never starved
    /// of a reading peer for long.
    ///
    /// # Errors
    ///
    /// Transport ([`NetError::Io`], [`NetError::Disconnected`]) and
    /// protocol ([`NetError::Wire`], [`NetError::RemoteProtocol`],
    /// [`NetError::UnexpectedId`]) failures.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<WireResult>, NetError> {
        let base = self.next_id;
        self.next_id += requests.len() as u64;
        let mut slots: Vec<Option<WireResult>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        let mut written = 0;
        let mut received = 0;
        while received < requests.len() {
            if written < requests.len() && written - received < PIPELINE_WINDOW {
                let id = base + written as u64;
                frame::write_frame(
                    &mut self.writer,
                    &codec::encode_request(id, &requests[written]),
                )?;
                written += 1;
                // Flush at the window edge and at the end of the batch,
                // never leaving buffered requests while blocked on reads.
                if written == requests.len() || written - received >= PIPELINE_WINDOW {
                    self.writer.flush().map_err(NetError::Io)?;
                }
                continue;
            }
            let (id, result) = self.read_reply()?;
            let index = id
                .checked_sub(base)
                .filter(|&offset| (offset as usize) < written)
                .map(|offset| offset as usize)
                .ok_or(NetError::UnexpectedId { id })?;
            if slots[index].is_some() {
                return Err(NetError::UnexpectedId { id });
            }
            slots[index] = Some(result);
            received += 1;
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("all filled"))
            .collect())
    }

    /// Reads and decodes one reply frame.
    fn read_reply(&mut self) -> Result<(u64, WireResult), NetError> {
        match frame::read_frame(&mut self.reader, self.max_frame_bytes)? {
            None => Err(NetError::Disconnected),
            Some(payload) => match codec::decode_frame(&payload)? {
                Frame::Reply { id, result } => Ok((id, result)),
                Frame::ProtocolError { error, .. } => Err(NetError::RemoteProtocol(error)),
                Frame::Request { .. } => Err(NetError::Wire(WireError::malformed(
                    "servers send only reply frames",
                ))),
            },
        }
    }
}
