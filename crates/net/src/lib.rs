//! # cc-net — the TCP wire protocol over the sharded query fleet
//!
//! After `cc-server`, the fleet of warm clique sessions was reachable
//! only in-process. This crate is the network layer above it — the last
//! hop toward the ROADMAP's "heavy traffic from millions of users"
//! regime — built std-only (`TcpListener`/`TcpStream` + threads, no
//! external dependencies) in three layers:
//!
//! * the **wire codec** ([`codec`]): a versioned, length-prefixed binary
//!   encoding of every [`Request`](cc_server::Request) variant and every
//!   [`Outcome`](cc_core::Outcome)/[`ServerError`](cc_server::ServerError)
//!   reply, written with `cc-core`'s bit-exact
//!   [`BitWriter`](cc_core::wire::BitWriter)/[`BitReader`](cc_core::wire::BitReader);
//! * the **[`NetServer`]**: by default ([`ServingMode::Reactor`]) one or
//!   more event-loop threads
//!   ([`with_reactor_threads`](NetServerConfig::with_reactor_threads))
//!   multiplexing *every* accepted connection through a readiness
//!   backend — edge-triggered `epoll` on Linux (fds registered once,
//!   interest masks touched only on state changes, events delivered
//!   O(ready), so idle connections cost nothing), with `poll(2)` as the
//!   portable oracle and the `CC_REACTOR=poll` kill switch (see
//!   [`ReactorBackend`]). Nonblocking sockets, a reusable
//!   [`frame::FrameDecoder`] per connection for partial reads, a
//!   resumable vectored write queue per connection (pipelined replies
//!   coalesce into one `writev`, flushed buffers recycle through a
//!   per-connection pool), fleet fan-in over
//!   [`submit_tagged`](cc_server::ServiceHandle::submit_tagged) with a
//!   self-pipe doorbell per reactor for reply wakeups — so server
//!   threads are O(shards + reactors) while connections are
//!   O(thousands). With multiple reactors, reactor 0 owns the listener
//!   and deals each accepted socket to the least-loaded loop; every
//!   reactor owns its fd set, backend instance and doorbell outright.
//!   Backpressure is read-pausing (a full shard queue *parks* the
//!   request and pauses the socket; nothing is dropped), and slow peers —
//!   byte-dribbling partial frames, never-reading reply sinks — are
//!   evicted on the
//!   [`idle`](NetServerConfig::with_idle_timeout)/[`write`](NetServerConfig::with_write_timeout)
//!   deadline clocks without stalling their neighbors. The legacy
//!   two-threads-per-connection core remains as
//!   [`ServingMode::ThreadPerConnection`] (and the non-Unix fallback);
//! * the **[`CcClient`]**: a blocking client library with plain
//!   [`call`](CcClient::call), batched out-of-order-tolerant
//!   [`pipeline`](CcClient::pipeline), and the
//!   [`submit`](CcClient::submit)/[`wait_next`](CcClient::wait_next)
//!   split that lets one thread drive many connections. Connects and
//!   reads are boundable ([`connect_timeout`](CcClient::connect_timeout),
//!   [`with_read_timeout`](CcClient::with_read_timeout)); the first
//!   failure poisons the connection into deterministic
//!   [`NetError::Disconnected`] replies, and
//!   [`reconnect`](CcClient::reconnect) re-dials, reporting exactly
//!   which in-flight ids were abandoned.
//!
//! ## Frame format
//!
//! Everything on the socket is a **frame**: a 4-byte big-endian payload
//! length, then the payload — an MSB-first bit stream of fixed-width
//! unsigned fields (all widths are multiples of 8, so payloads are
//! byte-aligned and padding-free):
//!
//! ```text
//! frame   := payload_len:u32be payload
//! payload := version:u8  kind:u8  request_id:u64  body
//! kind    := 0 REQUEST     body = request     (client → server)
//!            1 REPLY       body = result      (server → client)
//!            2 PROTO_ERR   body = wire_error  (server → client, fatal)
//!            3 STATS_REQ   body = (empty)     (client → server)
//!            4 STATS_REPLY body = snapshot    (server → client)
//! ```
//!
//! The `request_id` tag is chosen by the client and echoed verbatim in
//! the reply; it is the correlation that makes pipelining work — replies
//! arrive in *completion* order (different clique sizes land on different
//! shards), and the id maps each one back. See [`codec`] for the body
//! grammars and [`frame::DEFAULT_MAX_FRAME_BYTES`] for the size cap that
//! keeps corrupt length prefixes from forcing allocations.
//!
//! `STATS_REQ` ([`CcClient::stats`]) fetches the server's full metric
//! registry — wire counters, reactor loop metrics, per-shard fleet
//! telemetry and the per-stage latency histograms — as a
//! [`Snapshot`](cc_core::obs::Snapshot), answered inline at the wire
//! layer without ever entering the fleet queues.
//!
//! ## Contract
//!
//! The network adds **no semantics**: every reply is bit-identical to
//! what a direct, sequential [`CliqueService`](cc_core::CliqueService)
//! call would produce — outcomes *and* errors
//! ([`ServerError`](cc_server::ServerError) crosses the wire
//! losslessly). Decoding is deterministic: a byte sequence
//! yields exactly one [`Frame`] or exactly one
//! [`WireError`]; undecodable input is answered with a `PROTO_ERR` frame
//! naming the defect, then the connection closes (no resync after a
//! framing error). Backpressure maps down the whole stack: full shard
//! queue → paused connection reads → TCP flow control → blocked
//! client. Shutdown is graceful end to end: every accepted request is
//! answered and every queued reply written before sockets close — the
//! only connections that die early are the ones a deadline clock
//! convicted (counted in [`NetStats::idle_teardowns`]).
//!
//! ```no_run
//! use cc_net::{CcClient, NetServer, NetServerConfig};
//! use cc_server::Request;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(4))?;
//! let addr = server.local_addr();
//!
//! let mut client = CcClient::connect(addr)?;
//! let inst = cc_core::routing::RoutingInstance::from_demands(16, |_, _| 1)?;
//! let keys: Vec<Vec<u64>> = (0..8).map(|i| vec![i as u64]).collect();
//! // Pipeline: both requests are in flight at once, on different shards.
//! let results = client.pipeline(&[Request::RouteOptimized(inst), Request::Sort(keys)])?;
//! assert!(results.iter().all(|r| r.is_ok()));
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.frames_in, 2);
//! # Ok(())
//! # }
//! ```

// `deny`, not `forbid`: the reactor's `poll(2)`/`epoll` bindings are the
// one `unsafe` island in the crate, explicitly allowed in its `sys`
// module and nowhere else.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod codec;
mod error;
pub mod frame;
#[cfg(unix)]
mod reactor;
mod server;

pub use client::{CcClient, PIPELINE_WINDOW};
pub use codec::{Frame, WireResult, WIRE_VERSION};
pub use error::{NetError, WireError};
pub use frame::{DEFAULT_MAX_FRAME_BYTES, DEFAULT_MAX_REPLY_FRAME_BYTES};
pub use server::{
    NetServer, NetServerConfig, NetStats, ReactorBackend, ServingMode, DEFAULT_IDLE_TIMEOUT,
    DEFAULT_WRITE_TIMEOUT, MAX_CONN_INFLIGHT,
};
