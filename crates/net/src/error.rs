//! Error types of the wire layer.
//!
//! [`WireError`] is the deterministic verdict of the codec on a byte
//! stream: two decoders fed the same bytes produce the same value, which
//! is what lets truncation/corruption tests pin exact errors. It is
//! `Clone + PartialEq` and itself wire-encodable (a server rejecting a
//! frame reports *which* way it was malformed, losslessly).
//!
//! [`NetError`] is the client-visible union: transport failures carry the
//! underlying [`std::io::Error`]; protocol failures carry a [`WireError`]
//! (locally detected or remote-reported); and server-side failures carry
//! the exact [`ServerError`] the in-process fleet raised — decoded
//! losslessly, so network parity tests can compare with `==` against
//! direct [`cc_server::ServiceHandle`] calls.

use cc_server::ServerError;
use std::fmt;

/// A deterministic decode failure: the bytes do not form a valid frame.
///
/// Every variant is reproducible from the bytes alone — no host state, no
/// time — so corrupted-input tests assert exact values.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream ended inside a field (truncated frame body).
    Truncated,
    /// The frame's version byte is not [`WIRE_VERSION`](crate::WIRE_VERSION).
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// A tag field holds a value outside its enum's range.
    UnknownTag {
        /// Which tag field (e.g. `"frame kind"`, `"request"`).
        context: &'static str,
        /// The offending value.
        tag: u64,
    },
    /// A structurally decodable frame failed semantic validation (e.g. a
    /// routing instance with duplicate message identities).
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// Bytes remain after the frame body's last field (corruption or a
    /// length prefix overstating the payload).
    TrailingBytes {
        /// Whole bytes left unread.
        extra: u64,
    },
    /// A length prefix exceeds the configured maximum frame size.
    FrameTooLarge {
        /// The advertised payload length in bytes.
        len: u64,
        /// The configured cap.
        max: u64,
    },
}

impl WireError {
    pub(crate) fn malformed(reason: impl Into<String>) -> Self {
        WireError::Malformed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found}")
            }
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag}")
            }
            WireError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after frame body")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Everything a [`CcClient`](crate::CcClient) call can fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The transport failed (connect, read, write, socket teardown).
    Io(std::io::Error),
    /// This side could not decode what the peer sent.
    Wire(WireError),
    /// The peer rejected a frame this side sent, reporting the decoded
    /// [`WireError`]; the connection is no longer usable.
    RemoteProtocol(WireError),
    /// The server answered with a server-level error (overload, shutdown,
    /// query failure) — the exact [`ServerError`] an in-process
    /// [`ServiceHandle`](cc_server::ServiceHandle) call would have raised.
    Server(ServerError),
    /// The connection closed while replies were still owed.
    Disconnected,
    /// The peer sent a reply whose request id matches nothing in flight.
    UnexpectedId {
        /// The unmatched id.
        id: u64,
    },
    /// A blocking roundtrip ([`call`](crate::CcClient::call) /
    /// [`pipeline`](crate::CcClient::pipeline)) was invoked while replies
    /// from [`submit`](crate::CcClient::submit) were still owed — drain
    /// them with [`wait_next`](crate::CcClient::wait_next) first.
    RepliesPending {
        /// How many replies are outstanding.
        count: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "wire decode failed: {e}"),
            NetError::RemoteProtocol(e) => {
                write!(f, "peer rejected frame: {e}")
            }
            NetError::Server(e) => write!(f, "server error: {e}"),
            NetError::Disconnected => {
                write!(f, "connection closed with replies outstanding")
            }
            NetError::UnexpectedId { id } => {
                write!(f, "reply for unknown request id {id}")
            }
            NetError::RepliesPending { count } => {
                write!(f, "{count} submitted replies still pending")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) | NetError::RemoteProtocol(e) => Some(e),
            NetError::Server(e) => Some(e),
            NetError::Disconnected
            | NetError::UnexpectedId { .. }
            | NetError::RepliesPending { .. } => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let wire = WireError::UnknownTag {
            context: "request",
            tag: 99,
        };
        assert!(wire.to_string().contains("request"));
        let net = NetError::Wire(wire.clone());
        assert!(net.to_string().contains("99"));
        assert!(std::error::Error::source(&net).is_some());
        let remote = NetError::RemoteProtocol(wire);
        assert!(remote.to_string().contains("rejected"));
        assert!(std::error::Error::source(&remote).is_some());
        let server = NetError::Server(ServerError::Overloaded);
        assert!(server.to_string().contains("full"));
        assert!(std::error::Error::source(&server).is_some());
        assert!(std::error::Error::source(&NetError::Disconnected).is_none());
        assert!(NetError::from(WireError::Truncated)
            .to_string()
            .contains("truncated"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(WireError::malformed("dup").to_string().contains("dup"));
        assert!(WireError::FrameTooLarge { len: 10, max: 5 }
            .to_string()
            .contains("cap"));
        assert!(WireError::TrailingBytes { extra: 3 }
            .to_string()
            .contains("3"));
        assert!(WireError::UnsupportedVersion { found: 7 }
            .to_string()
            .contains("7"));
        assert!(NetError::UnexpectedId { id: 4 }.to_string().contains("4"));
        let pending = NetError::RepliesPending { count: 3 };
        assert!(pending.to_string().contains("3"));
        assert!(std::error::Error::source(&pending).is_none());
    }
}
