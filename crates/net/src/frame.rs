//! Length-prefixed frame transport: the byte layer under the codec.
//!
//! On the socket, every frame is
//!
//! ```text
//! frame := payload_len:u32be payload_len bytes of payload
//! ```
//!
//! where the payload is a [`codec`](crate::codec) bit stream beginning
//! with the version byte. The length prefix is what lets a reader slice
//! frames off a TCP stream without understanding their contents; the cap
//! on `payload_len` is what keeps a corrupted or hostile prefix from
//! forcing a giant allocation.

use std::io::{ErrorKind, Read, Write};

use crate::error::{NetError, WireError};

/// Default cap on one *request* frame's payload: 64 MiB comfortably
/// holds a full-load `n = 1024` routing instance (~21 MB) while bounding
/// what a bad length prefix can demand.
pub const DEFAULT_MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// Default cap on one *reply* frame's payload, as enforced by the
/// client. Replies legitimately outgrow their requests — a `Sort`
/// request's 8-byte keys come back as 16-byte tagged keys, plus
/// per-round metrics — so a client capping replies at the request cap
/// would reject answers to requests the server validly accepted. 4x
/// gives the 2x worst-case data growth comfortable headroom.
pub const DEFAULT_MAX_REPLY_FRAME_BYTES: u64 = 4 * DEFAULT_MAX_FRAME_BYTES;

/// Writes one frame (length prefix + payload) as a single `write_all` —
/// one syscall and one TCP segment on unbuffered nodelay sockets, rather
/// than a 4-byte prefix segment followed by the payload. The caller
/// flushes.
///
/// # Errors
///
/// Propagates transport errors.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (unencodable length
/// prefix; the codec's own length caps keep real frames far below this).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    Ok(())
}

/// Reads one frame's payload, or `None` on a clean end-of-stream at a
/// frame boundary (the peer closed after its last complete frame).
///
/// # Errors
///
/// [`NetError::Disconnected`] if the stream ends inside a frame,
/// [`NetError::Wire`] with [`WireError::FrameTooLarge`] if the length
/// prefix exceeds `max_frame_bytes`, [`NetError::Io`] for transport
/// failures.
pub fn read_frame(r: &mut impl Read, max_frame_bytes: u64) -> Result<Option<Vec<u8>>, NetError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(NetError::Disconnected);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u64::from(u32::from_be_bytes(len_buf));
    if len > max_frame_bytes {
        return Err(NetError::Wire(WireError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(NetError::Disconnected),
        Err(e) => Err(NetError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"gamma!").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"gamma!"[..])
        );
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn eof_inside_a_frame_is_disconnection() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut inside the length prefix and inside the payload.
        for cut in [2usize, 7] {
            let mut r = Cursor::new(buf[..cut].to_vec());
            assert!(matches!(
                read_frame(&mut r, 1024),
                Err(NetError::Disconnected)
            ));
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_reading() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 100]).unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 64) {
            Err(NetError::Wire(WireError::FrameTooLarge { len: 100, max: 64 })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
