//! Length-prefixed frame transport: the byte layer under the codec.
//!
//! On the socket, every frame is
//!
//! ```text
//! frame := payload_len:u32be payload_len bytes of payload
//! ```
//!
//! where the payload is a [`codec`](crate::codec) bit stream beginning
//! with the version byte. The length prefix is what lets a reader slice
//! frames off a TCP stream without understanding their contents; the cap
//! on `payload_len` is what keeps a corrupted or hostile prefix from
//! forcing a giant allocation.

use std::io::{ErrorKind, Read, Write};
use std::ops::Range;

use crate::error::{NetError, WireError};

/// Default cap on one *request* frame's payload: 64 MiB comfortably
/// holds a full-load `n = 1024` routing instance (~21 MB) while bounding
/// what a bad length prefix can demand.
pub const DEFAULT_MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// Default cap on one *reply* frame's payload, as enforced by the
/// client. Replies legitimately outgrow their requests — a `Sort`
/// request's 8-byte keys come back as 16-byte tagged keys, plus
/// per-round metrics — so a client capping replies at the request cap
/// would reject answers to requests the server validly accepted. 4x
/// gives the 2x worst-case data growth comfortable headroom.
pub const DEFAULT_MAX_REPLY_FRAME_BYTES: u64 = 4 * DEFAULT_MAX_FRAME_BYTES;

/// Writes one frame (length prefix + payload) as a single `write_all` —
/// one syscall and one TCP segment on unbuffered nodelay sockets, rather
/// than a 4-byte prefix segment followed by the payload. The caller
/// flushes.
///
/// # Errors
///
/// Propagates transport errors.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes (unencodable length
/// prefix; the codec's own length caps keep real frames far below this).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    w.write_all(&frame_vec(payload))?;
    Ok(())
}

/// One frame (length prefix + payload) as a contiguous byte vector — the
/// unit a write queue holds so a nonblocking writer can resume a partial
/// send mid-frame.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes, as [`write_frame`].
pub fn frame_vec(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    frame_into(&mut buf, payload);
    buf
}

/// Builds one frame (length prefix + payload) into a reused buffer: the
/// write-side half of the zero-copy wire path. `buf` is cleared and
/// refilled; once it has grown to a connection's steady frame size, no
/// further allocation happens — the reactor recycles flushed outbound
/// buffers through exactly this call.
///
/// # Panics
///
/// Panics if `payload` exceeds `u32::MAX` bytes, as [`write_frame`].
pub fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    buf.clear();
    buf.reserve(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
}

/// Reads one frame's payload, or `None` on a clean end-of-stream at a
/// frame boundary (the peer closed after its last complete frame).
///
/// # Errors
///
/// [`NetError::Disconnected`] if the stream ends inside a frame,
/// [`NetError::Wire`] with [`WireError::FrameTooLarge`] if the length
/// prefix exceeds `max_frame_bytes`, [`NetError::Io`] for transport
/// failures.
pub fn read_frame(r: &mut impl Read, max_frame_bytes: u64) -> Result<Option<Vec<u8>>, NetError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(NetError::Disconnected);
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u64::from(u32::from_be_bytes(len_buf));
    if len > max_frame_bytes {
        return Err(NetError::Wire(WireError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(NetError::Disconnected),
        Err(e) => Err(NetError::Io(e)),
    }
}

/// An incremental frame slicer over **one reused buffer**: bytes are
/// appended by [`fill_from`](FrameDecoder::fill_from) (each call is a
/// single `read`, so it composes with nonblocking sockets), complete
/// frames are sliced off by [`next_frame`](FrameDecoder::next_frame), and
/// the backing `Vec<u8>` is never reallocated while frame sizes stay
/// within what the connection has already seen — the first bite of the
/// zero-copy wire path: steady-state traffic does **zero** per-frame
/// allocations on the read side (pinned by a capacity test below).
///
/// This replaces the allocate-per-frame [`read_frame`] on both hot read
/// paths (the reactor's connections and the client); `read_frame` remains
/// for one-shot raw-stream uses.
///
/// Layout: `buf[start..end]` holds unconsumed bytes. A frame must be
/// contiguous from `start`, so the decoder compacts (copies the tail to
/// offset 0) before growing — memory stays bounded by one maximal frame.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

/// Initial backing-buffer size: enough for a burst of small control
/// frames without growth; large frames grow the buffer once and keep it.
const INITIAL_DECODER_CAPACITY: usize = 4 * 1024;

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// An empty decoder with the default initial capacity.
    pub fn new() -> Self {
        FrameDecoder {
            buf: vec![0; INITIAL_DECODER_CAPACITY],
            start: 0,
            end: 0,
        }
    }

    /// Unconsumed bytes currently buffered.
    #[inline]
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Whether bytes are buffered that do not yet form a complete frame's
    /// worth of input — i.e. a partial frame is pending. (Exactly the
    /// read-idle condition a slow-loris deadline watches.) Bytes that do
    /// form complete frames but have not been sliced yet do not count.
    pub fn has_partial_frame(&self) -> bool {
        let buffered = self.buffered();
        if buffered == 0 {
            return false;
        }
        if buffered < 4 {
            return true;
        }
        let len = u32::from_be_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        buffered < 4 + len
    }

    /// The backing buffer's size in bytes (for no-realloc assertions).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Discards all buffered bytes; keeps the backing buffer.
    pub fn clear(&mut self) {
        self.start = 0;
        self.end = 0;
    }

    /// Appends bytes with one `read` into the buffer's spare room,
    /// growing (after compaction) only when there is none. Returns the
    /// byte count — `Ok(0)` is end-of-stream. On a nonblocking source,
    /// `ErrorKind::WouldBlock` simply means "nothing available now".
    ///
    /// # Errors
    ///
    /// Propagates the underlying `read` error untouched.
    pub fn fill_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        if self.end == self.buf.len() {
            if self.start > 0 {
                self.compact();
            }
            if self.end == self.buf.len() {
                let grown = (self.buf.len() * 2).max(INITIAL_DECODER_CAPACITY);
                self.buf.resize(grown, 0);
            }
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Slices the next complete frame off the buffer, returning the
    /// payload's range (resolve it with [`payload`](FrameDecoder::payload))
    /// or `None` when the buffered bytes end mid-frame. Oversized length
    /// prefixes are rejected *before* any allocation, exactly like
    /// [`read_frame`].
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] when the length prefix exceeds
    /// `max_frame_bytes`.
    pub fn next_frame(&mut self, max_frame_bytes: u64) -> Result<Option<Range<usize>>, WireError> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let len = u64::from(u32::from_be_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4-byte slice"),
        ));
        if len > max_frame_bytes {
            return Err(WireError::FrameTooLarge {
                len,
                max: max_frame_bytes,
            });
        }
        let total = 4 + len as usize;
        if self.buffered() < total {
            // Pre-size for the announced frame so the remaining fills land
            // without growth churn: compact first (the frame must sit
            // contiguous from `start`), then grow once if still short.
            if self.buf.len() - self.start < total {
                self.compact();
                if self.buf.len() < total {
                    self.buf.resize(total, 0);
                }
            }
            return Ok(None);
        }
        let payload = self.start + 4..self.start + total;
        self.start += total;
        if self.start == self.end {
            // Frame boundary with nothing pending: rewind for free instead
            // of compacting later.
            self.start = 0;
            self.end = 0;
        }
        Ok(Some(payload))
    }

    /// Resolves a range returned by [`next_frame`](FrameDecoder::next_frame)
    /// against the backing buffer. Valid until the next `fill_from` /
    /// `next_frame` / `clear` call.
    #[inline]
    pub fn payload(&self, range: Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    fn compact(&mut self) {
        self.buf.copy_within(self.start..self.end, 0);
        self.end -= self.start;
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"gamma!").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().as_deref(),
            Some(&b"gamma!"[..])
        );
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn eof_inside_a_frame_is_disconnection() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut inside the length prefix and inside the payload.
        for cut in [2usize, 7] {
            let mut r = Cursor::new(buf[..cut].to_vec());
            assert!(matches!(
                read_frame(&mut r, 1024),
                Err(NetError::Disconnected)
            ));
        }
    }

    #[test]
    fn decoder_slices_frames_fed_byte_by_byte() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[9u8; 300]).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for byte in wire {
            let n = dec.fill_from(&mut Cursor::new([byte])).unwrap();
            assert_eq!(n, 1);
            while let Some(range) = dec.next_frame(1024).unwrap() {
                got.push(dec.payload(range).to_vec());
            }
            // Between frames the partial flag tracks exactly whether bytes
            // are pending that do not yet complete a frame.
            assert_eq!(dec.has_partial_frame(), dec.buffered() > 0);
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"alpha");
        assert_eq!(got[1], b"");
        assert_eq!(got[2], vec![9u8; 300]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_allocating() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[7u8; 100]).unwrap();
        let mut dec = FrameDecoder::new();
        dec.fill_from(&mut Cursor::new(&wire)).unwrap();
        let before = dec.capacity();
        match dec.next_frame(64) {
            Err(WireError::FrameTooLarge { len: 100, max: 64 }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert_eq!(dec.capacity(), before, "rejection must not allocate");
    }

    /// The zero-copy contract of the read path: after the first frame of a
    /// given size has passed through, further frames of that size (or
    /// smaller) reuse the same backing buffer — no reallocation, no
    /// per-frame `Vec`. Pinned via raw-pointer and capacity identity.
    #[test]
    fn decoder_reuses_one_buffer_across_frames_without_reallocating() {
        const BODY: usize = 9 * 1024; // bigger than the initial capacity
        let mut wire = Vec::new();
        for round in 0u8..16 {
            write_frame(&mut wire, &vec![round; BODY]).unwrap();
        }
        let mut cursor = Cursor::new(&wire);
        let mut dec = FrameDecoder::new();

        // Warm-up: pull exactly one frame through (growing as needed).
        let mut seen = 0u8;
        while seen == 0 {
            dec.fill_from(&mut cursor).unwrap();
            while let Some(range) = dec.next_frame(1 << 20).unwrap() {
                assert_eq!(dec.payload(range).len(), BODY);
                seen += 1;
            }
        }
        let pinned_capacity = dec.capacity();
        let pinned_ptr = dec.buf.as_ptr();
        assert!(pinned_capacity >= BODY + 4);

        // Steady state: every remaining frame reuses the warmed buffer.
        loop {
            let n = dec.fill_from(&mut cursor).unwrap();
            while let Some(range) = dec.next_frame(1 << 20).unwrap() {
                let round = dec.payload(range.clone())[0];
                assert_eq!(dec.payload(range), &vec![round; BODY][..]);
                seen += 1;
            }
            assert_eq!(dec.capacity(), pinned_capacity, "realloc after warm-up");
            assert_eq!(dec.buf.as_ptr(), pinned_ptr, "buffer moved after warm-up");
            if n == 0 {
                break;
            }
        }
        assert_eq!(seen, 16);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_reading() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 100]).unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 64) {
            Err(NetError::Wire(WireError::FrameTooLarge { len: 100, max: 64 })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
