//! The versioned binary codec: every frame payload is produced and
//! consumed here.
//!
//! # Frame payload format
//!
//! A payload is a plain MSB-first bit stream written with
//! [`cc_core::wire::BitWriter`] — the same bit-exact machinery the
//! simulator uses to charge message sizes. Every field is a fixed-width
//! unsigned integer whose width is a multiple of 8 bits, so payloads are
//! byte-aligned end to end and a valid payload has no padding:
//!
//! ```text
//! payload := version:u8 kind:u8 id:u64 body
//! kind    := 0 REQUEST       (body = request)
//!            1 REPLY         (body = result)
//!            2 PROTO_ERR     (body = wire_error)
//!            3 STATS_REQUEST (body = empty)
//!            4 STATS_REPLY   (body = snapshot)
//! ```
//!
//! A `snapshot` is a whole [`cc_core::obs::Snapshot`]: counters and
//! gauges as `(string, u64)` pairs (gauges in two's complement), then
//! histograms as `(string, sum:u64, max:u64, nonzero:u8,
//! (bucket:u8, count:u64)*)` with bucket indices strictly increasing
//! and counts non-zero — the sparse form is canonical, so stats frames
//! round-trip losslessly byte-for-byte like every other frame.
//!
//! Composite rules, applied recursively:
//!
//! * `vec<T>` := `len:u32` followed by `len` encodings of `T`;
//! * `string` := `len:u32` followed by `len` UTF-8 bytes;
//! * `option<T>` := `present:u8` (0 or 1) then `T` if present;
//! * enums := `tag:u8` then the variant's fields in declaration order.
//!
//! Decoding is **total and deterministic**: any byte sequence either
//! decodes to exactly one [`Frame`] or to exactly one [`WireError`], with
//! trailing bytes and out-of-range tags rejected. Semantic validation
//! (e.g. the Problem 3.1 bounds of a routing instance) runs during
//! decode, so a frame that decodes structurally but violates instance
//! invariants is a deterministic [`WireError::Malformed`].

use cc_core::obs::{HistogramSnapshot, Snapshot, HISTOGRAM_BUCKETS};
use cc_core::routing::{RouteOutcome, RoutedMessage, RoutingInstance};
use cc_core::sorting::{
    IndexOutcome, ModeOutcome, SelectOutcome, SmallKeyOutcome, SortOutcome, TaggedKey,
};
use cc_core::wire::{BitReader, BitWriter};
use cc_core::{
    CoreError, EdgeLoadHistogram, Metrics, NodeId, Outcome, RoundMetrics, SimError, WorkMeter,
};
use cc_server::{Request, ServerError};

use crate::error::WireError;

/// The wire protocol version carried in every frame's first payload byte.
pub const WIRE_VERSION: u8 = 1;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;
const KIND_PROTO_ERR: u8 = 2;
const KIND_STATS_REQUEST: u8 = 3;
const KIND_STATS_REPLY: u8 = 4;

/// What one reply carries: the unified [`Outcome`] or the exact
/// [`ServerError`] — the same type an in-process
/// [`ServiceHandle::call`](cc_server::ServiceHandle::call) returns.
pub type WireResult = Result<Outcome, ServerError>;

/// A decoded frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A client query, tagged with the client-chosen request id.
    Request {
        /// Correlation id, echoed verbatim in the reply.
        id: u64,
        /// The decoded request.
        request: Request,
    },
    /// A server answer for request `id`.
    Reply {
        /// The id of the request this answers.
        id: u64,
        /// Outcome or server-level error, losslessly encoded.
        result: WireResult,
    },
    /// The peer could not decode a frame this side sent; the connection
    /// is dead after this. `id` is the offending request's id when the
    /// peer got far enough to parse it, else 0.
    ProtocolError {
        /// Best-effort id of the offending frame.
        id: u64,
        /// The decode failure, losslessly encoded.
        error: WireError,
    },
    /// A client's request for the server's live metric registry. Answered
    /// inline by the connection layer — it never enters the shard queues,
    /// so a stats poll cannot be delayed by fleet backpressure.
    StatsRequest {
        /// Correlation id, echoed verbatim in the stats reply.
        id: u64,
    },
    /// The whole-registry snapshot answering stats request `id`.
    StatsReply {
        /// The id of the stats request this answers.
        id: u64,
        /// Every counter, gauge and histogram, losslessly encoded.
        snapshot: Snapshot,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn header(w: &mut BitWriter, kind: u8, id: u64) {
    w.write_bits(u64::from(WIRE_VERSION), 8);
    w.write_bits(u64::from(kind), 8);
    w.write_bits(id, 64);
}

fn put_u8(w: &mut BitWriter, v: u8) {
    w.write_bits(u64::from(v), 8);
}

fn put_u32(w: &mut BitWriter, v: u32) {
    w.write_bits(u64::from(v), 32);
}

fn put_u64(w: &mut BitWriter, v: u64) {
    w.write_bits(v, 64);
}

/// Lengths travel as `u32`.
///
/// # Panics
///
/// Panics if `len` exceeds `u32::MAX` (a four-billion-element collection
/// is far outside the serviceable range).
fn put_len(w: &mut BitWriter, len: usize) {
    put_u32(
        w,
        u32::try_from(len).expect("collection length exceeds u32"),
    );
}

fn put_string(w: &mut BitWriter, s: &str) {
    put_len(w, s.len());
    for b in s.bytes() {
        put_u8(w, b);
    }
}

fn put_node(w: &mut BitWriter, node: NodeId) {
    put_u32(w, node.index() as u32);
}

fn put_message_lists(w: &mut BitWriter, lists: &[Vec<RoutedMessage>]) {
    put_len(w, lists.len());
    for list in lists {
        put_len(w, list.len());
        for m in list {
            put_node(w, m.src);
            put_node(w, m.dst);
            put_u32(w, m.seq);
            put_u64(w, m.payload);
        }
    }
}

fn put_keys(w: &mut BitWriter, keys: &[Vec<u64>]) {
    put_len(w, keys.len());
    for list in keys {
        put_len(w, list.len());
        for &k in list {
            put_u64(w, k);
        }
    }
}

fn put_tagged_keys(w: &mut BitWriter, lists: &[Vec<TaggedKey>]) {
    put_len(w, lists.len());
    for list in lists {
        put_len(w, list.len());
        for k in list {
            put_u64(w, k.key);
            put_node(w, k.origin);
            put_u32(w, k.index_at_origin);
        }
    }
}

fn put_u64s(w: &mut BitWriter, values: &[u64]) {
    put_len(w, values.len());
    for &v in values {
        put_u64(w, v);
    }
}

fn put_metrics(w: &mut BitWriter, metrics: &Metrics) {
    put_len(w, metrics.rounds().len());
    for round in metrics.rounds() {
        put_u64(w, round.messages);
        put_u64(w, round.bits);
        put_u64(w, round.max_edge_bits);
        put_u64(w, round.busy_edges);
    }
    match metrics.edge_histogram() {
        None => put_u8(w, 0),
        Some(h) => {
            put_u8(w, 1);
            put_len(w, h.iter().count());
            for (bits, count) in h.iter() {
                put_u64(w, bits);
                put_u64(w, count);
            }
        }
    }
    put_len(w, metrics.node_work().len());
    for meter in metrics.node_work() {
        put_u64(w, meter.steps());
        put_u64(w, meter.peak_mem_words());
    }
}

fn put_request(w: &mut BitWriter, request: &Request) {
    match request {
        Request::Route(inst) => {
            put_u8(w, 0);
            put_u32(w, inst.n() as u32);
            put_message_lists(w, inst.all_sends());
        }
        Request::RouteOptimized(inst) => {
            put_u8(w, 1);
            put_u32(w, inst.n() as u32);
            put_message_lists(w, inst.all_sends());
        }
        Request::Sort(keys) => {
            put_u8(w, 2);
            put_keys(w, keys);
        }
        Request::GlobalIndices(keys) => {
            put_u8(w, 3);
            put_keys(w, keys);
        }
        Request::Select { keys, rank } => {
            put_u8(w, 4);
            put_keys(w, keys);
            put_u64(w, *rank);
        }
        Request::Mode(keys) => {
            put_u8(w, 5);
            put_keys(w, keys);
        }
        Request::SmallKeyCensus { keys, key_bits } => {
            put_u8(w, 6);
            put_keys(w, keys);
            put_u32(w, *key_bits);
        }
        // `Request` is non_exhaustive-by-evolution: a variant this codec
        // does not know cannot be put on the wire.
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable request variant {other:?}"),
    }
}

fn put_outcome(w: &mut BitWriter, outcome: &Outcome) {
    match outcome {
        Outcome::Route(o) => {
            put_u8(w, 0);
            put_message_lists(w, &o.delivered);
            put_metrics(w, &o.metrics);
        }
        Outcome::Sort(o) => {
            put_u8(w, 1);
            put_tagged_keys(w, &o.batches);
            put_u64s(w, &o.offsets);
            put_u64(w, o.total);
            put_metrics(w, &o.metrics);
        }
        Outcome::Indices(o) => {
            put_u8(w, 2);
            put_keys(w, &o.indices);
            put_metrics(w, &o.metrics);
        }
        Outcome::Select(o) => {
            put_u8(w, 3);
            put_u64(w, o.key);
            put_metrics(w, &o.metrics);
        }
        Outcome::Mode(o) => {
            put_u8(w, 4);
            put_u64(w, o.key);
            put_u64(w, o.count);
            put_metrics(w, &o.metrics);
        }
        Outcome::SmallKeys(o) => {
            put_u8(w, 5);
            put_u64s(w, &o.totals);
            put_keys(w, &o.prefix);
            put_metrics(w, &o.metrics);
        }
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable outcome variant {other:?}"),
    }
}

fn put_sim_error(w: &mut BitWriter, error: &SimError) {
    match error {
        SimError::BudgetExceeded {
            round,
            src,
            dst,
            bits,
            budget,
        } => {
            put_u8(w, 0);
            put_u64(w, *round);
            put_node(w, *src);
            put_node(w, *dst);
            put_u64(w, *bits);
            put_u64(w, *budget);
        }
        SimError::TooManyRounds { limit } => {
            put_u8(w, 1);
            put_u64(w, *limit);
        }
        SimError::Stalled {
            round,
            finished,
            total,
        } => {
            put_u8(w, 2);
            put_u64(w, *round);
            put_u64(w, *finished as u64);
            put_u64(w, *total as u64);
        }
        SimError::MessageToFinishedNode { round, src, dst } => {
            put_u8(w, 3);
            put_u64(w, *round);
            put_node(w, *src);
            put_node(w, *dst);
        }
        SimError::DestinationOutOfRange { src, dst, n } => {
            put_u8(w, 4);
            put_node(w, *src);
            put_u64(w, *dst as u64);
            put_u64(w, *n as u64);
        }
        SimError::InvalidSpec { reason } => {
            put_u8(w, 5);
            put_string(w, reason);
        }
        SimError::NodeCountMismatch { expected, actual } => {
            put_u8(w, 6);
            put_u64(w, *expected as u64);
            put_u64(w, *actual as u64);
        }
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable simulator error {other:?}"),
    }
}

fn put_core_error(w: &mut BitWriter, error: &CoreError) {
    match error {
        CoreError::InvalidInstance { reason } => {
            put_u8(w, 0);
            put_string(w, reason);
        }
        CoreError::Sim(e) => {
            put_u8(w, 1);
            put_sim_error(w, e);
        }
        CoreError::VerificationFailed { reason } => {
            put_u8(w, 2);
            put_string(w, reason);
        }
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable core error {other:?}"),
    }
}

fn put_server_error(w: &mut BitWriter, error: &ServerError) {
    match error {
        ServerError::InvalidConfig { reason } => {
            put_u8(w, 0);
            put_string(w, reason);
        }
        ServerError::Overloaded => put_u8(w, 1),
        ServerError::ShutDown => put_u8(w, 2),
        ServerError::Query(e) => {
            put_u8(w, 3);
            put_core_error(w, e);
        }
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable server error {other:?}"),
    }
}

fn put_wire_error(w: &mut BitWriter, error: &WireError) {
    match error {
        WireError::Truncated => put_u8(w, 0),
        WireError::UnsupportedVersion { found } => {
            put_u8(w, 1);
            put_u8(w, *found);
        }
        WireError::UnknownTag { context, tag } => {
            put_u8(w, 2);
            put_string(w, context);
            put_u64(w, *tag);
        }
        WireError::Malformed { reason } => {
            put_u8(w, 3);
            put_string(w, reason);
        }
        WireError::TrailingBytes { extra } => {
            put_u8(w, 4);
            put_u64(w, *extra);
        }
        WireError::FrameTooLarge { len, max } => {
            put_u8(w, 5);
            put_u64(w, *len);
            put_u64(w, *max);
        }
        #[allow(unreachable_patterns)]
        other => unreachable!("unencodable wire error {other:?}"),
    }
}

/// Encodes a request frame payload.
pub fn encode_request(id: u64, request: &Request) -> Vec<u8> {
    let mut w = BitWriter::new();
    header(&mut w, KIND_REQUEST, id);
    put_request(&mut w, request);
    w.finish()
}

/// Encodes a reply frame payload — outcome or server error, losslessly.
pub fn encode_reply(id: u64, result: &WireResult) -> Vec<u8> {
    let mut w = BitWriter::new();
    header(&mut w, KIND_REPLY, id);
    match result {
        Ok(outcome) => {
            put_u8(&mut w, 0);
            put_outcome(&mut w, outcome);
        }
        Err(e) => {
            put_u8(&mut w, 1);
            put_server_error(&mut w, e);
        }
    }
    w.finish()
}

/// Encodes the connection-fatal "your frame did not decode" notice.
pub fn encode_protocol_error(id: u64, error: &WireError) -> Vec<u8> {
    let mut w = BitWriter::new();
    header(&mut w, KIND_PROTO_ERR, id);
    put_wire_error(&mut w, error);
    w.finish()
}

fn put_histogram(w: &mut BitWriter, h: &HistogramSnapshot) {
    put_u64(w, h.sum);
    put_u64(w, h.max);
    let nonzero: Vec<(usize, u64)> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| (i, c))
        .collect();
    put_u8(w, nonzero.len() as u8);
    for (index, count) in nonzero {
        put_u8(w, index as u8);
        put_u64(w, count);
    }
}

fn put_snapshot(w: &mut BitWriter, snapshot: &Snapshot) {
    put_len(w, snapshot.counters.len());
    for (name, v) in &snapshot.counters {
        put_string(w, name);
        put_u64(w, *v);
    }
    put_len(w, snapshot.gauges.len());
    for (name, v) in &snapshot.gauges {
        put_string(w, name);
        // Two's complement: the decoder reverses the cast losslessly.
        put_u64(w, *v as u64);
    }
    put_len(w, snapshot.histograms.len());
    for (name, h) in &snapshot.histograms {
        put_string(w, name);
        put_histogram(w, h);
    }
}

/// Encodes a stats-request frame payload (header only — the request
/// carries no body).
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    let mut w = BitWriter::new();
    header(&mut w, KIND_STATS_REQUEST, id);
    w.finish()
}

/// Encodes a stats-reply frame payload: the whole registry snapshot,
/// histograms in sparse canonical form (only non-zero buckets travel).
pub fn encode_stats_reply(id: u64, snapshot: &Snapshot) -> Vec<u8> {
    let mut w = BitWriter::new();
    header(&mut w, KIND_STATS_REPLY, id);
    put_snapshot(&mut w, snapshot);
    w.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    r: BitReader<'a>,
    total_bytes: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec {
            r: BitReader::new(buf),
            total_bytes: buf.len(),
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        self.r
            .read_bits(8)
            .map(|v| v as u8)
            .ok_or(WireError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        self.r
            .read_bits(32)
            .map(|v| v as u32)
            .ok_or(WireError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        self.r.read_bits(64).ok_or(WireError::Truncated)
    }

    fn len(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }

    /// A length about to drive an allocation: `len` elements of at least
    /// `elem_bytes` encoded bytes each must be satisfiable by the bytes
    /// actually present, so a corrupted or hostile length prefix cannot
    /// force an allocation beyond (a fraction of) the frame's own size —
    /// the stream would provably run dry first.
    fn checked_len(&mut self, elem_bytes: u64) -> Result<usize, WireError> {
        let len = self.len()?;
        let remaining_bytes = self.total_bytes as u64 - self.r.position() / 8;
        if (len as u64).saturating_mul(elem_bytes) > remaining_bytes {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.checked_len(1)?;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(self.u8()?);
        }
        String::from_utf8(bytes).map_err(|_| WireError::malformed("string is not UTF-8"))
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId::new(self.u32()? as usize))
    }

    /// Rejects payloads with unread whole bytes. (All field widths are
    /// multiples of 8 bits, so a fully consumed valid payload always ends
    /// exactly on the final byte.)
    fn finish(self) -> Result<(), WireError> {
        let consumed_bytes = self.r.position().div_ceil(8);
        let extra = self.total_bytes as u64 - consumed_bytes;
        if extra > 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

// Minimum encoded sizes (bytes) of the variable-count elements, used to
// bound every length-driven allocation against the frame's actual size.
const LIST_MIN: u64 = 4; // an empty inner vec is its u32 length
const MESSAGE_BYTES: u64 = 20; // src u32 + dst u32 + seq u32 + payload u64
const U64_BYTES: u64 = 8;
const TAGGED_KEY_BYTES: u64 = 16; // key u64 + origin u32 + index u32
const ROUND_BYTES: u64 = 32; // four u64 counters
const PAIR_BYTES: u64 = 16; // (bits, count)
const METER_BYTES: u64 = 16; // steps + peak words

fn get_message_lists(d: &mut Dec<'_>) -> Result<Vec<Vec<RoutedMessage>>, WireError> {
    let outer = d.checked_len(LIST_MIN)?;
    let mut lists = Vec::with_capacity(outer);
    for _ in 0..outer {
        let inner = d.checked_len(MESSAGE_BYTES)?;
        let mut list = Vec::with_capacity(inner);
        for _ in 0..inner {
            let src = d.node()?;
            let dst = d.node()?;
            let seq = d.u32()?;
            let payload = d.u64()?;
            list.push(RoutedMessage::new(src, dst, seq, payload));
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Rebuilds a routing instance, re-running the Problem 3.1 validation the
/// sender's constructor ran. The load cap is recomputed from the decoded
/// lists (the cap is not stored by `RoutingInstance`), so any instance
/// that was constructible on the sending side — including the overloaded
/// `with_max_load` instances — reconstructs identically, while corrupted
/// lists (wrong `src`, out-of-range `dst`, duplicate identities) are a
/// deterministic [`WireError::Malformed`].
fn get_instance(d: &mut Dec<'_>) -> Result<RoutingInstance, WireError> {
    let n = d.u32()? as usize;
    let sends = get_message_lists(d)?;
    if sends.len() != n {
        return Err(WireError::malformed(format!(
            "instance advertises n={n} but carries {} send lists",
            sends.len()
        )));
    }
    let mut max_load = n;
    let mut receives = vec![0usize; n];
    for list in &sends {
        max_load = max_load.max(list.len());
        for m in list {
            if m.dst.index() < n {
                receives[m.dst.index()] += 1;
            }
        }
    }
    max_load = max_load.max(receives.iter().copied().max().unwrap_or(0));
    RoutingInstance::with_max_load(n, sends, max_load)
        .map_err(|e| WireError::malformed(format!("invalid routing instance: {e}")))
}

fn get_keys(d: &mut Dec<'_>) -> Result<Vec<Vec<u64>>, WireError> {
    let outer = d.checked_len(LIST_MIN)?;
    let mut keys = Vec::with_capacity(outer);
    for _ in 0..outer {
        let inner = d.checked_len(U64_BYTES)?;
        let mut list = Vec::with_capacity(inner);
        for _ in 0..inner {
            list.push(d.u64()?);
        }
        keys.push(list);
    }
    Ok(keys)
}

fn get_tagged_keys(d: &mut Dec<'_>) -> Result<Vec<Vec<TaggedKey>>, WireError> {
    let outer = d.checked_len(LIST_MIN)?;
    let mut lists = Vec::with_capacity(outer);
    for _ in 0..outer {
        let inner = d.checked_len(TAGGED_KEY_BYTES)?;
        let mut list = Vec::with_capacity(inner);
        for _ in 0..inner {
            let key = d.u64()?;
            let origin = d.node()?;
            let index_at_origin = d.u32()?;
            list.push(TaggedKey {
                key,
                origin,
                index_at_origin,
            });
        }
        lists.push(list);
    }
    Ok(lists)
}

fn get_u64s(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let len = d.checked_len(U64_BYTES)?;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(d.u64()?);
    }
    Ok(values)
}

fn get_metrics(d: &mut Dec<'_>) -> Result<Metrics, WireError> {
    let rounds = d.checked_len(ROUND_BYTES)?;
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        per_round.push(RoundMetrics {
            messages: d.u64()?,
            bits: d.u64()?,
            max_edge_bits: d.u64()?,
            busy_edges: d.u64()?,
        });
    }
    let histogram = match d.u8()? {
        0 => None,
        1 => {
            let pairs = d.checked_len(PAIR_BYTES)?;
            let mut loads = Vec::with_capacity(pairs);
            for _ in 0..pairs {
                loads.push((d.u64()?, d.u64()?));
            }
            Some(EdgeLoadHistogram::from_pairs(loads))
        }
        tag => {
            return Err(WireError::UnknownTag {
                context: "histogram presence",
                tag: u64::from(tag),
            })
        }
    };
    let meters = d.checked_len(METER_BYTES)?;
    let mut node_work = Vec::with_capacity(meters);
    for _ in 0..meters {
        let mut meter = WorkMeter::new();
        meter.charge(d.u64()?);
        meter.note_mem(d.u64()?);
        node_work.push(meter);
    }
    Ok(Metrics::from_parts(per_round, histogram, node_work))
}

fn get_request(d: &mut Dec<'_>) -> Result<Request, WireError> {
    match d.u8()? {
        0 => Ok(Request::Route(get_instance(d)?)),
        1 => Ok(Request::RouteOptimized(get_instance(d)?)),
        2 => Ok(Request::Sort(get_keys(d)?)),
        3 => Ok(Request::GlobalIndices(get_keys(d)?)),
        4 => Ok(Request::Select {
            keys: get_keys(d)?,
            rank: d.u64()?,
        }),
        5 => Ok(Request::Mode(get_keys(d)?)),
        6 => Ok(Request::SmallKeyCensus {
            keys: get_keys(d)?,
            key_bits: d.u32()?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "request",
            tag: u64::from(tag),
        }),
    }
}

fn get_outcome(d: &mut Dec<'_>) -> Result<Outcome, WireError> {
    match d.u8()? {
        0 => Ok(Outcome::Route(RouteOutcome {
            delivered: get_message_lists(d)?,
            metrics: get_metrics(d)?,
        })),
        1 => Ok(Outcome::Sort(SortOutcome {
            batches: get_tagged_keys(d)?,
            offsets: get_u64s(d)?,
            total: d.u64()?,
            metrics: get_metrics(d)?,
        })),
        2 => Ok(Outcome::Indices(IndexOutcome {
            indices: get_keys(d)?,
            metrics: get_metrics(d)?,
        })),
        3 => Ok(Outcome::Select(SelectOutcome {
            key: d.u64()?,
            metrics: get_metrics(d)?,
        })),
        4 => Ok(Outcome::Mode(ModeOutcome {
            key: d.u64()?,
            count: d.u64()?,
            metrics: get_metrics(d)?,
        })),
        5 => Ok(Outcome::SmallKeys(SmallKeyOutcome {
            totals: get_u64s(d)?,
            prefix: get_keys(d)?,
            metrics: get_metrics(d)?,
        })),
        tag => Err(WireError::UnknownTag {
            context: "outcome",
            tag: u64::from(tag),
        }),
    }
}

fn get_sim_error(d: &mut Dec<'_>) -> Result<SimError, WireError> {
    match d.u8()? {
        0 => Ok(SimError::BudgetExceeded {
            round: d.u64()?,
            src: d.node()?,
            dst: d.node()?,
            bits: d.u64()?,
            budget: d.u64()?,
        }),
        1 => Ok(SimError::TooManyRounds { limit: d.u64()? }),
        2 => Ok(SimError::Stalled {
            round: d.u64()?,
            finished: d.u64()? as usize,
            total: d.u64()? as usize,
        }),
        3 => Ok(SimError::MessageToFinishedNode {
            round: d.u64()?,
            src: d.node()?,
            dst: d.node()?,
        }),
        4 => Ok(SimError::DestinationOutOfRange {
            src: d.node()?,
            dst: d.u64()? as usize,
            n: d.u64()? as usize,
        }),
        5 => Ok(SimError::InvalidSpec {
            reason: d.string()?,
        }),
        6 => Ok(SimError::NodeCountMismatch {
            expected: d.u64()? as usize,
            actual: d.u64()? as usize,
        }),
        tag => Err(WireError::UnknownTag {
            context: "simulator error",
            tag: u64::from(tag),
        }),
    }
}

fn get_core_error(d: &mut Dec<'_>) -> Result<CoreError, WireError> {
    match d.u8()? {
        0 => Ok(CoreError::InvalidInstance {
            reason: d.string()?,
        }),
        1 => Ok(CoreError::Sim(get_sim_error(d)?)),
        2 => Ok(CoreError::VerificationFailed {
            reason: d.string()?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "core error",
            tag: u64::from(tag),
        }),
    }
}

fn get_server_error(d: &mut Dec<'_>) -> Result<ServerError, WireError> {
    match d.u8()? {
        0 => Ok(ServerError::InvalidConfig {
            reason: d.string()?,
        }),
        1 => Ok(ServerError::Overloaded),
        2 => Ok(ServerError::ShutDown),
        3 => Ok(ServerError::Query(get_core_error(d)?)),
        tag => Err(WireError::UnknownTag {
            context: "server error",
            tag: u64::from(tag),
        }),
    }
}

fn get_wire_error(d: &mut Dec<'_>) -> Result<WireError, WireError> {
    match d.u8()? {
        0 => Ok(WireError::Truncated),
        1 => Ok(WireError::UnsupportedVersion { found: d.u8()? }),
        2 => {
            let context = d.string()?;
            let tag = d.u64()?;
            // `context` is `&'static str` in the struct; intern the known
            // ones, fall back to a generic label for forward compatibility.
            let context = KNOWN_TAG_CONTEXTS
                .iter()
                .copied()
                .find(|&k| k == context)
                .unwrap_or("peer-reported field");
            Ok(WireError::UnknownTag { context, tag })
        }
        3 => Ok(WireError::Malformed {
            reason: d.string()?,
        }),
        4 => Ok(WireError::TrailingBytes { extra: d.u64()? }),
        5 => Ok(WireError::FrameTooLarge {
            len: d.u64()?,
            max: d.u64()?,
        }),
        tag => Err(WireError::UnknownTag {
            context: "wire error",
            tag: u64::from(tag),
        }),
    }
}

// Minimum encoded bytes of one snapshot entry: empty name (u32 len) +
// u64 value for counters/gauges; name + sum + max + nonzero-count for
// histograms.
const STAT_ENTRY_BYTES: u64 = 12;
const HIST_ENTRY_BYTES: u64 = 21;

fn get_histogram(d: &mut Dec<'_>) -> Result<HistogramSnapshot, WireError> {
    let sum = d.u64()?;
    let max = d.u64()?;
    let nonzero = d.u8()? as usize;
    if nonzero > HISTOGRAM_BUCKETS {
        return Err(WireError::malformed(format!(
            "histogram claims {nonzero} non-zero buckets of {HISTOGRAM_BUCKETS}"
        )));
    }
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut prev: Option<usize> = None;
    for _ in 0..nonzero {
        let index = d.u8()? as usize;
        if index >= HISTOGRAM_BUCKETS {
            return Err(WireError::malformed(format!(
                "histogram bucket index {index} out of range"
            )));
        }
        if prev.is_some_and(|p| index <= p) {
            return Err(WireError::malformed(
                "histogram bucket indices are not strictly increasing",
            ));
        }
        let count = d.u64()?;
        if count == 0 {
            // Zero counts never travel: the sparse form stays canonical,
            // so encode(decode(bytes)) reproduces `bytes` exactly.
            return Err(WireError::malformed("histogram carries a zero bucket"));
        }
        buckets[index] = count;
        prev = Some(index);
    }
    Ok(HistogramSnapshot { buckets, sum, max })
}

fn get_snapshot(d: &mut Dec<'_>) -> Result<Snapshot, WireError> {
    let counters_len = d.checked_len(STAT_ENTRY_BYTES)?;
    let mut counters = Vec::with_capacity(counters_len);
    for _ in 0..counters_len {
        let name = d.string()?;
        counters.push((name, d.u64()?));
    }
    let gauges_len = d.checked_len(STAT_ENTRY_BYTES)?;
    let mut gauges = Vec::with_capacity(gauges_len);
    for _ in 0..gauges_len {
        let name = d.string()?;
        gauges.push((name, d.u64()? as i64));
    }
    let histograms_len = d.checked_len(HIST_ENTRY_BYTES)?;
    let mut histograms = Vec::with_capacity(histograms_len);
    for _ in 0..histograms_len {
        let name = d.string()?;
        histograms.push((name, get_histogram(d)?));
    }
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Every `context` label this codec emits in [`WireError::UnknownTag`];
/// used to restore the `&'static str` when the error itself crosses the
/// wire. Keep in sync with the `UnknownTag` construction sites above.
const KNOWN_TAG_CONTEXTS: &[&str] = &[
    "frame kind",
    "request",
    "outcome",
    "result",
    "simulator error",
    "core error",
    "server error",
    "wire error",
    "histogram presence",
];

/// Best-effort extraction of a frame payload's request id without
/// decoding the body: the version byte must match and the 10-byte header
/// must be present. This is what lets a server's protocol-error notice
/// name the offending request even when the *body* is what failed to
/// decode.
pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
    if payload.len() < 10 || payload[0] != WIRE_VERSION {
        return None;
    }
    let mut id_bytes = [0u8; 8];
    id_bytes.copy_from_slice(&payload[2..10]);
    Some(u64::from_be_bytes(id_bytes))
}

/// Decodes one frame payload (the bytes after the length prefix).
///
/// # Errors
///
/// A deterministic [`WireError`] naming the first defect: bad version,
/// unknown tag, truncation, semantic invalidity or trailing bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let kind = d.u8()?;
    let id = d.u64()?;
    let frame = match kind {
        KIND_REQUEST => Frame::Request {
            id,
            request: get_request(&mut d)?,
        },
        KIND_REPLY => {
            let result = match d.u8()? {
                0 => Ok(get_outcome(&mut d)?),
                1 => Err(get_server_error(&mut d)?),
                tag => {
                    return Err(WireError::UnknownTag {
                        context: "result",
                        tag: u64::from(tag),
                    })
                }
            };
            Frame::Reply { id, result }
        }
        KIND_PROTO_ERR => Frame::ProtocolError {
            id,
            error: get_wire_error(&mut d)?,
        },
        KIND_STATS_REQUEST => Frame::StatsRequest { id },
        KIND_STATS_REPLY => Frame::StatsReply {
            id,
            snapshot: get_snapshot(&mut d)?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                context: "frame kind",
                tag: u64::from(tag),
            })
        }
    };
    d.finish()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = match frame {
            Frame::Request { id, request } => encode_request(*id, request),
            Frame::Reply { id, result } => encode_reply(*id, result),
            Frame::ProtocolError { id, error } => encode_protocol_error(*id, error),
            Frame::StatsRequest { id } => encode_stats_request(*id),
            Frame::StatsReply { id, snapshot } => encode_stats_reply(*id, snapshot),
        };
        decode_frame(&bytes).expect("roundtrip decode")
    }

    #[test]
    fn request_frames_roundtrip() {
        let inst = RoutingInstance::from_demands(5, |_, _| 1).unwrap();
        let keys: Vec<Vec<u64>> = (0..4)
            .map(|i| vec![i as u64, u64::MAX - i as u64])
            .collect();
        let frames = [
            Frame::Request {
                id: 7,
                request: Request::Route(inst.clone()),
            },
            Frame::Request {
                id: u64::MAX,
                request: Request::RouteOptimized(inst),
            },
            Frame::Request {
                id: 0,
                request: Request::Sort(keys.clone()),
            },
            Frame::Request {
                id: 1,
                request: Request::GlobalIndices(vec![]),
            },
            Frame::Request {
                id: 2,
                request: Request::Select {
                    keys: keys.clone(),
                    rank: u64::MAX,
                },
            },
            Frame::Request {
                id: 3,
                request: Request::Mode(keys.clone()),
            },
            Frame::Request {
                id: 4,
                request: Request::SmallKeyCensus { keys, key_bits: 2 },
            },
        ];
        for frame in &frames {
            assert_eq!(&roundtrip(frame), frame);
        }
    }

    #[test]
    fn overloaded_instances_roundtrip() {
        // An instance only constructible via `with_max_load` (node 0
        // sends 8 > n messages) must survive the wire: the decoder
        // recomputes the cap instead of clamping to n.
        let n = 4;
        let sends: Vec<Vec<RoutedMessage>> = (0..n)
            .map(|i| {
                if i == 0 {
                    (0..8)
                        .map(|s| {
                            RoutedMessage::new(
                                NodeId::new(0),
                                NodeId::new(s % n),
                                (s / n) as u32,
                                s as u64,
                            )
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let inst = RoutingInstance::with_max_load(n, sends, 8).unwrap();
        let frame = Frame::Request {
            id: 11,
            request: Request::Route(inst),
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn reply_frames_roundtrip_errors_losslessly() {
        let errors = [
            ServerError::Overloaded,
            ServerError::ShutDown,
            ServerError::InvalidConfig {
                reason: "zero shards".into(),
            },
            ServerError::Query(CoreError::invalid("bad rank")),
            ServerError::Query(CoreError::VerificationFailed {
                reason: "node 3 short".into(),
            }),
            ServerError::Query(CoreError::Sim(SimError::BudgetExceeded {
                round: 3,
                src: NodeId::new(1),
                dst: NodeId::new(2),
                bits: 99,
                budget: 64,
            })),
            ServerError::Query(CoreError::Sim(SimError::TooManyRounds { limit: 100 })),
            ServerError::Query(CoreError::Sim(SimError::Stalled {
                round: 9,
                finished: 3,
                total: 8,
            })),
            ServerError::Query(CoreError::Sim(SimError::MessageToFinishedNode {
                round: 1,
                src: NodeId::new(0),
                dst: NodeId::new(5),
            })),
            ServerError::Query(CoreError::Sim(SimError::DestinationOutOfRange {
                src: NodeId::new(2),
                dst: 77,
                n: 8,
            })),
            ServerError::Query(CoreError::Sim(SimError::InvalidSpec {
                reason: "n == 0".into(),
            })),
            ServerError::Query(CoreError::Sim(SimError::NodeCountMismatch {
                expected: 4,
                actual: 5,
            })),
        ];
        for (i, error) in errors.into_iter().enumerate() {
            let frame = Frame::Reply {
                id: i as u64,
                result: Err(error),
            };
            assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn protocol_error_frames_roundtrip() {
        let errors = [
            WireError::Truncated,
            WireError::UnsupportedVersion { found: 9 },
            WireError::UnknownTag {
                context: "request",
                tag: 250,
            },
            WireError::malformed("instance advertises n=3"),
            WireError::TrailingBytes { extra: 12 },
            WireError::FrameTooLarge {
                len: 1 << 40,
                max: 1 << 26,
            },
        ];
        for (i, error) in errors.into_iter().enumerate() {
            let frame = Frame::ProtocolError {
                id: i as u64,
                error,
            };
            assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn stats_frames_roundtrip_losslessly() {
        assert_eq!(
            roundtrip(&Frame::StatsRequest { id: 42 }),
            Frame::StatsRequest { id: 42 }
        );
        let mut hist = HistogramSnapshot::default();
        hist.buckets[0] = 3;
        hist.buckets[17] = 9;
        hist.buckets[HISTOGRAM_BUCKETS - 1] = 1;
        hist.sum = u64::MAX;
        hist.max = u64::MAX;
        let snapshot = Snapshot {
            counters: vec![
                ("net.frames_in".into(), u64::MAX),
                ("net.frames_out".into(), 0),
            ],
            gauges: vec![
                ("fleet.shard0.queue_depth".into(), -3),
                ("net.reactor.inject_depth".into(), i64::MAX),
            ],
            histograms: vec![
                ("fleet.queue_wait_ns".into(), hist),
                ("net.write_ns".into(), HistogramSnapshot::default()),
            ],
        };
        let frame = Frame::StatsReply {
            id: u64::MAX,
            snapshot: snapshot.clone(),
        };
        assert_eq!(roundtrip(&frame), frame);
        // Empty snapshots (a fresh registry) are valid frames too.
        let empty = Frame::StatsReply {
            id: 0,
            snapshot: Snapshot::default(),
        };
        assert_eq!(roundtrip(&empty), empty);
        // The sparse form is canonical: re-encoding a decoded reply
        // reproduces the bytes exactly.
        let bytes = encode_stats_reply(7, &snapshot);
        match decode_frame(&bytes).unwrap() {
            Frame::StatsReply { id, snapshot: s } => {
                assert_eq!(encode_stats_reply(id, &s), bytes);
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
    }

    #[test]
    fn non_canonical_stats_histograms_are_malformed() {
        let reject = |tweak: &dyn Fn(&mut BitWriter)| {
            let mut w = BitWriter::new();
            w.write_bits(u64::from(WIRE_VERSION), 8);
            w.write_bits(u64::from(KIND_STATS_REPLY), 8);
            w.write_bits(1, 64);
            w.write_bits(0, 32); // no counters
            w.write_bits(0, 32); // no gauges
            w.write_bits(1, 32); // one histogram
            w.write_bits(1, 32); // name = "h"
            w.write_bits(u64::from(b'h'), 8);
            w.write_bits(10, 64); // sum
            w.write_bits(8, 64); // max
            tweak(&mut w);
            decode_frame(&w.finish()).unwrap_err()
        };
        // A zero bucket count breaks canonicality.
        let err = reject(&|w: &mut BitWriter| {
            w.write_bits(1, 8); // one pair
            w.write_bits(3, 8);
            w.write_bits(0, 64); // count 0
        });
        assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
        // Non-increasing indices.
        let err = reject(&|w: &mut BitWriter| {
            w.write_bits(2, 8);
            w.write_bits(5, 8);
            w.write_bits(1, 64);
            w.write_bits(5, 8); // repeated index
            w.write_bits(1, 64);
        });
        assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
        // An out-of-range bucket index.
        let err = reject(&|w: &mut BitWriter| {
            w.write_bits(1, 8);
            w.write_bits(64, 8); // index 64 of 0..=63
            w.write_bits(1, 64);
        });
        assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
        // A stats request with a body is trailing bytes.
        let mut bytes = encode_stats_request(9);
        bytes.push(0);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn version_and_kind_are_checked_first() {
        let bytes = encode_request(1, &Request::Sort(vec![vec![1]]));
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 2;
        assert_eq!(
            decode_frame(&wrong_version),
            Err(WireError::UnsupportedVersion { found: 2 })
        );
        let mut wrong_kind = bytes;
        wrong_kind[1] = 9;
        assert_eq!(
            decode_frame(&wrong_kind),
            Err(WireError::UnknownTag {
                context: "frame kind",
                tag: 9
            })
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_deterministic() {
        let bytes = encode_request(1, &Request::Mode(vec![vec![5, 6], vec![7]]));
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            decode_frame(&extended),
            Err(WireError::TrailingBytes { extra: 3 })
        );
    }

    #[test]
    fn semantic_corruption_is_malformed() {
        // A structurally valid instance whose first message claims src 1
        // while sitting in node 0's list.
        let inst = RoutingInstance::from_demands(3, |_, _| 1).unwrap();
        let bytes = encode_request(4, &Request::Route(inst));
        // Layout: version(1) kind(1) id(8) tag(1) n(4) outer_len(4)
        // list0_len(4) then src(4) of the first message.
        let src_offset = 1 + 1 + 8 + 1 + 4 + 4 + 4;
        let mut corrupted = bytes.clone();
        corrupted[src_offset + 3] = 1; // src 0 -> 1 (big-endian u32)
        match decode_frame(&corrupted) {
            Err(WireError::Malformed { reason }) => {
                assert!(reason.contains("invalid routing instance"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // n mismatching the list count is caught before validation.
        let mut wrong_n = bytes;
        wrong_n[1 + 1 + 8 + 1 + 3] = 7; // n 3 -> 7
        match decode_frame(&wrong_n) {
            Err(WireError::Malformed { reason }) => {
                assert!(reason.contains("advertises"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefixes_do_not_allocate() {
        // A Sort frame claiming 2^32-1 outer lists in a 20-byte payload
        // must fail as Truncated without attempting the allocation.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(WIRE_VERSION), 8);
        w.write_bits(u64::from(KIND_REQUEST), 8);
        w.write_bits(3, 64);
        w.write_bits(2, 8); // Sort
        w.write_bits(u64::from(u32::MAX), 32);
        assert_eq!(decode_frame(&w.finish()), Err(WireError::Truncated));

        // Lengths are bounded by *encoded element size*, not one byte per
        // element: a small Route frame claiming `payload_len / 4` messages
        // in one send list (each message needs 20 encoded bytes) must be
        // rejected up front rather than allocating a 5x-the-frame vector.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(WIRE_VERSION), 8);
        w.write_bits(u64::from(KIND_REQUEST), 8);
        w.write_bits(4, 64);
        w.write_bits(0, 8); // Route
        w.write_bits(1, 32); // n = 1
        w.write_bits(1, 32); // one send list
        w.write_bits(1000, 32); // claiming 1000 messages...
        for _ in 0..1000 {
            w.write_bits(0, 32); // ...but only 4 bytes each on the wire
        }
        assert_eq!(decode_frame(&w.finish()), Err(WireError::Truncated));
    }
}
