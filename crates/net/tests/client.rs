//! Client-side failure discipline: bounded connects and reads, the
//! poisoned state (first failure wins, everything after is a
//! deterministic [`NetError::Disconnected`]), explicit [`reconnect`]
//! with abandoned-work reporting, and the guard that keeps the split
//! `submit`/`wait_next` protocol from interleaving with the blocking
//! roundtrip APIs.
//!
//! [`reconnect`]: CcClient::reconnect

use std::net::TcpListener;
use std::time::{Duration, Instant};

use cc_core::CliqueService;
use cc_net::{CcClient, NetError, NetServer, NetServerConfig, WireError};
use cc_server::Request;

fn mode_request(n: usize) -> Request {
    Request::Mode((0..n).map(|v| vec![v as u64 % 3]).collect())
}

/// A read timeout fails the waiting call with the transport error once,
/// poisons the connection so every later operation is a deterministic
/// [`NetError::Disconnected`], and [`CcClient::reconnect`] names exactly
/// the abandoned ids and keeps the id sequence monotonic.
#[test]
fn read_timeout_poisons_and_reconnect_reports_abandoned_ids() {
    // A listener that accepts and then never speaks: the request is
    // swallowed, the reply never comes.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut client = CcClient::connect(addr)
        .expect("connect")
        .with_read_timeout(Duration::from_millis(100))
        .expect("timeout");
    let silent = listener.accept().expect("accept").0;

    let first = client.submit(&mode_request(8)).expect("submit");
    assert_eq!(first, 0);
    let started = Instant::now();
    match client.wait_next() {
        Err(NetError::Io(e)) => {
            // SO_RCVTIMEO surfaces as WouldBlock or TimedOut depending
            // on the platform; either way it must arrive promptly.
            assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "unexpected kind {:?}",
                e.kind()
            );
            assert!(started.elapsed() < Duration::from_secs(5));
        }
        other => panic!("expected a timeout, got {other:?}"),
    }

    // Poisoned: no second timing-dependent error, ever.
    for _ in 0..3 {
        assert!(matches!(client.wait_next(), Err(NetError::Disconnected)));
        assert!(matches!(
            client.submit(&mode_request(8)),
            Err(NetError::Disconnected)
        ));
        assert!(matches!(
            client.call(&mode_request(8)),
            Err(NetError::Disconnected)
        ));
    }

    // Reconnect: the same (still listening) peer, the in-flight id is
    // reported abandoned, and ids keep counting from where they left.
    let abandoned = client.reconnect().expect("reconnect");
    assert_eq!(abandoned, vec![first]);
    assert_eq!(client.pending(), 0);
    let second = client.submit(&mode_request(8)).expect("submit again");
    assert_eq!(second, 1, "ids are monotonic across reconnects");
    drop(silent);
    drop(listener);
}

/// End-to-end reconnect against a real server: a client whose own frame
/// cap rejects a valid reply is poisoned, then — cap raised — reconnects
/// to the same server and gets bit-identical service.
#[test]
fn reconnect_restores_full_service_after_a_protocol_failure() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let request = mode_request(8);
    let reference = request
        .serve_on(&mut CliqueService::new(8).expect("service"))
        .expect("reference");

    // A 32-byte reply cap no real reply fits under: the decode fails
    // locally with FrameTooLarge and the connection is poisoned.
    let mut client = CcClient::connect(server.local_addr())
        .expect("connect")
        .with_max_frame_bytes(32);
    match client.call(&request) {
        Err(NetError::Wire(WireError::FrameTooLarge { max: 32, .. })) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(matches!(client.call(&request), Err(NetError::Disconnected)));

    // Raise the cap and re-dial: same server, fresh connection, correct
    // answers again.
    let mut client = client.with_max_frame_bytes(1 << 20);
    let abandoned = client.reconnect().expect("reconnect");
    assert_eq!(abandoned, vec![0]);
    let outcome = client.call(&request).expect("healthy call");
    assert_eq!(outcome, reference);

    drop(client);
    let stats = server.shutdown();
    // Both connections served a request; only the second reply landed.
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.protocol_errors, 0);
}

/// The blocking roundtrip APIs refuse to run while `submit` replies are
/// owed — without poisoning the connection; draining via `wait_next`
/// restores them.
#[test]
fn roundtrip_apis_guard_against_pending_submissions() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let mut client = CcClient::connect(server.local_addr()).expect("connect");
    let request = mode_request(8);

    let id = client.submit(&request).expect("submit");
    match client.call(&request) {
        Err(NetError::RepliesPending { count: 1 }) => {}
        other => panic!("expected RepliesPending, got {other:?}"),
    }
    match client.pipeline(std::slice::from_ref(&request)) {
        Err(NetError::RepliesPending { count: 1 }) => {}
        other => panic!("expected RepliesPending, got {other:?}"),
    }

    // The guard is advisory, not fatal: drain and the client is whole.
    let (got, result) = client.wait_next().expect("wait").expect("owed");
    assert_eq!(got, id);
    let drained = result.expect("served");
    let roundtrip = client.call(&request).expect("call after drain");
    assert_eq!(roundtrip, drained);
    drop(client);
    server.shutdown();
}

/// `connect_timeout` succeeds against a live server and fails fast —
/// bounded by the timeout, not minutes of SYN retries — against a dead
/// port.
#[test]
fn connect_timeout_bounds_connection_establishment() {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::new(1)).expect("bind");
    let mut client =
        CcClient::connect_timeout(server.local_addr(), Duration::from_secs(5)).expect("connect");
    let request = mode_request(8);
    let reference = request
        .serve_on(&mut CliqueService::new(8).expect("service"))
        .expect("reference");
    assert_eq!(client.call(&request).expect("call"), reference);
    drop(client);
    server.shutdown();

    // A freshly freed ephemeral port: connecting must fail within the
    // bound (refused immediately on loopback).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let dead = listener.local_addr().expect("addr");
    drop(listener);
    let started = Instant::now();
    match CcClient::connect_timeout(dead, Duration::from_secs(5)) {
        Err(NetError::Io(_)) => {
            assert!(started.elapsed() < Duration::from_secs(5));
        }
        Ok(_) => panic!("connected to a dead port"),
        Err(other) => panic!("expected a transport error, got {other:?}"),
    }
}
