//! Poll-vs-epoll parity matrix: both reactor backends must be
//! observationally identical — bit-identical reply bytes and identical
//! `NetStats` counters — across the scenarios that stress every corner
//! of the connection state machines: pipelined mixed workloads,
//! PROTO_ERR teardown, graceful shutdown drain, read-pausing
//! backpressure and slow-loris eviction. The poll backend is the oracle
//! (it re-derives interest from scratch every iteration); edge-triggered
//! epoll must not be distinguishable from it on the wire.

#![cfg(unix)]

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cc_net::{codec, frame, CcClient, NetServer, NetServerConfig, ReactorBackend, WireResult};
use cc_server::{Request, ServerConfig};

/// Both backends, in oracle-first order. On non-Linux targets `Epoll`
/// resolves to `Poll` and the matrix degenerates to a self-comparison,
/// which is vacuous but harmless.
const BACKENDS: [ReactorBackend; 2] = [ReactorBackend::Poll, ReactorBackend::Epoll];

/// The observable `NetStats` projection compared across backends.
#[derive(Debug, PartialEq, Eq)]
struct StatsKey {
    connections: u64,
    frames_in: u64,
    frames_out: u64,
    protocol_errors: u64,
    idle_teardowns: u64,
    fleet_requests: u64,
}

fn stats_key(stats: &cc_net::NetStats) -> StatsKey {
    StatsKey {
        connections: stats.connections,
        frames_in: stats.frames_in,
        frames_out: stats.frames_out,
        protocol_errors: stats.protocol_errors,
        idle_teardowns: stats.idle_teardowns,
        fleet_requests: stats.fleet.requests(),
    }
}

fn mixed_requests(count: usize) -> Vec<Request> {
    let sizes = [8usize, 9, 16];
    (0..count)
        .map(|i| {
            let n = sizes[i % sizes.len()];
            match i % 3 {
                0 => Request::Mode(
                    (0..n)
                        .map(|v| vec![(v as u64 * 3 + i as u64) % 7])
                        .collect(),
                ),
                1 => Request::Sort((0..n).map(|v| vec![(n - v) as u64 + i as u64]).collect()),
                _ => Request::GlobalIndices(
                    (0..n).map(|v| vec![(v as u64 + i as u64) % 5]).collect(),
                ),
            }
        })
        .collect()
}

/// Runs `scenario` against a fresh server per backend and asserts both
/// the scenario's observable output and the final stats match the
/// oracle's.
fn assert_parity<T, F>(label: &str, config: impl Fn() -> NetServerConfig, scenario: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&NetServer) -> T,
{
    let mut oracle: Option<(T, StatsKey)> = None;
    for backend in BACKENDS {
        let server =
            NetServer::bind("127.0.0.1:0", config().with_reactor_backend(backend)).expect("bind");
        let observed = scenario(&server);
        let stats = stats_key(&server.shutdown());
        match &oracle {
            None => oracle = Some((observed, stats)),
            Some((want_obs, want_stats)) => {
                assert_eq!(
                    &observed, want_obs,
                    "{label}: replies diverged across backends"
                );
                assert_eq!(
                    &stats, want_stats,
                    "{label}: stats diverged across backends"
                );
            }
        }
    }
}

/// Three clients pipelining mixed requests: replies must be
/// bit-identical across backends (and to each other's ordering
/// guarantees — `pipeline` restores submission order).
#[test]
fn pipelined_mixed_workload_is_backend_identical() {
    let requests = mixed_requests(24);
    assert_parity(
        "pipelined",
        || NetServerConfig::new(2),
        |server| {
            let mut all: Vec<Vec<WireResult>> = Vec::new();
            for chunk in requests.chunks(8) {
                let mut client = CcClient::connect(server.local_addr()).expect("connect");
                all.push(client.pipeline(chunk).expect("pipeline"));
            }
            all
        },
    );
}

/// Multi-reactor serving must be observationally identical to a single
/// loop: same replies, same counters, regardless of which reactor each
/// connection landed on.
#[test]
fn multi_reactor_is_single_reactor_identical() {
    let requests = mixed_requests(16);
    let mut oracle: Option<(Vec<Vec<WireResult>>, StatsKey)> = None;
    for threads in [1usize, 2, 4] {
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetServerConfig::new(2).with_reactor_threads(threads),
        )
        .expect("bind");
        let mut all: Vec<Vec<WireResult>> = Vec::new();
        for chunk in requests.chunks(4) {
            let mut client = CcClient::connect(server.local_addr()).expect("connect");
            all.push(client.pipeline(chunk).expect("pipeline"));
        }
        let stats = server.shutdown();
        assert_eq!(stats.reactors, threads);
        let key = stats_key(&stats);
        match &oracle {
            None => oracle = Some((all, key)),
            Some((want_obs, want_stats)) => {
                assert_eq!(&all, want_obs, "{threads} reactors: replies diverged");
                assert_eq!(&key, want_stats, "{threads} reactors: stats diverged");
            }
        }
    }
}

/// Undecodable input: the PROTO_ERR notice bytes and the teardown
/// accounting must match across backends.
#[test]
fn protocol_error_teardown_is_backend_identical() {
    assert_parity(
        "proto_err",
        || NetServerConfig::new(1),
        |server| {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            // A framed payload that cannot decode: bogus version byte.
            let garbage = frame::frame_vec(&[0xde, 0xad, 0xbe, 0xef]);
            stream.write_all(&garbage).expect("write garbage");
            stream.flush().expect("flush");
            let notice = frame::read_frame(&mut stream, u64::MAX)
                .expect("read notice")
                .expect("notice owed");
            // After the notice the server closes: EOF, not more frames.
            let eof = frame::read_frame(&mut stream, u64::MAX).expect("clean close");
            assert!(eof.is_none(), "connection must close after PROTO_ERR");
            notice
        },
    );
}

/// Graceful shutdown with requests in flight: every owed reply drains
/// before the socket closes, identically on both backends. The scenario
/// returns the replies read *after* shutdown began.
#[test]
fn shutdown_drain_is_backend_identical() {
    let requests = mixed_requests(8);
    let mut oracle: Option<(Vec<(u64, WireResult)>, StatsKey)> = None;
    for backend in BACKENDS {
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetServerConfig::new(2).with_reactor_backend(backend),
        )
        .expect("bind");
        let mut client = CcClient::connect(server.local_addr()).expect("connect");
        for request in &requests {
            client.submit(request).expect("submit");
        }
        // Every request read and submitted into the fleet before the
        // drain begins — otherwise how many survive the half-close would
        // race and the counters could not be compared.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().frames_in < requests.len() as u64 {
            assert!(Instant::now() < deadline, "requests never all arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
        let shutdown = std::thread::spawn(move || server.shutdown());
        let mut drained: Vec<(u64, WireResult)> = Vec::new();
        while client.pending() > 0 {
            drained.push(client.wait_next().expect("wait").expect("reply owed"));
        }
        drained.sort_by_key(|(id, _)| *id);
        let stats = stats_key(&shutdown.join().expect("shutdown"));
        match &oracle {
            None => oracle = Some((drained, stats)),
            Some((want_obs, want_stats)) => {
                assert_eq!(
                    &drained, want_obs,
                    "drained replies diverged across backends"
                );
                assert_eq!(&stats, want_stats, "drain stats diverged across backends");
            }
        }
    }
}

/// Read-pausing backpressure: a single-slot shard queue forces parking
/// and gate pauses; every pipelined request must still be answered, in
/// full, on both backends.
#[test]
fn backpressure_parking_is_backend_identical() {
    let requests = mixed_requests(32);
    assert_parity(
        "backpressure",
        || {
            NetServerConfig::new(1).with_fleet(
                ServerConfig::new(1)
                    .with_queue_capacity(1)
                    .with_coalesce_limit(1),
            )
        },
        |server| {
            let mut client = CcClient::connect(server.local_addr()).expect("connect");
            client
                .pipeline(&requests)
                .expect("pipeline through parking")
        },
    );
}

/// Slow-loris eviction: a partial frame that never completes trips the
/// idle clock on both backends, with identical accounting.
#[test]
fn slow_loris_eviction_is_backend_identical() {
    assert_parity(
        "slow_loris",
        || NetServerConfig::new(1).with_idle_timeout(Duration::from_millis(100)),
        |server| {
            let mut dribbler = TcpStream::connect(server.local_addr()).expect("connect");
            let bytes = frame::frame_vec(&codec::encode_request(
                0,
                &Request::Mode(vec![vec![1], vec![2]]),
            ));
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut cursor = 0usize;
            while server.stats().idle_teardowns == 0 {
                assert!(Instant::now() < deadline, "dribbler never torn down");
                if cursor + 1 < bytes.len() {
                    let _ = dribbler.write(&bytes[cursor..=cursor]);
                    let _ = dribbler.flush();
                    cursor += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            server.stats().idle_teardowns
        },
    );
}
