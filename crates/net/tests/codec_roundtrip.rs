//! Fuzz-style codec contract tests: seeded random valid frames roundtrip
//! bit-identically; truncated and corrupted frames fail *deterministically*
//! (same bytes, same [`WireError`] — every time, on every host).

use cc_core::obs::{HistogramSnapshot, Snapshot, HISTOGRAM_BUCKETS};
use cc_core::routing::{RouteOutcome, RoutedMessage};
use cc_core::sorting::{
    IndexOutcome, ModeOutcome, SelectOutcome, SmallKeyOutcome, SortOutcome, TaggedKey,
};
use cc_core::{
    CliqueService, EdgeLoadHistogram, Metrics, NodeId, Outcome, RoundMetrics, WorkMeter,
};
use cc_net::codec::{
    decode_frame, encode_reply, encode_request, encode_stats_reply, encode_stats_request, Frame,
};
use cc_net::WireError;
use cc_rand::DetRng;
use cc_server::{Request, ServerError};
use cc_workloads::RequestMix;

fn random_metrics(rng: &mut DetRng) -> Metrics {
    let rounds = rng.gen_range_usize(0..6);
    let per_round = (0..rounds)
        .map(|_| RoundMetrics {
            messages: rng.gen_range_u64(0..1000),
            bits: rng.gen_range_u64(0..100_000),
            max_edge_bits: rng.gen_range_u64(0..512),
            busy_edges: rng.gen_range_u64(0..4096),
        })
        .collect();
    let histogram = rng.next_u64().is_multiple_of(2).then(|| {
        EdgeLoadHistogram::from_pairs(
            (0..rng.gen_range_usize(0..8))
                .map(|_| (rng.gen_range_u64(0..256), rng.gen_range_u64(1..50))),
        )
    });
    let node_work = (0..rng.gen_range_usize(0..5))
        .map(|_| {
            let mut meter = WorkMeter::new();
            meter.charge(rng.gen_range_u64(0..1 << 40));
            meter.note_mem(rng.gen_range_u64(0..1 << 30));
            meter
        })
        .collect();
    Metrics::from_parts(per_round, histogram, node_work)
}

fn random_u64_lists(rng: &mut DetRng) -> Vec<Vec<u64>> {
    (0..rng.gen_range_usize(0..5))
        .map(|_| {
            (0..rng.gen_range_usize(0..6))
                .map(|_| rng.next_u64())
                .collect()
        })
        .collect()
}

fn random_outcome(rng: &mut DetRng) -> Outcome {
    match rng.gen_range_usize(0..6) {
        0 => Outcome::Route(RouteOutcome {
            delivered: (0..rng.gen_range_usize(0..4))
                .map(|_| {
                    (0..rng.gen_range_usize(0..5))
                        .map(|_| {
                            RoutedMessage::new(
                                NodeId::new(rng.gen_range_usize(0..1 << 20)),
                                NodeId::new(rng.gen_range_usize(0..1 << 20)),
                                rng.gen_range_u64(0..1 << 32) as u32,
                                rng.next_u64(),
                            )
                        })
                        .collect()
                })
                .collect(),
            metrics: random_metrics(rng),
        }),
        1 => Outcome::Sort(SortOutcome {
            batches: (0..rng.gen_range_usize(0..4))
                .map(|_| {
                    (0..rng.gen_range_usize(0..5))
                        .map(|_| TaggedKey {
                            key: rng.next_u64(),
                            origin: NodeId::new(rng.gen_range_usize(0..1 << 16)),
                            index_at_origin: rng.gen_range_u64(0..1 << 32) as u32,
                        })
                        .collect()
                })
                .collect(),
            offsets: (0..rng.gen_range_usize(0..4))
                .map(|_| rng.next_u64())
                .collect(),
            total: rng.next_u64(),
            metrics: random_metrics(rng),
        }),
        2 => Outcome::Indices(IndexOutcome {
            indices: random_u64_lists(rng),
            metrics: random_metrics(rng),
        }),
        3 => Outcome::Select(SelectOutcome {
            key: rng.next_u64(),
            metrics: random_metrics(rng),
        }),
        4 => Outcome::Mode(ModeOutcome {
            key: rng.next_u64(),
            count: rng.next_u64(),
            metrics: random_metrics(rng),
        }),
        _ => Outcome::SmallKeys(SmallKeyOutcome {
            totals: (0..rng.gen_range_usize(0..4))
                .map(|_| rng.next_u64())
                .collect(),
            prefix: random_u64_lists(rng),
            metrics: random_metrics(rng),
        }),
    }
}

/// Random valid requests (all seven entry points, via the shared traffic
/// generator) encode→decode to themselves, bit for bit.
#[test]
fn random_requests_roundtrip() {
    let requests = RequestMix::new(vec![3usize, 5, 8, 13])
        .with_zipf_theta(0.7)
        .generate(64, 0xC0FFEE);
    for (i, request) in requests.into_iter().enumerate() {
        let id = 1000 + i as u64;
        let frame = decode_frame(&encode_request(id, &request)).expect("valid frame");
        assert_eq!(frame, Frame::Request { id, request });
    }
}

/// Random outcomes — synthetic but structurally arbitrary, including
/// random metrics with and without histograms — roundtrip exactly.
#[test]
fn random_outcomes_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xDECAF);
    for i in 0..200u64 {
        let result = Ok(random_outcome(&mut rng));
        let frame = decode_frame(&encode_reply(i, &result)).expect("valid frame");
        assert_eq!(frame, Frame::Reply { id: i, result });
    }
}

/// A structurally arbitrary registry snapshot: random metric names,
/// counter/gauge extremes, histograms with random sparse bucket
/// populations (including empty ones — the sparse encoding's edge case).
fn random_snapshot(rng: &mut DetRng) -> Snapshot {
    let counters = (0..rng.gen_range_usize(0..6))
        .map(|i| (format!("net.c{i}.total"), rng.next_u64()))
        .collect();
    let gauges = (0..rng.gen_range_usize(0..5))
        .map(|i| (format!("fleet.g{i}.depth"), rng.next_u64() as i64))
        .collect();
    let histograms = (0..rng.gen_range_usize(0..5))
        .map(|i| {
            let mut h = HistogramSnapshot::default();
            for _ in 0..rng.gen_range_usize(0..12) {
                let bucket = rng.gen_range_usize(0..HISTOGRAM_BUCKETS);
                h.buckets[bucket] = h.buckets[bucket].saturating_add(rng.gen_range_u64(1..1000));
                h.max = h.max.max(rng.next_u64());
                h.sum = h.sum.saturating_add(rng.next_u64());
            }
            (format!("fleet.h{i}_ns"), h)
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Random registry snapshots — and the bodyless stats requests — cross
/// the codec losslessly, like every other frame kind.
#[test]
fn random_stats_snapshots_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0x0B5E);
    for i in 0..100u64 {
        let snapshot = random_snapshot(&mut rng);
        let frame = decode_frame(&encode_stats_reply(i, &snapshot)).expect("valid frame");
        assert_eq!(frame, Frame::StatsReply { id: i, snapshot });
        let frame = decode_frame(&encode_stats_request(i)).expect("valid frame");
        assert_eq!(frame, Frame::StatsRequest { id: i });
    }
}

/// Stats frames inherit the codec's failure discipline: every truncation
/// point is [`WireError::Truncated`], and single-byte corruptions decode
/// to the same verdict every time.
#[test]
fn stats_frame_damage_is_deterministically_rejected() {
    let mut rng = DetRng::seed_from_u64(0x57A75);
    let mut frames = vec![encode_stats_request(3)];
    for i in 0..4u64 {
        frames.push(encode_stats_reply(i, &random_snapshot(&mut rng)));
    }
    for bytes in &frames {
        let cuts: Vec<usize> = if bytes.len() <= 256 {
            (0..bytes.len()).collect()
        } else {
            (0..256)
                .map(|_| rng.gen_range_usize(0..bytes.len()))
                .collect()
        };
        for cut in cuts {
            assert_eq!(
                decode_frame(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}/{}",
                bytes.len()
            );
        }
        for _ in 0..64 {
            let mut corrupted = bytes.clone();
            let at = rng.gen_range_usize(0..corrupted.len());
            corrupted[at] ^= 1u8 << rng.gen_range_usize(0..8);
            let once = decode_frame(&corrupted);
            let twice = decode_frame(&corrupted);
            assert_eq!(once, twice, "nondeterministic verdict at byte {at}");
        }
    }
}

/// Every truncation point of every frame is the same deterministic
/// [`WireError::Truncated`] — no panic, no allocation blowup, no
/// position-dependent error surprises.
#[test]
fn truncations_are_deterministically_rejected() {
    let mut rng = DetRng::seed_from_u64(42);
    let requests = RequestMix::new(vec![4usize, 6]).generate(6, 9);
    let mut frames: Vec<Vec<u8>> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| encode_request(i as u64, r))
        .collect();
    frames.push(encode_reply(7, &Ok(random_outcome(&mut rng))));
    frames.push(encode_reply(8, &Err(ServerError::ShutDown)));
    for bytes in &frames {
        // Exhaustive for short frames, sampled for long ones.
        let cuts: Vec<usize> = if bytes.len() <= 256 {
            (0..bytes.len()).collect()
        } else {
            (0..256)
                .map(|_| rng.gen_range_usize(0..bytes.len()))
                .collect()
        };
        for cut in cuts {
            assert_eq!(
                decode_frame(&bytes[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}/{}",
                bytes.len()
            );
        }
    }
}

/// Random single-byte corruptions decode deterministically: the same
/// corrupted bytes give the same verdict twice, and whenever the decoder
/// does report an error it is one of the codec's named failure modes.
#[test]
fn corruptions_are_deterministic() {
    let mut rng = DetRng::seed_from_u64(1234);
    let requests = RequestMix::new(vec![4usize, 7]).generate(8, 77);
    for (i, request) in requests.iter().enumerate() {
        let bytes = encode_request(i as u64, request);
        for _ in 0..64 {
            let mut corrupted = bytes.clone();
            let at = rng.gen_range_usize(0..corrupted.len());
            let bit = 1u8 << rng.gen_range_usize(0..8);
            corrupted[at] ^= bit;
            let once = decode_frame(&corrupted);
            let twice = decode_frame(&corrupted);
            assert_eq!(once, twice, "nondeterministic verdict at byte {at}");
        }
    }
}

/// The lossless `ServerError ⇄ wire` mapping, pinned on *real* errors:
/// actual failures produced by the service layer cross the wire and come
/// back `==` to the originals.
#[test]
fn real_service_errors_cross_the_wire_losslessly() {
    let n = 6;
    let mut service = CliqueService::new(n).unwrap();
    let keys: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64]).collect();
    let failing = [
        Request::Select {
            keys: keys.clone(),
            rank: u64::MAX,
        },
        Request::SmallKeyCensus {
            keys: keys.clone(),
            key_bits: 1,
        },
        Request::Sort(Vec::new()),
    ];
    let mut seen = Vec::new();
    for (i, request) in failing.iter().enumerate() {
        let error = match request.n() {
            0 => CliqueService::new(0).unwrap_err(),
            _ => request.serve_on(&mut service).unwrap_err(),
        };
        let result = Err(ServerError::Query(error));
        let frame = decode_frame(&encode_reply(i as u64, &result)).expect("valid frame");
        assert_eq!(
            frame,
            Frame::Reply {
                id: i as u64,
                result: result.clone()
            }
        );
        seen.push(result);
    }
    assert_eq!(seen.len(), 3);
    // Server-level variants, same pinning.
    for error in [
        ServerError::Overloaded,
        ServerError::ShutDown,
        ServerError::InvalidConfig {
            reason: "at least one shard required".into(),
        },
    ] {
        let result = Err(error);
        let frame = decode_frame(&encode_reply(9, &result)).expect("valid frame");
        assert_eq!(frame, Frame::Reply { id: 9, result });
    }
}
