//! Hostile-client tests for the reactor backend: slow-loris senders that
//! dribble bytes forever and gluttons that request replies they never
//! read. Either kind of client must be torn down by its deadline clock
//! (`idle_teardowns`), and — the actual point — a healthy neighbor on
//! the same reactor thread must keep getting full service the whole
//! time. Thread-per-connection servers get this isolation for free; an
//! event loop has to earn it.

#![cfg(unix)]

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cc_net::{codec, frame, CcClient, NetServer, NetServerConfig};
use cc_server::Request;

/// Pins a socket's kernel receive buffer to the floor. TCP autotuning
/// would otherwise happily grow a never-read receive queue toward
/// `tcp_rmem[2]` (tens of MB), letting a glutton absorb replies faster
/// than the fleet produces them; an explicit `SO_RCVBUF` switches
/// autotuning off so the write side clogs after a handful of frames.
#[cfg(target_os = "linux")]
fn pin_rcvbuf(sock: &TcpStream) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let val: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            sock.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            std::ptr::from_ref(&val).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

fn mode_request(n: usize, salt: u64) -> Request {
    Request::Mode((0..n).map(|v| vec![(v as u64 + salt) % 5]).collect())
}

/// Serves a healthy call and asserts the answer matches the sequential
/// reference — the neighbor-is-unaffected probe used by both tests.
fn probe(client: &mut CcClient, n: usize, salt: u64) {
    let request = mode_request(n, salt);
    let got = client.call(&request).expect("healthy call");
    let want = request
        .serve_on(&mut cc_core::CliqueService::new(n).expect("service"))
        .expect("reference");
    assert_eq!(got, want);
}

/// A byte-dribbling client is killed by the idle deadline even though it
/// never actually stops sending: the partial-frame clock arms when the
/// first incomplete frame shows up and is *not* refreshed by further
/// dribbles, so "always sending, never completing" is indistinguishable
/// from silence.
#[test]
fn dribbling_client_is_torn_down_and_neighbors_are_not_stalled() {
    let idle = Duration::from_millis(150);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(1).with_idle_timeout(idle),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut healthy = CcClient::connect(addr).expect("connect healthy");
    probe(&mut healthy, 8, 0);

    let mut dribbler = TcpStream::connect(addr).expect("connect dribbler");
    let bytes = frame::frame_vec(&codec::encode_request(0, &mode_request(8, 1)));

    // Dribble one byte at a time, a healthy roundtrip between dribbles.
    // The loop ends when the server reports the teardown; the write-side
    // error path is tolerated (the socket dies under us mid-loop).
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut cursor = 0usize;
    while server.stats().idle_teardowns == 0 {
        assert!(Instant::now() < deadline, "dribbler never torn down");
        // Never let the frame complete: stop one byte short and keep
        // the connection in "partial frame" state forever.
        if cursor + 1 < bytes.len() {
            let _ = dribbler.write(&bytes[cursor..=cursor]);
            let _ = dribbler.flush();
            cursor += 1;
        }
        probe(&mut healthy, 8, cursor as u64);
        std::thread::sleep(Duration::from_millis(10));
    }

    // The dribbler was reaped; the neighbor never noticed.
    probe(&mut healthy, 9, 42);
    drop(healthy);
    drop(dribbler);
    let stats = server.shutdown();
    assert_eq!(stats.idle_teardowns, 1);
    // A torn-down partial frame is a deadline kill, not a decode error.
    assert_eq!(stats.protocol_errors, 0);
}

/// A client that submits work and never reads the replies stalls the
/// server's write side once the kernel buffers fill; the stalled-write
/// clock kills it, and the reply frames parked behind the dead socket
/// never block the neighbor. Linux-only: the test pins the glutton's
/// `SO_RCVBUF` so the clog point is deterministic.
#[cfg(target_os = "linux")]
#[test]
fn never_reading_client_is_torn_down_and_neighbors_are_not_stalled() {
    // Cap the kernel send buffer per connection: with autotuning on,
    // tcp_wmem would grow toward megabytes and absorb replies faster
    // than the fleet computes them, deferring the clog indefinitely.
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::new(2)
            .with_write_timeout(Duration::from_millis(300))
            .with_conn_send_buffer(16 << 10),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut healthy = CcClient::connect(addr).expect("connect healthy");
    probe(&mut healthy, 8, 0);

    // The glutton asks for real work — replies with key batches and
    // metrics, a few KB each — and never reads a single byte back.
    let glutton = TcpStream::connect(addr).expect("connect glutton");
    pin_rcvbuf(&glutton);
    let mut writer = glutton.try_clone().expect("clone");
    let n = 9usize;
    let keys: Vec<Vec<u64>> = (0..n)
        .map(|i| (0..n).map(|j| ((i * 3 + j) % 7) as u64).collect())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut id = 0u64;
    while server.stats().idle_teardowns == 0 {
        assert!(Instant::now() < deadline, "glutton never torn down");
        // Keep the reply queue fed until the kernel buffers clog; once
        // the server kills the socket our writes start failing, which is
        // fine — we only stop on the server-side verdict.
        let payload = codec::encode_request(id, &Request::GlobalIndices(keys.clone()));
        if frame::write_frame(&mut writer, &payload).is_ok() {
            id += 1;
        } else {
            std::thread::sleep(Duration::from_millis(10));
        }
        probe(&mut healthy, 8, id);
    }

    probe(&mut healthy, 9, 7);
    drop(healthy);
    drop(glutton);
    drop(writer);
    let stats = server.shutdown();
    assert_eq!(stats.idle_teardowns, 1);
    assert_eq!(stats.protocol_errors, 0);
    // The glutton's requests were genuinely served before the teardown —
    // the fleet answered more than just the healthy probes.
    assert!(
        stats.fleet.requests() > id / 2,
        "fleet served {} of {} glutton requests",
        stats.fleet.requests(),
        id
    );
}
