//! Strawman baselines: direct (relay-free) routing and single-collector
//! sorting. Both degrade to `Θ(n)` rounds on adversarial inputs — the
//! gap that motivates the paper's constant-round algorithms.

use cc_core::routing::{RoutePayload, RoutedMessage, RoutingInstance};
use cc_core::sorting::TaggedKey;
use cc_core::CoreError;
use cc_sim::util::word_bits;
use cc_sim::{CliqueSpec, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Simulator, Step};

/// Outcome of a direct-routing run.
#[derive(Debug)]
pub struct DirectOutcome {
    /// Rounds taken = the maximum per-ordered-pair message multiplicity.
    pub metrics: Metrics,
}

struct DirectMachine<P> {
    queues: Vec<Vec<RoutedMessage<P>>>,
    rounds_total: u32,
    call: u32,
    delivered: Vec<RoutedMessage<P>>,
}

impl<P: RoutePayload> NodeMachine for DirectMachine<P> {
    type Msg = RoutedMessage<P>;
    type Output = Vec<RoutedMessage<P>>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        for (dst, q) in self.queues.iter_mut().enumerate() {
            if let Some(m) = q.pop() {
                ctx.send(NodeId::new(dst), m);
            }
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg>,
        inbox: &mut Inbox<Self::Msg>,
    ) -> Step<Self::Output> {
        self.call += 1;
        for (_, m) in inbox.drain() {
            self.delivered.push(m);
        }
        if self.call < self.rounds_total {
            for (dst, q) in self.queues.iter_mut().enumerate() {
                if let Some(m) = q.pop() {
                    ctx.send(NodeId::new(dst), m);
                }
            }
        }
        if self.call == self.rounds_total {
            Step::Done(std::mem::take(&mut self.delivered))
        } else {
            Step::Continue
        }
    }
}

/// Routes by sending every message straight to its destination, one per
/// edge per round. Takes exactly `max_{(i,j)} |messages i→j|` rounds —
/// constant for smooth workloads, `n` for the cyclic worst case.
///
/// # Errors
///
/// Propagates simulation and verification failures.
pub fn route_direct<P: RoutePayload>(
    instance: &RoutingInstance<P>,
) -> Result<DirectOutcome, CoreError> {
    let n = instance.n();
    // The schedule length is the maximum pair multiplicity, which every
    // sender knows locally; the global max is what the run takes. For the
    // machine we give every node the global figure (a strawman needs no
    // extra fidelity).
    let mut max_pair = 1u32;
    for v in 0..n {
        let mut counts = vec![0u32; n];
        for m in instance.sends(v) {
            counts[m.dst.index()] += 1;
        }
        max_pair = max_pair.max(counts.iter().copied().max().unwrap_or(0));
    }
    let machines = (0..n)
        .map(|v| {
            let mut queues: Vec<Vec<RoutedMessage<P>>> = vec![Vec::new(); n];
            for m in instance.sends(v) {
                queues[m.dst.index()].push(m.clone());
            }
            DirectMachine {
                queues,
                rounds_total: max_pair,
                call: 0,
                delivered: Vec::new(),
            }
        })
        .collect();
    let spec = CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(16)
        .with_max_rounds(u64::from(max_pair) + 8);
    let report = Simulator::new(spec, machines)?.run()?;
    let mut delivered = report.outputs;
    for d in &mut delivered {
        d.sort_unstable_by_key(|x| x.key());
    }
    instance.verify_delivery(&delivered)?;
    Ok(DirectOutcome {
        metrics: report.metrics,
    })
}

/// Outcome of a gather-sort run.
#[derive(Debug)]
pub struct GatherOutcome {
    /// Rounds taken (`Θ(n)`).
    pub metrics: Metrics,
}

#[derive(Clone, Debug)]
enum GatherMsg {
    Up(TaggedKey),
    Down(TaggedKey),
}

impl Payload for GatherMsg {
    fn size_bits(&self, n: usize) -> u64 {
        let (GatherMsg::Up(k) | GatherMsg::Down(k)) = self;
        1 + k.size_bits(n) + word_bits(n)
    }
}

struct GatherMachine {
    n: usize,
    me: NodeId,
    up_queue: Vec<TaggedKey>,
    collected: Vec<TaggedKey>,
    down_queues: Option<Vec<Vec<TaggedKey>>>,
    received: Vec<TaggedKey>,
    call: u32,
    up_rounds: u32,
    down_rounds: u32,
}

impl NodeMachine for GatherMachine {
    type Msg = GatherMsg;
    type Output = Vec<TaggedKey>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GatherMsg>) {
        if let Some(k) = self.up_queue.pop() {
            ctx.send(NodeId::new(0), GatherMsg::Up(k));
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, GatherMsg>,
        inbox: &mut Inbox<GatherMsg>,
    ) -> Step<Self::Output> {
        self.call += 1;
        for (_, msg) in inbox.drain() {
            match msg {
                GatherMsg::Up(k) => self.collected.push(k),
                GatherMsg::Down(k) => self.received.push(k),
            }
        }
        if self.call < self.up_rounds {
            if let Some(k) = self.up_queue.pop() {
                ctx.send(NodeId::new(0), GatherMsg::Up(k));
            }
            return Step::Continue;
        }
        if self.call == self.up_rounds && self.me.index() == 0 {
            // Collector sorts and schedules the send-down.
            self.collected.sort_unstable();
            let total = self.collected.len();
            let q = total.div_ceil(self.n).max(1);
            let mut queues: Vec<Vec<TaggedKey>> = vec![Vec::new(); self.n];
            for (r, k) in self.collected.drain(..).enumerate() {
                queues[(r / q).min(self.n - 1)].push(k);
            }
            self.down_queues = Some(queues);
        }
        if self.call >= self.up_rounds && self.call < self.up_rounds + self.down_rounds {
            if let Some(queues) = &mut self.down_queues {
                for (dst, q) in queues.iter_mut().enumerate() {
                    if let Some(k) = q.pop() {
                        ctx.send(NodeId::new(dst), GatherMsg::Down(k));
                    }
                }
            }
            return Step::Continue;
        }
        if self.call == self.up_rounds + self.down_rounds {
            self.received.sort_unstable();
            return Step::Done(std::mem::take(&mut self.received));
        }
        Step::Continue
    }
}

/// Sorts by funnelling every key through node 0: `Θ(max input size)`
/// rounds up plus `Θ(n)` rounds down — the baseline that shows why
/// distributing the work matters.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sort_gather(keys: &[Vec<u64>]) -> Result<GatherOutcome, CoreError> {
    let n = keys.len();
    if n == 0 {
        return Err(CoreError::invalid("at least one node required"));
    }
    let up_rounds = keys.iter().map(Vec::len).max().unwrap_or(0).max(1) as u32;
    let total: usize = keys.iter().map(Vec::len).sum();
    let down_rounds = total.div_ceil(n).max(1) as u32;
    let machines = (0..n)
        .map(|v| GatherMachine {
            n,
            me: NodeId::new(v),
            up_queue: keys[v]
                .iter()
                .enumerate()
                .map(|(i, &k)| TaggedKey::new(k, NodeId::new(v), i as u32))
                .collect(),
            collected: Vec::new(),
            down_queues: None,
            received: Vec::new(),
            call: 0,
            up_rounds,
            down_rounds,
        })
        .collect();
    let spec = CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(16)
        .with_max_rounds(u64::from(up_rounds + down_rounds) + 8);
    let report = Simulator::new(spec, machines)?.run()?;
    Ok(GatherOutcome {
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_is_fast_on_permutations() {
        let n = 12;
        let instance = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let out = route_direct(&instance).unwrap();
        assert_eq!(out.metrics.comm_rounds(), 1);
    }

    #[test]
    fn direct_needs_n_rounds_on_cyclic_skew() {
        let n = 12;
        let instance =
            RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
                .unwrap();
        let out = route_direct(&instance).unwrap();
        assert_eq!(out.metrics.comm_rounds(), n as u64);
    }

    #[test]
    fn gather_sort_takes_linear_rounds() {
        let n = 8;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 7 + j) % 19) as u64).collect())
            .collect();
        let out = sort_gather(&keys).unwrap();
        assert!(out.metrics.comm_rounds() >= n as u64);
    }
}
