//! The shared two-phase randomized delivery component: messages travel
//! via independently uniform random relays (phase A), which forward them
//! to their destinations (phase B). Each phase paces itself to the
//! realized maximum queue depth, disseminated by a one-word overlay
//! broadcast in the phase's first round — so the measured round count is
//! exactly `maxload_A + maxload_B`, the quantity randomized load
//! balancing (Lenzen–Wattenhofer \[7\]) bounds with high probability.

use cc_rand::DetRng;
use cc_sim::util::word_bits;
use cc_sim::{BaseCtx, NodeId, Payload};

/// Messages of the randomized exchange.
#[derive(Clone, Debug)]
pub enum RxMsg<P> {
    /// Phase A: payload heading to a random relay, tagged with its final
    /// destination.
    ToRelay {
        /// Final destination.
        dst: NodeId,
        /// The payload.
        payload: P,
    },
    /// Phase B: delivery.
    Final {
        /// The payload.
        payload: P,
    },
    /// Overlay: my deepest phase-A queue.
    MaxA(u32),
    /// Overlay: my deepest phase-B queue.
    MaxB(u32),
}

impl<P: Payload> Payload for RxMsg<P> {
    fn size_bits(&self, n: usize) -> u64 {
        2 + match self {
            RxMsg::ToRelay { payload, .. } => word_bits(n) + payload.size_bits(n),
            RxMsg::Final { payload } => payload.size_bits(n),
            RxMsg::MaxA(_) | RxMsg::MaxB(_) => word_bits(n),
        }
    }
}

enum Phase {
    A,
    B,
    Done,
}

/// The self-pacing two-phase randomized delivery driver.
pub struct RandExchange<P> {
    /// Phase-A queues, one per relay.
    queues_a: Vec<Vec<(NodeId, P)>>,
    /// Phase-B queues, one per destination (filled while relaying).
    queues_b: Vec<Vec<P>>,
    phase: Phase,
    /// Global phase lengths, learned from the overlays.
    r1: u32,
    r2: u32,
    wave: u32,
    received: Vec<P>,
}

impl<P: Payload> RandExchange<P> {
    /// Creates the driver for `messages` = `(dst, payload)` pairs, with a
    /// per-node RNG seeded deterministically from `(seed, me)`.
    pub fn new(n: usize, me: NodeId, messages: Vec<(NodeId, P)>, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(me.raw() as u64 + 1)),
        );
        let mut queues_a: Vec<Vec<(NodeId, P)>> = (0..n).map(|_| Vec::new()).collect();
        for (dst, payload) in messages {
            let relay = rng.gen_range_usize(0..n);
            queues_a[relay].push((dst, payload));
        }
        RandExchange {
            queues_a,
            queues_b: (0..n).map(|_| Vec::new()).collect(),
            phase: Phase::A,
            r1: 1,
            r2: 1,
            wave: 0,
            received: Vec::new(),
        }
    }

    /// One message per still-nonempty queue: running `max-depth` waves
    /// drains everything at one message per edge per round.
    fn send_wave_a(&mut self, _wave: u32, sends: &mut Vec<(NodeId, RxMsg<P>)>) {
        for (relay, q) in self.queues_a.iter_mut().enumerate() {
            if let Some((dst, payload)) = q.pop() {
                sends.push((NodeId::new(relay), RxMsg::ToRelay { dst, payload }));
            }
        }
    }

    fn send_wave_b(&mut self, _wave: u32, sends: &mut Vec<(NodeId, RxMsg<P>)>) {
        for (dst, q) in self.queues_b.iter_mut().enumerate() {
            if let Some(payload) = q.pop() {
                sends.push((NodeId::new(dst), RxMsg::Final { payload }));
            }
        }
    }

    /// Queues the first phase-A wave plus the pacing overlay.
    pub fn activate(&mut self, ctx: &mut BaseCtx<'_>) -> Vec<(NodeId, RxMsg<P>)> {
        let my_max = self.queues_a.iter().map(Vec::len).max().unwrap_or(0) as u32;
        let mut sends = Vec::new();
        self.wave = 1;
        self.send_wave_a(1, &mut sends);
        for v in 0..ctx.n() {
            sends.push((NodeId::new(v), RxMsg::MaxA(my_max)));
        }
        ctx.charge_work(self.queues_a.iter().map(|q| q.len() as u64).sum::<u64>() + ctx.n() as u64);
        sends
    }

    /// Advances one round; `Some(received)` when delivery completes.
    pub fn on_round(
        &mut self,
        ctx: &mut BaseCtx<'_>,
        inbox: Vec<(NodeId, RxMsg<P>)>,
    ) -> (Vec<(NodeId, RxMsg<P>)>, Option<Vec<P>>) {
        let mut sends = Vec::new();
        for (_, msg) in inbox {
            match msg {
                RxMsg::ToRelay { dst, payload } => self.queues_b[dst.index()].push(payload),
                RxMsg::Final { payload } => self.received.push(payload),
                RxMsg::MaxA(m) => self.r1 = self.r1.max(m),
                RxMsg::MaxB(m) => self.r2 = self.r2.max(m),
            }
        }
        match self.phase {
            Phase::A => {
                self.wave += 1;
                if self.wave <= self.r1 {
                    self.send_wave_a(self.wave, &mut sends);
                    ctx.charge_work(sends.len() as u64);
                    return (sends, None);
                }
                // Phase A complete (everything relayed has arrived):
                // start phase B with its own pacing overlay.
                self.phase = Phase::B;
                self.wave = 1;
                let my_max = self.queues_b.iter().map(Vec::len).max().unwrap_or(0) as u32;
                self.send_wave_b(1, &mut sends);
                for v in 0..ctx.n() {
                    sends.push((NodeId::new(v), RxMsg::MaxB(my_max)));
                }
                ctx.charge_work(sends.len() as u64);
                (sends, None)
            }
            Phase::B => {
                self.wave += 1;
                if self.wave <= self.r2 {
                    self.send_wave_b(self.wave, &mut sends);
                    ctx.charge_work(sends.len() as u64);
                    return (sends, None);
                }
                self.phase = Phase::Done;
                (Vec::new(), Some(std::mem::take(&mut self.received)))
            }
            Phase::Done => panic!("RandExchange stepped past completion"),
        }
    }
}
