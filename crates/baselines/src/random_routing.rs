//! Randomized two-phase routing, after Lenzen–Wattenhofer \[7\].

use crate::rand_exchange::{RandExchange, RxMsg};
use cc_core::routing::{RouteOutcome, RoutePayload, RoutingInstance};
use cc_core::CoreError;
use cc_sim::{CliqueSpec, Ctx, Inbox, NodeId, NodeMachine, Simulator, Step};

struct RandomRouterMachine<P: RoutePayload> {
    inner: RandExchange<cc_core::routing::RoutedMessage<P>>,
}

impl<P: RoutePayload> NodeMachine for RandomRouterMachine<P> {
    type Msg = RxMsg<cc_core::routing::RoutedMessage<P>>;
    type Output = Vec<cc_core::routing::RoutedMessage<P>>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let (base, outbox) = ctx.split();
        for (dst, m) in self.inner.activate(base) {
            outbox.push((dst, m));
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg>,
        inbox: &mut Inbox<Self::Msg>,
    ) -> Step<Self::Output> {
        let msgs = inbox.take_all();
        let (base, outbox) = ctx.split();
        let (sends, out) = self.inner.on_round(base, msgs);
        for (dst, m) in sends {
            outbox.push((dst, m));
        }
        match out {
            Some(delivered) => Step::Done(delivered),
            None => Step::Continue,
        }
    }
}

/// Routes `instance` with the two-phase randomized algorithm: every
/// message takes an independently uniform random relay. The measured
/// round count is the realized `max-queue(A) + max-queue(B)` — with high
/// probability a small constant for balanced instances, roughly half the
/// deterministic algorithm's 16 (the paper's "about 2 times as fast").
///
/// # Errors
///
/// Propagates simulation and verification failures.
pub fn route_randomized<P: RoutePayload>(
    instance: &RoutingInstance<P>,
    seed: u64,
) -> Result<RouteOutcome<P>, CoreError> {
    let n = instance.n();
    let spec = CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(32)
        .with_max_rounds(4096);
    let machines = (0..n)
        .map(|v| {
            let msgs: Vec<(NodeId, cc_core::routing::RoutedMessage<P>)> = instance
                .sends(v)
                .iter()
                .map(|m| (m.dst, m.clone()))
                .collect();
            RandomRouterMachine {
                inner: RandExchange::new(n, NodeId::new(v), msgs, seed),
            }
        })
        .collect();
    let report = Simulator::new(spec, machines)?.run()?;
    let mut delivered = report.outputs;
    for d in &mut delivered {
        d.sort_unstable_by_key(|x| x.key());
    }
    instance.verify_delivery(&delivered)?;
    Ok(RouteOutcome {
        delivered,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_balanced_instance() {
        let n = 16;
        let instance = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let out = route_randomized(&instance, 7).unwrap();
        // Uniform load: each phase needs a handful of rounds whp.
        assert!(out.metrics.comm_rounds() >= 2);
        assert!(
            out.metrics.comm_rounds() <= 16,
            "{}",
            out.metrics.comm_rounds()
        );
    }

    #[test]
    fn delivers_cyclic_worst_case() {
        let n = 16;
        let instance =
            RoutingInstance::from_demands(n, |i, j| if (i + 1) % n == j { n as u32 } else { 0 })
                .unwrap();
        let out = route_randomized(&instance, 11).unwrap();
        assert!(out.metrics.comm_rounds() <= 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let n = 9;
        let instance = RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        let a = route_randomized(&instance, 3)
            .unwrap()
            .metrics
            .comm_rounds();
        let b = route_randomized(&instance, 3)
            .unwrap()
            .metrics
            .comm_rounds();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_instance() {
        let n = 8;
        let instance = RoutingInstance::from_demands(n, |_, _| 0).unwrap();
        let out = route_randomized(&instance, 1).unwrap();
        // Only the pacing overlays fly.
        assert!(out.metrics.comm_rounds() <= 2);
    }
}
