//! # cc-baselines — comparison algorithms for the congested clique
//!
//! The paper positions its deterministic algorithms against the
//! randomized constant-round solutions of Lenzen–Wattenhofer \[7\]
//! (routing) and Patt-Shamir–Teplitsky \[12\] (sorting), remarking that
//! "the randomized solutions are about 2 times as fast". This crate
//! provides faithful simplified comparators:
//!
//! * [`route_randomized`] — two-phase Valiant-style routing: every
//!   message travels through an independently uniform random relay; each
//!   phase self-paces to the realized maximum queue depth, learned through
//!   a one-word overlay broadcast (so the round count adapts to the
//!   randomness, with high probability `≈ load/n + O(log n / log log n)`
//!   per phase).
//! * [`sort_randomized`] — randomized sample sort: random splitters,
//!   randomized key routing, a second sampling level within groups, and
//!   the same interval redistribution the deterministic algorithm ends
//!   with.
//! * [`route_direct`] — the no-relay strawman: messages go straight to
//!   their destinations, one per edge per round, taking exactly the
//!   maximum per-pair multiplicity — `Θ(n)` rounds on skewed workloads,
//!   which is the gap that motivates relaying at all.
//! * [`sort_gather`] — the single-collector strawman for sorting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod direct;
mod rand_exchange;
mod random_routing;
mod random_sorting;

pub use direct::{route_direct, sort_gather, DirectOutcome, GatherOutcome};
pub use random_routing::route_randomized;
pub use random_sorting::{sort_randomized, RandomSortOutcome};
