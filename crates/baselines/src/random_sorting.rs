//! Randomized sample sort, after Patt-Shamir–Teplitsky \[12\]: random
//! splitters, randomized routing of keys into `√n`-sized groups, a second
//! random splitter level within groups, and an interval redistribution.
//! Constant rounds with high probability — empirically about half the
//! deterministic algorithm's 37.

use crate::rand_exchange::{RandExchange, RxMsg};
use cc_core::sorting::{KeyBatch, TaggedKey};
use cc_core::CoreError;
use cc_primitives::NodeGroup;
use cc_rand::DetRng;
use cc_sim::util::{isqrt, sort_cost, word_bits};
use cc_sim::{CliqueSpec, Ctx, Inbox, Metrics, NodeId, NodeMachine, Payload, Simulator, Step};

/// Messages of the randomized sort.
#[derive(Clone, Debug)]
pub enum RsMsg {
    /// Level-1 random splitter sample.
    Sample(TaggedKey),
    /// Key routing into groups.
    Rx1(RxMsg<KeyBatch>),
    /// Level-2 (within-group) splitter sample.
    Sub(TaggedKey),
    /// Key routing to final members.
    Rx2(RxMsg<KeyBatch>),
    /// Holding-size broadcast.
    Holding(u64),
    /// Interval exchange, relay leg.
    R8a {
        /// Global rank.
        rank: u64,
        /// The key.
        key: TaggedKey,
    },
    /// Interval exchange, delivery leg.
    R8b {
        /// Global rank.
        rank: u64,
        /// The key.
        key: TaggedKey,
    },
}

impl Payload for RsMsg {
    fn size_bits(&self, n: usize) -> u64 {
        let w = word_bits(n);
        3 + match self {
            RsMsg::Sample(k) | RsMsg::Sub(k) => k.size_bits(n),
            RsMsg::Rx1(m) | RsMsg::Rx2(m) => m.size_bits(n),
            RsMsg::Holding(_) => 2 * w,
            RsMsg::R8a { key, .. } | RsMsg::R8b { key, .. } => 2 * w + key.size_bits(n),
        }
    }
}

enum Phase {
    AwaitSamples,
    Rx1(RandExchange<KeyBatch>),
    AwaitSub,
    Rx2(RandExchange<KeyBatch>),
    AwaitHoldings,
    R8Relay,
    Collect,
}

struct RandomSortMachine {
    n: usize,
    g: usize,
    num_groups: usize,
    me: NodeId,
    seed: u64,
    keys: Vec<TaggedKey>,
    phase: Phase,
    received: Vec<TaggedKey>,
    holdings: Vec<u64>,
    q: u64,
}

impl RandomSortMachine {
    fn group(&self, j: usize) -> NodeGroup {
        let start = j * self.g;
        NodeGroup::contiguous(start, self.g.min(self.n - start))
    }

    fn my_group_index(&self) -> usize {
        self.me.index() / self.g
    }

    /// Strided batch assignment of `bucketed[j]` keys across group `j`.
    fn batch_to_groups(&self, buckets: Vec<Vec<TaggedKey>>) -> Vec<(NodeId, KeyBatch)> {
        let mut out = Vec::new();
        for (j, bucket) in buckets.into_iter().enumerate() {
            let group = self.group(j);
            let w = group.len();
            let mut per_member: Vec<Vec<TaggedKey>> = vec![Vec::new(); w];
            for (p, k) in bucket.into_iter().enumerate() {
                per_member[(p + self.me.index()) % w].push(k);
            }
            for (u, keys) in per_member.into_iter().enumerate() {
                for batch in KeyBatch::split(&keys) {
                    out.push((group.member(u), batch));
                }
            }
        }
        out
    }
}

fn split_by(keys: Vec<TaggedKey>, splitters: &[TaggedKey], buckets: usize) -> Vec<Vec<TaggedKey>> {
    let mut out: Vec<Vec<TaggedKey>> = vec![Vec::new(); buckets];
    for k in keys {
        let b = splitters.partition_point(|s| *s < k).min(buckets - 1);
        out[b].push(k);
    }
    out
}

fn pick_splitters(mut samples: Vec<TaggedKey>, parts: usize) -> Vec<TaggedKey> {
    samples.sort_unstable();
    if samples.is_empty() || parts <= 1 {
        return Vec::new();
    }
    let stride = samples.len().div_ceil(parts).max(1);
    samples
        .iter()
        .enumerate()
        .filter(|(i, _)| (i + 1) % stride == 0)
        .take(parts - 1)
        .map(|(_, k)| *k)
        .collect()
}

impl NodeMachine for RandomSortMachine {
    type Msg = RsMsg;
    type Output = (Vec<TaggedKey>, u64);

    fn on_start(&mut self, ctx: &mut Ctx<'_, RsMsg>) {
        self.keys.sort_unstable();
        ctx.charge_work(sort_cost(self.keys.len()));
        if !self.keys.is_empty() {
            let mut rng = DetRng::seed_from_u64(self.seed ^ self.me.raw() as u64);
            let pick = self.keys[rng.gen_range_usize(0..self.keys.len())];
            ctx.broadcast(RsMsg::Sample(pick));
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, RsMsg>,
        inbox: &mut Inbox<RsMsg>,
    ) -> Step<Self::Output> {
        let mut samples = Vec::new();
        let mut rx1 = Vec::new();
        let mut subs = Vec::new();
        let mut rx2 = Vec::new();
        let mut holdings = Vec::new();
        let mut r8a = Vec::new();
        let mut r8b = Vec::new();
        for (src, msg) in inbox.drain() {
            match msg {
                RsMsg::Sample(k) => samples.push(k),
                RsMsg::Rx1(m) => rx1.push((src, m)),
                RsMsg::Sub(k) => subs.push((src, k)),
                RsMsg::Rx2(m) => rx2.push((src, m)),
                RsMsg::Holding(h) => holdings.push((src, h)),
                RsMsg::R8a { rank, key } => r8a.push((src, rank, key)),
                RsMsg::R8b { rank, key } => r8b.push((rank, key)),
            }
        }
        match &mut self.phase {
            Phase::AwaitSamples => {
                let splitters = pick_splitters(samples, self.num_groups);
                let buckets = split_by(std::mem::take(&mut self.keys), &splitters, self.num_groups);
                let msgs = self.batch_to_groups(buckets);
                let mut rx = RandExchange::new(self.n, self.me, msgs, self.seed ^ 0xA1);
                let (base, outbox) = ctx.split();
                for (dst, m) in rx.activate(base) {
                    outbox.push((dst, RsMsg::Rx1(m)));
                }
                self.phase = Phase::Rx1(rx);
                Step::Continue
            }
            Phase::Rx1(rx) => {
                let (base, outbox) = ctx.split();
                let (sends, out) = rx.on_round(base, rx1);
                for (dst, m) in sends {
                    outbox.push((dst, RsMsg::Rx1(m)));
                }
                if let Some(batches) = out {
                    self.received = batches.into_iter().flat_map(|b| b.keys).collect();
                    if !self.received.is_empty() {
                        let mut rng =
                            DetRng::seed_from_u64(self.seed ^ 0xB2 ^ self.me.raw() as u64);
                        let pick = self.received[rng.gen_range_usize(0..self.received.len())];
                        ctx.broadcast(RsMsg::Sub(pick));
                    }
                    self.phase = Phase::AwaitSub;
                }
                Step::Continue
            }
            Phase::AwaitSub => {
                // Sub-splitters for my group: the samples its members sent.
                let my_group = self.group(self.my_group_index());
                let w = my_group.len();
                let my_subs: Vec<TaggedKey> = subs
                    .into_iter()
                    .filter(|(src, _)| my_group.contains(*src))
                    .map(|(_, k)| k)
                    .collect();
                let splitters = pick_splitters(my_subs, w);
                let buckets = split_by(std::mem::take(&mut self.received), &splitters, w);
                let mut msgs = Vec::new();
                for (u, keys) in buckets.into_iter().enumerate() {
                    for batch in KeyBatch::split(&keys) {
                        msgs.push((my_group.member(u), batch));
                    }
                }
                let mut rx = RandExchange::new(self.n, self.me, msgs, self.seed ^ 0xC3);
                let (base, outbox) = ctx.split();
                for (dst, m) in rx.activate(base) {
                    outbox.push((dst, RsMsg::Rx2(m)));
                }
                self.phase = Phase::Rx2(rx);
                Step::Continue
            }
            Phase::Rx2(rx) => {
                let (base, outbox) = ctx.split();
                let (sends, out) = rx.on_round(base, rx2);
                for (dst, m) in sends {
                    outbox.push((dst, RsMsg::Rx2(m)));
                }
                if let Some(batches) = out {
                    self.received = batches.into_iter().flat_map(|b| b.keys).collect();
                    self.received.sort_unstable();
                    ctx.charge_work(sort_cost(self.received.len()));
                    ctx.broadcast(RsMsg::Holding(self.received.len() as u64));
                    self.phase = Phase::AwaitHoldings;
                }
                Step::Continue
            }
            Phase::AwaitHoldings => {
                for (src, h) in holdings {
                    self.holdings[src.index()] = h;
                }
                let total: u64 = self.holdings.iter().sum();
                self.q = total.div_ceil(self.n as u64).max(1);
                let offset: u64 = self.holdings[..self.me.index()].iter().sum();
                for (i, k) in self.received.drain(..).enumerate() {
                    let rank = offset + i as u64;
                    ctx.send(
                        NodeId::new((rank % self.n as u64) as usize),
                        RsMsg::R8a { rank, key: k },
                    );
                }
                self.phase = Phase::R8Relay;
                Step::Continue
            }
            Phase::R8Relay => {
                for (_, rank, key) in r8a {
                    ctx.send(
                        NodeId::new((rank / self.q) as usize),
                        RsMsg::R8b { rank, key },
                    );
                }
                self.phase = Phase::Collect;
                Step::Continue
            }
            Phase::Collect => {
                r8b.sort_unstable_by_key(|&(rank, _)| rank);
                let offset = self.q * self.me.index() as u64;
                Step::Done((r8b.into_iter().map(|(_, k)| k).collect(), offset))
            }
        }
    }
}

/// Outcome of a randomized sort run.
#[derive(Debug)]
pub struct RandomSortOutcome {
    /// Per-node sorted batches.
    pub batches: Vec<Vec<TaggedKey>>,
    /// Measurements — compare `comm_rounds` against the deterministic 37.
    pub metrics: Metrics,
}

/// Sorts with the randomized sample-sort baseline.
///
/// # Errors
///
/// Propagates simulation failures and verifies the result against a
/// reference sort.
pub fn sort_randomized(keys: &[Vec<u64>], seed: u64) -> Result<RandomSortOutcome, CoreError> {
    let n = keys.len();
    if n == 0 {
        return Err(CoreError::invalid("at least one node required"));
    }
    let g = isqrt(n).max(1);
    let machines = (0..n)
        .map(|v| RandomSortMachine {
            n,
            g,
            num_groups: n.div_ceil(g),
            me: NodeId::new(v),
            seed,
            keys: keys[v]
                .iter()
                .enumerate()
                .map(|(i, &k)| TaggedKey::new(k, NodeId::new(v), i as u32))
                .collect(),
            phase: Phase::AwaitSamples,
            received: Vec::new(),
            holdings: vec![0; n],
            q: 1,
        })
        .collect();
    let spec = CliqueSpec::new(n)
        .expect("n >= 1")
        .with_budget_words(512)
        .with_max_rounds(4096);
    let report = Simulator::new(spec, machines)?.run()?;
    let batches: Vec<Vec<TaggedKey>> = report.outputs.into_iter().map(|(b, _)| b).collect();
    let mut reference: Vec<TaggedKey> = keys
        .iter()
        .enumerate()
        .flat_map(|(i, list)| {
            list.iter()
                .enumerate()
                .map(move |(j, &k)| TaggedKey::new(k, NodeId::new(i), j as u32))
        })
        .collect();
    reference.sort_unstable();
    let got: Vec<TaggedKey> = batches.iter().flatten().copied().collect();
    if got != reference {
        return Err(CoreError::VerificationFailed {
            reason: format!(
                "randomized sort mismatch: {} keys out, {} expected",
                got.len(),
                reference.len()
            ),
        });
    }
    Ok(RandomSortOutcome {
        batches,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_beats_half_of_37_roughly() {
        let n = 16;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 131 + j * 17) % 4096) as u64).collect())
            .collect();
        let out = sort_randomized(&keys, 42).unwrap();
        assert!(
            out.metrics.comm_rounds() < 37,
            "{} rounds",
            out.metrics.comm_rounds()
        );
    }

    #[test]
    fn duplicate_heavy() {
        let n = 9;
        let keys: Vec<Vec<u64>> = (0..n).map(|_| vec![5; n]).collect();
        let out = sort_randomized(&keys, 7).unwrap();
        assert!(out.metrics.comm_rounds() < 37);
    }

    #[test]
    fn deterministic_per_seed() {
        let n = 9;
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i + j * 3) % 11) as u64).collect())
            .collect();
        let a = sort_randomized(&keys, 5).unwrap().metrics.comm_rounds();
        let b = sort_randomized(&keys, 5).unwrap().metrics.comm_rounds();
        assert_eq!(a, b);
    }
}
