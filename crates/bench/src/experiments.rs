//! One function per experiment table (E1–E14).

use cc_baselines::{route_direct, route_randomized, sort_gather, sort_randomized};
use cc_coloring::{color_alternating, color_exact, color_greedy, BipartiteMultigraph};
use cc_core::routing::{route_deterministic, route_optimized, spec_for_routing, RoutingInstance};
use cc_core::sorting::{
    global_indices, mode_query, select_rank, small_key_census, sort_keys, SubsetSort,
};
use cc_core::CongestedClique;
use cc_primitives::{drive, DemandMatrix, KnownExchange, NodeGroup, SubsetExchange};
use cc_sim::util::{isqrt, word_bits};
use cc_sim::{run_protocol, CliqueSpec, CommonScope, Payload};
use cc_workloads as wl;

fn header(id: &str, claim: &str) {
    println!("\n### {id} — {claim}");
}

/// E1: Theorem 3.7 — deterministic routing takes at most 16 rounds for
/// every workload and every n (square or not).
pub fn e1() {
    header(
        "E1",
        "Thm 3.7: deterministic routing ≤ 16 rounds (paper: 16)",
    );
    println!(
        "{:<10} {:>5} {:>7} {:>10} {:>14} {:>12}",
        "workload", "n", "rounds", "messages", "max edge bits", "budget bits"
    );
    for n in [16usize, 25, 64, 100, 144, 200, 256] {
        let cases: Vec<(&str, RoutingInstance)> = vec![
            ("balanced", wl::balanced_random(n, 42).unwrap()),
            ("cyclic", wl::cyclic_skew(n).unwrap()),
            ("block", wl::block_skew(n).unwrap()),
            ("sparse", wl::sparse_random(n, n / 2, 7).unwrap()),
        ];
        for (name, inst) in cases {
            let out = route_deterministic(&inst).unwrap();
            println!(
                "{:<10} {:>5} {:>7} {:>10} {:>14} {:>12}",
                name,
                n,
                out.metrics.comm_rounds(),
                out.metrics.total_messages(),
                out.metrics.max_edge_bits(),
                spec_for_routing(n).bits_per_edge(),
            );
        }
    }
}

/// E2: Theorem 5.4 — 12 rounds with O(n log n) work and memory; the
/// basic algorithm's work grows superlinearly.
pub fn e2() {
    header("E2", "Thm 5.4: 12 rounds, O(n log n) work/node (paper: 12)");
    println!(
        "{:>5} {:>8} {:>12} {:>12} | {:>8} {:>12} {:>12}",
        "n", "basic r", "basic work", "w/(n·lg n)", "opt r", "opt work", "w/(n·lg n)"
    );
    for n in [16usize, 64, 144, 256, 400] {
        let inst = wl::balanced_random(n, 42).unwrap();
        let basic = route_deterministic(&inst).unwrap().metrics;
        let opt = route_optimized(&inst).unwrap().metrics;
        let nlogn = (n as f64) * (n as f64).log2();
        println!(
            "{:>5} {:>8} {:>12} {:>12.1} | {:>8} {:>12} {:>12.1}",
            n,
            basic.comm_rounds(),
            basic.max_node_steps(),
            basic.max_node_steps() as f64 / nlogn,
            opt.comm_rounds(),
            opt.max_node_steps(),
            opt.max_node_steps() as f64 / nlogn,
        );
    }
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Tag(u32, u32);
impl Payload for Tag {
    fn size_bits(&self, n: usize) -> u64 {
        2 * word_bits(n)
    }
}

/// E3: Corollary 3.3 — known-pattern exchange in 2 rounds.
pub fn e3() {
    header("E3", "Cor 3.3: known-demand exchange = 2 rounds (paper: 2)");
    println!(
        "{:<24} {:>5} {:>4} {:>7} {:>10}",
        "demand shape", "n", "|W|", "rounds", "messages"
    );
    for (n, w) in [(16usize, 4usize), (64, 8), (64, 64), (256, 16)] {
        for (name, f) in [("uniform 1/pair", 1u32), ("uniform 2/pair", 2)] {
            let group = NodeGroup::contiguous(0, w);
            let demands = {
                let mut d = DemandMatrix::new(w);
                for i in 0..w {
                    for j in 0..w {
                        d.set(i, j, f);
                    }
                }
                d
            };
            if demands.max_line_sum() > 8 * n as u64 {
                continue;
            }
            let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                if let Some(local) = group.local_index(me) {
                    let outgoing: Vec<Vec<Tag>> = (0..w)
                        .map(|j| {
                            (0..demands.get(local, j))
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        })
                        .collect();
                    drive(KnownExchange::member(
                        group.clone(),
                        demands.clone(),
                        outgoing,
                        CommonScope::new("bench.e3", (n * 64 + w) as u64),
                    ))
                } else {
                    drive(KnownExchange::relay_only())
                }
            })
            .unwrap();
            println!(
                "{:<24} {:>5} {:>4} {:>7} {:>10}",
                name,
                n,
                w,
                report.metrics.comm_rounds(),
                report.metrics.total_messages()
            );
        }
    }
}

/// E4: Corollary 3.4 — unknown-demand subset exchange in 4 rounds.
pub fn e4() {
    header(
        "E4",
        "Cor 3.4: subset exchange (|W| ≤ √n) = 4 rounds (paper: 4)",
    );
    println!("{:<5} {:>4} {:>7} {:>10}", "n", "|W|", "rounds", "messages");
    for (n, w) in [(16usize, 4usize), (64, 8), (144, 12), (256, 16)] {
        let group = NodeGroup::contiguous(0, w);
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
            if let Some(local) = group.local_index(me) {
                let outgoing: Vec<Vec<Tag>> = (0..w)
                    .map(|j| {
                        (0..((local * 3 + j * 5) % w) as u32)
                            .map(|k| Tag(me.raw(), k))
                            .collect()
                    })
                    .collect();
                drive(SubsetExchange::member(
                    group.clone(),
                    local,
                    outgoing,
                    CommonScope::new("bench.e4", (n * 64 + w) as u64),
                ))
            } else {
                drive(SubsetExchange::relay_only())
            }
        })
        .unwrap();
        println!(
            "{:<5} {:>4} {:>7} {:>10}",
            n,
            w,
            report.metrics.comm_rounds(),
            report.metrics.total_messages()
        );
    }
}

/// E5: phase breakdown of Algorithm 1 (paper: 7 + 4 + 1 + 4 = 16).
pub fn e5() {
    header(
        "E5",
        "Alg 1 phase budget: 7 (Alg 2) + 4 + 1 + 4 = 16 rounds",
    );
    // The engine measures totals; the breakdown is structural (fixed call
    // schedule), so we print the designed schedule and confirm the total.
    println!(
        "  Alg 2 (Step 2 of Alg 1):   rounds  1–7   (2 count + 2 announce + 2 exchange + 1 move)"
    );
    println!("  Alg 1 Step 3:              rounds  8–11  (2 announce + 2 exchange)");
    println!("  Alg 1 Step 4:              round   12    (direct move)");
    println!("  Alg 1 Step 5 (Cor 3.4):    rounds 13–16");
    for n in [64usize, 256] {
        let inst = wl::balanced_random(n, 1).unwrap();
        let out = route_deterministic(&inst).unwrap();
        println!(
            "  measured total (n = {n}): {} rounds",
            out.metrics.comm_rounds()
        );
        // Per-round traffic confirms every scheduled round carries load.
        let busy: Vec<u64> = out.metrics.rounds().iter().map(|r| r.messages).collect();
        println!("  per-round messages: {busy:?}");
    }
}

/// E6: Theorem 4.5 — sorting in 37 rounds, with step breakdown.
pub fn e6() {
    header(
        "E6",
        "Thm 4.5: sorting = 37 rounds (paper: 0+1+8+2+0+16+8+2)",
    );
    println!(
        "{:<10} {:>5} {:>7} {:>10} {:>14}",
        "keys", "n", "rounds", "messages", "max edge bits"
    );
    for n in [16usize, 36, 64, 100] {
        for (name, keys) in [
            ("uniform", wl::uniform_keys(n, 5)),
            ("sorted", wl::sorted_keys(n)),
            ("reverse", wl::reverse_keys(n)),
            ("dup-heavy", wl::duplicate_keys(n, 4, 5)),
        ] {
            let out = sort_keys(&keys).unwrap();
            println!(
                "{:<10} {:>5} {:>7} {:>10} {:>14}",
                name,
                n,
                out.metrics.comm_rounds(),
                out.metrics.total_messages(),
                out.metrics.max_edge_bits()
            );
        }
    }
    println!("  schedule: 1 (sample) + 8 (Alg 3) + 2 (delimiters) + 16 (Thm 3.7) + 8 (Alg 3 ∥) + 2 (interval) = 37");
}

/// E7: Algorithm 3 in 10 rounds; Lemma 4.3's bucket bound < 4·cap.
pub fn e7() {
    header(
        "E7",
        "Lemma 4.4: subset sort = 10 rounds; Lemma 4.3: bucket < 2·(2·cap)",
    );
    println!(
        "{:<12} {:>5} {:>4} {:>7} {:>12} {:>10}",
        "keys", "n", "|W|", "rounds", "max bucket", "bound 4cap"
    );
    for (n, w) in [(16usize, 4usize), (64, 8), (256, 16)] {
        for (name, seed) in [("uniform", 3u64), ("dup-heavy", 4)] {
            let group = NodeGroup::contiguous(0, w);
            let cap = 2 * n;
            let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(512), |me| {
                if let Some(local) = group.local_index(me) {
                    let keys: Vec<cc_core::sorting::TaggedKey> = (0..cap)
                        .map(|i| {
                            let v = if name == "uniform" {
                                ((local * 7919 + i * 104729 + seed as usize) % 65536) as u64
                            } else {
                                ((local + i) % 5) as u64
                            };
                            cc_core::sorting::TaggedKey::new(v, me, i as u32)
                        })
                        .collect();
                    drive(SubsetSort::member(
                        group.clone(),
                        local,
                        keys,
                        cap,
                        false,
                        CommonScope::new("bench.e7", (n * 1024 + w) as u64 + seed),
                    ))
                } else {
                    drive(SubsetSort::relay_only(false))
                }
            })
            .unwrap();
            let max_bucket = report
                .outputs
                .iter()
                .map(|o| o.member_counts.iter().copied().max().unwrap_or(0))
                .max()
                .unwrap_or(0);
            println!(
                "{:<12} {:>5} {:>4} {:>7} {:>12} {:>10}",
                name,
                n,
                w,
                report.metrics.comm_rounds(),
                max_bucket,
                4 * cap
            );
        }
    }
}

/// E8: Corollary 4.6 — indices, selection, mode in O(1) rounds.
pub fn e8() {
    header(
        "E8",
        "Cor 4.6: index variant + selection + mode = O(1) rounds",
    );
    println!(
        "{:<10} {:>5} {:>14} {:>13} {:>11}",
        "keys", "n", "indices rounds", "select rounds", "mode rounds"
    );
    for n in [16usize, 36, 64] {
        let keys = wl::duplicate_keys(n, 7, 9);
        let idx = global_indices(&keys).unwrap();
        let sel = select_rank(&keys, (n * n / 2) as u64).unwrap();
        let md = mode_query(&keys).unwrap();
        println!(
            "{:<10} {:>5} {:>14} {:>13} {:>11}",
            "dup-heavy",
            n,
            idx.metrics.comm_rounds(),
            sel.metrics.comm_rounds(),
            md.metrics.comm_rounds()
        );
    }
}

/// E9: the paper's §1 comparison for routing.
pub fn e9() {
    header(
        "E9",
        "§1: randomized routing ≈ 2× faster (w.h.p.); direct = Θ(n) on skew",
    );
    println!(
        "{:<10} {:>5} {:>9} {:>7} {:>11} {:>8}",
        "workload", "n", "det-16", "det-12", "randomized", "direct"
    );
    for n in [16usize, 64, 144, 256] {
        for (name, inst) in [
            ("balanced", wl::balanced_random(n, 11).unwrap()),
            ("cyclic", wl::cyclic_skew(n).unwrap()),
        ] {
            let det = route_deterministic(&inst).unwrap().metrics.comm_rounds();
            let opt = route_optimized(&inst).unwrap().metrics.comm_rounds();
            let rnd = route_randomized(&inst, 1234).unwrap().metrics.comm_rounds();
            let dir = route_direct(&inst).unwrap().metrics.comm_rounds();
            println!(
                "{:<10} {:>5} {:>9} {:>7} {:>11} {:>8}",
                name, n, det, opt, rnd, dir
            );
        }
    }
}

/// E10: the comparison for sorting.
pub fn e10() {
    header(
        "E10",
        "§1: randomized sorting ≈ 2× faster (w.h.p.); gather = Θ(n)",
    );
    println!(
        "{:>5} {:>8} {:>11} {:>8}",
        "n", "det-37", "randomized", "gather"
    );
    for n in [16usize, 36, 64, 100] {
        let keys = wl::uniform_keys(n, 13);
        let det = sort_keys(&keys).unwrap().metrics.comm_rounds();
        let rnd = sort_randomized(&keys, 1234).unwrap().metrics.comm_rounds();
        let gat = sort_gather(&keys).unwrap().metrics.comm_rounds();
        println!("{:>5} {:>8} {:>11} {:>8}", n, det, rnd, gat);
    }
}

/// E11: §6.1 — large messages split into word-sized fragments.
pub fn e11() {
    header(
        "E11",
        "§6.1: L-bit messages → ⌈L/word⌉ sequential instances (rounds scale linearly)",
    );
    println!(
        "{:>5} {:>10} {:>11} {:>7}",
        "n", "frag count", "instances", "rounds"
    );
    for n in [16usize, 64] {
        for frags in [1usize, 2, 4, 8] {
            // A message of frags·(2 words) is shipped as `frags` sequential
            // full instances; total rounds = frags × 16.
            let mut total_rounds = 0u64;
            for f in 0..frags {
                let inst = wl::balanced_random(n, 100 + f as u64).unwrap();
                total_rounds += route_deterministic(&inst).unwrap().metrics.comm_rounds();
            }
            println!("{:>5} {:>10} {:>11} {:>7}", n, frags, frags, total_rounds);
        }
    }
}

/// E12: §6.3 — small keys counted in 2 rounds with ≤ 2-bit messages.
pub fn e12() {
    header(
        "E12",
        "§6.3: b-bit keys → 2 rounds, 1–2-bit messages (paper: 2)",
    );
    println!(
        "{:>9} {:>7} {:>5} {:>7} {:>14} {:>10}",
        "key bits", "values", "n", "rounds", "max edge bits", "messages"
    );
    for (bits, n) in [(1u32, 128usize), (2, 512), (3, 1024)] {
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..n / 2).map(|i| ((v + i) % (1 << bits)) as u64).collect())
            .collect();
        let out = small_key_census(&keys, bits).unwrap();
        println!(
            "{:>9} {:>7} {:>5} {:>7} {:>14} {:>10}",
            bits,
            1 << bits,
            n,
            out.metrics.comm_rounds(),
            out.metrics.max_edge_bits(),
            out.metrics.total_messages()
        );
    }
}

/// E13: Theorem 3.2 — exact König colorings use exactly Δ colors; greedy
/// stays below 2Δ.
pub fn e13() {
    header("E13", "Thm 3.2 / fn.3: exact = Δ colors, greedy ≤ 2Δ−1");
    println!(
        "{:>5} {:>5} {:>9} {:>11} {:>12} {:>12}",
        "|V|", "Δ", "edges", "exact", "alternating", "greedy"
    );
    let mut seed = 0x12345u64;
    for (v, d) in [(8usize, 4usize), (16, 16), (32, 64), (64, 128)] {
        // d-regular via random permutation sums.
        let mut demands = vec![0u32; v * v];
        for _ in 0..d {
            let mut perm: Vec<usize> = (0..v).collect();
            for i in (1..v).rev() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                perm.swap(i, (seed >> 33) as usize % (i + 1));
            }
            for (i, &j) in perm.iter().enumerate() {
                demands[i * v + j] += 1;
            }
        }
        let g = BipartiteMultigraph::from_demands(v, v, &demands).unwrap();
        let exact = color_exact(&g).unwrap().num_colors();
        let alt = color_alternating(&g).num_colors();
        let greedy = color_greedy(&g).num_colors();
        println!(
            "{:>5} {:>5} {:>9} {:>11} {:>12} {:>12}",
            2 * v,
            d,
            g.num_edges(),
            exact,
            alt,
            greedy
        );
        assert_eq!(exact as usize, d);
        assert!((greedy as usize) < 2 * d);
    }
}

/// E14: per-edge load balance — the deterministic plans keep every edge
/// at O(log n) bits, every round.
pub fn e14() {
    header(
        "E14",
        "load balance: per-edge bit-load histogram (det routing)",
    );
    let n = 64;
    let inst = wl::balanced_random(n, 21).unwrap();
    let spec = spec_for_routing(n).with_edge_histogram(true);
    let out = cc_core::routing::route_with_spec(&inst, spec).unwrap();
    let hist = out.metrics.edge_histogram().expect("histogram enabled");
    println!("  n = {n}, balanced workload; word = {} bits", word_bits(n));
    println!("{:>14} {:>16}", "bits/edge/rnd", "edge-rounds");
    for (bits, count) in hist.iter() {
        println!("{:>14} {:>16}", bits, count);
    }
    println!(
        "  max observed: {} bits (budget {})",
        hist.max_load(),
        spec_for_routing(n).bits_per_edge()
    );
}

/// Facade smoke run used by `tables all`.
pub fn facade_demo() {
    let clique = CongestedClique::new(25).unwrap();
    let inst = wl::permutation(25, 3).unwrap();
    let out = clique.route(&inst).unwrap();
    println!(
        "\nfacade: routed a permutation on n=25 in {} rounds",
        out.metrics.comm_rounds()
    );
    let _ = isqrt(25);
}

/// E15 (ablation): per-edge vs bundled exchange plans — identical
/// 2-round delivery, an order of magnitude less planning work (the §5
/// design choice isolated from the rest of the pipeline).
pub fn e15() {
    header(
        "E15",
        "ablation: Cor 3.3 plan strategy — per-edge vs bundled (§5 / fn. 3)",
    );
    println!(
        "{:>5} {:>4} {:>10} | {:>8} {:>12} | {:>8} {:>12}",
        "n", "|W|", "messages", "pe rnds", "pe work", "bd rnds", "bd work"
    );
    for (n, w, per_pair) in [(64usize, 8usize, 8u32), (256, 16, 16), (1024, 32, 32)] {
        let group = NodeGroup::contiguous(0, w);
        let mut demands = DemandMatrix::new(w);
        for i in 0..w {
            for j in 0..w {
                demands.set(i, j, per_pair);
            }
        }
        let mut results = Vec::new();
        for bundled in [false, true] {
            let report = run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                if let Some(local) = group.local_index(me) {
                    let outgoing: Vec<Vec<Tag>> = (0..w)
                        .map(|j| {
                            (0..demands.get(local, j))
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        })
                        .collect();
                    let scope = CommonScope::new("bench.e15", (n * 2 + bundled as usize) as u64);
                    if bundled {
                        drive(KnownExchange::member_bundled(
                            group.clone(),
                            demands.clone(),
                            outgoing,
                            scope,
                        ))
                    } else {
                        drive(KnownExchange::member(
                            group.clone(),
                            demands.clone(),
                            outgoing,
                            scope,
                        ))
                    }
                } else {
                    drive(KnownExchange::relay_only())
                }
            })
            .unwrap();
            results.push((
                report.metrics.comm_rounds(),
                report.metrics.max_node_steps(),
                report.metrics.total_messages(),
            ));
        }
        println!(
            "{:>5} {:>4} {:>10} | {:>8} {:>12} | {:>8} {:>12}",
            n, w, results[0].2, results[0].0, results[0].1, results[1].0, results[1].1
        );
    }
}

/// E16: §6.2 — with globally known patterns, messages need *zero*
/// addressing bits: one-bit payloads route in 2 rounds at 1 bit per edge.
pub fn e16() {
    header(
        "E16",
        "§6.2: known patterns → headerless messages (B ∈ O(M), M = 1 bit)",
    );
    println!(
        "{:>5} {:>7} {:>14} {:>10}",
        "n", "rounds", "max edge bits", "messages"
    );
    for n in [16usize, 64, 256] {
        let group = cc_primitives::NodeGroup::whole_clique(n);
        let mut demands = DemandMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                demands.set(i, j, 1);
            }
        }
        #[derive(Clone, Debug)]
        struct Bit(bool);
        impl Payload for Bit {
            fn size_bits(&self, _n: usize) -> u64 {
                u64::from(self.0) | 1
            }
        }
        let report = run_protocol(CliqueSpec::new(n).unwrap().with_bits_per_edge(2), |me| {
            let outgoing: Vec<Vec<Bit>> = (0..n)
                .map(|j| vec![Bit((me.index() ^ j) % 2 == 0)])
                .collect();
            drive(cc_primitives::HeaderlessExchange::new(
                group.clone(),
                demands.clone(),
                outgoing,
                CommonScope::new("bench.e16", n as u64),
            ))
        })
        .unwrap();
        println!(
            "{:>5} {:>7} {:>14} {:>10}",
            n,
            report.metrics.comm_rounds(),
            report.metrics.max_edge_bits(),
            report.metrics.total_messages()
        );
    }
}
