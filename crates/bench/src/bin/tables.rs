//! Regenerates the experiment tables (E1–E14). Usage:
//!
//! ```sh
//! cargo run -p cc-bench --release --bin tables -- all
//! cargo run -p cc-bench --release --bin tables -- e1 e9 e10
//! ```

use cc_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    println!("# Lenzen (PODC 2013) — experiment tables");
    if want("e1") {
        ex::e1();
    }
    if want("e2") {
        ex::e2();
    }
    if want("e3") {
        ex::e3();
    }
    if want("e4") {
        ex::e4();
    }
    if want("e5") {
        ex::e5();
    }
    if want("e6") {
        ex::e6();
    }
    if want("e7") {
        ex::e7();
    }
    if want("e8") {
        ex::e8();
    }
    if want("e9") {
        ex::e9();
    }
    if want("e10") {
        ex::e10();
    }
    if want("e11") {
        ex::e11();
    }
    if want("e12") {
        ex::e12();
    }
    if want("e13") {
        ex::e13();
    }
    if want("e14") {
        ex::e14();
    }
    if want("e15") {
        ex::e15();
    }
    if want("e16") {
        ex::e16();
    }
}
