//! A minimal wall-clock benchmark harness with JSON artifacts.
//!
//! The workspace builds fully offline, so criterion is unavailable; this
//! module provides the subset the experiments need: warmup, repeated
//! samples, median/min/mean statistics, human-readable progress lines and
//! a machine-readable `BENCH_<name>.json` written at the workspace root.
//!
//! Quick mode (`--quick` argument or `CC_BENCH_QUICK=1`) drops to a
//! single sample with no warmup, for CI smoke runs.

use std::path::PathBuf;
use std::time::Instant;

/// Re-export: keeps the optimizer from discarding benchmark results.
pub use std::hint::black_box;

/// The host's available hardware parallelism (1 when undetectable) —
/// the single source for both the printed host summaries and the
/// `host_cores` fields of the JSON artifacts.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sampling configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Untimed warmup iterations per benchmark.
    pub warmup: usize,
    /// Whether quick mode was requested.
    pub quick: bool,
}

impl Options {
    /// Reads the configuration from the process arguments and environment
    /// (`--quick` / `CC_BENCH_QUICK=1` select quick mode).
    pub fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("CC_BENCH_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Options {
                samples: 1,
                warmup: 0,
                quick,
            }
        } else {
            Options {
                samples: 5,
                warmup: 1,
                quick,
            }
        }
    }
}

/// One benchmark's timing record.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Benchmark group (e.g. `route_optimized`).
    pub group: String,
    /// Problem size (clique nodes).
    pub n: usize,
    /// Variant within the group (e.g. `seed_reference`, `parallel`).
    pub mode: String,
    /// The number of stepping workers the variant's `ExecMode` resolved
    /// to on this host for this `n`, when the benchmark records it —
    /// this is what makes 1-core `parallel` rows self-identifying as
    /// re-measurements of the sequential engine.
    pub worker_threads: Option<usize>,
    /// Timed samples, nanoseconds.
    pub samples_ns: Vec<u128>,
}

impl Entry {
    /// Median of the timed samples.
    pub fn median_ns(&self) -> u128 {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Fastest timed sample.
    pub fn min_ns(&self) -> u128 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    /// Arithmetic mean of the timed samples.
    pub fn mean_ns(&self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns.iter().sum::<u128>() / self.samples_ns.len() as u128
    }
}

/// Times `f` under `opts`, printing one progress line, and returns the
/// record.
pub fn bench<T>(
    group: &str,
    n: usize,
    mode: &str,
    opts: &Options,
    mut f: impl FnMut() -> T,
) -> Entry {
    for _ in 0..opts.warmup {
        black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples.max(1) {
        let t = Instant::now();
        black_box(f());
        samples_ns.push(t.elapsed().as_nanos());
    }
    let entry = Entry {
        group: group.to_owned(),
        n,
        mode: mode.to_owned(),
        worker_threads: None,
        samples_ns,
    };
    println!(
        "{group:<24} n={n:<5} {mode:<16} median {:>12.3} ms  (min {:.3} ms, {} samples)",
        entry.median_ns() as f64 / 1e6,
        entry.min_ns() as f64 / 1e6,
        entry.samples_ns.len(),
    );
    entry
}

/// A derived baseline-vs-candidate ratio (`>1` means the candidate is
/// faster).
#[derive(Clone, Debug)]
pub struct Speedup {
    /// Benchmark group.
    pub group: String,
    /// Problem size.
    pub n: usize,
    /// The mode measured as the denominator's owner (the slow reference).
    pub baseline: String,
    /// The mode whose time is the denominator.
    pub candidate: String,
    /// `baseline_median / candidate_median`.
    pub ratio: f64,
}

/// Computes `baseline / candidate` from two entries' medians.
pub fn speedup(baseline: &Entry, candidate: &Entry) -> Speedup {
    Speedup {
        group: candidate.group.clone(),
        n: candidate.n,
        baseline: baseline.mode.clone(),
        candidate: candidate.mode.clone(),
        ratio: baseline.median_ns() as f64 / candidate.median_ns().max(1) as f64,
    }
}

/// The workspace root (two levels above `crates/bench`).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes `BENCH_<name>.json` at the workspace root and returns its path.
///
/// # Panics
///
/// Panics if the file cannot be written (benchmarks have no meaningful
/// recovery path).
pub fn write_json(name: &str, opts: &Options, entries: &[Entry], speedups: &[Speedup]) -> PathBuf {
    let host_cores = host_cores();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"quick\": {},\n", opts.quick));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!(
        "  \"parallel_feature\": {},\n",
        cfg!(feature = "parallel")
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        // Every entry carries the harness metadata needed to interpret it
        // in isolation: host core count, the worker count its mode
        // resolved to (when recorded), and whether it was a quick run.
        let worker_threads = e
            .worker_threads
            .map_or(String::new(), |t| format!(", \"worker_threads\": {t}"));
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"n\": {}, \"mode\": \"{}\", \"host_cores\": {}, \
             \"quick\": {}{}, \"samples\": {}, \
             \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}}}{}\n",
            json_escape(&e.group),
            e.n,
            json_escape(&e.mode),
            host_cores,
            opts.quick,
            worker_threads,
            e.samples_ns.len(),
            e.median_ns(),
            e.min_ns(),
            e.mean_ns(),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"n\": {}, \"baseline\": \"{}\", \"candidate\": \"{}\", \
             \"speedup\": {:.4}}}{}\n",
            json_escape(&s.group),
            s.n,
            json_escape(&s.baseline),
            json_escape(&s.candidate),
            s.ratio,
            if i + 1 < speedups.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, out).expect("write benchmark artifact");
    println!("wrote {}", path.display());
    path
}
