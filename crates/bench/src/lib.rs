//! # cc-bench — the experiment harness
//!
//! Regenerates every quantitative claim of Lenzen (PODC 2013) as a table;
//! see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results. Run single experiments with
//! `cargo run -p cc-bench --release --bin tables -- e1` (or `all`).

#![forbid(unsafe_code)]

pub mod experiments;
