//! # cc-bench — the experiment harness
//!
//! Regenerates every quantitative claim of Lenzen (PODC 2013) as a table;
//! see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results. Run single experiments with
//! `cargo run -p cc-bench --release --bin tables -- e1` (or `all`).
//!
//! Wall-clock benchmarks live under `benches/` on the dependency-free
//! [`harness`]; the flagship is `benches/engine.rs`, which measures the
//! optimized simulator (sequential and parallel) against the retained
//! seed-reference engine and writes `BENCH_engine.json` at the workspace
//! root:
//!
//! ```sh
//! cargo bench -p cc-bench --bench engine            # full run
//! cargo bench -p cc-bench --bench engine -- --quick # CI smoke run
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
