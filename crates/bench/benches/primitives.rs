//! Primitive round-trips: Corollary 3.3 and 3.4 exchanges (E3/E4
//! wall-clock).

use cc_primitives::{drive, DemandMatrix, KnownExchange, NodeGroup, SubsetExchange};
use cc_sim::util::word_bits;
use cc_sim::{run_protocol, CliqueSpec, CommonScope, Payload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

#[derive(Clone, Debug)]
struct Tag(u32, u32);
impl Payload for Tag {
    fn size_bits(&self, n: usize) -> u64 {
        // Both fields travel on the wire, one word each.
        let _ = (self.0, self.1);
        2 * word_bits(n)
    }
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(10);
    for n in [64usize, 256] {
        let w = cc_sim::util::isqrt(n);
        group.bench_with_input(BenchmarkId::new("known_exchange", n), &n, |b, &n| {
            let grp = NodeGroup::contiguous(0, w);
            let mut demands = DemandMatrix::new(w);
            for i in 0..w {
                for j in 0..w {
                    demands.set(i, j, (n / w) as u32);
                }
            }
            let mut tag = 0u64;
            b.iter(|| {
                tag += 1;
                let t = tag;
                run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                    if let Some(local) = grp.local_index(me) {
                        let outgoing: Vec<Vec<Tag>> = (0..w)
                            .map(|j| {
                                (0..demands.get(local, j)).map(|k| Tag(me.raw(), k)).collect()
                            })
                            .collect();
                        drive(KnownExchange::member(
                            grp.clone(),
                            demands.clone(),
                            outgoing,
                            CommonScope::new("bench.kx", t),
                        ))
                    } else {
                        drive(KnownExchange::relay_only())
                    }
                })
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("subset_exchange", n), &n, |b, &n| {
            let grp = NodeGroup::contiguous(0, w);
            let mut tag = 0u64;
            b.iter(|| {
                tag += 1;
                let t = tag;
                run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                    if let Some(local) = grp.local_index(me) {
                        let outgoing: Vec<Vec<Tag>> = (0..w)
                            .map(|j| (0..((local + j) % w) as u32).map(|k| Tag(me.raw(), k)).collect())
                            .collect();
                        drive(SubsetExchange::member(
                            grp.clone(),
                            local,
                            outgoing,
                            CommonScope::new("bench.sx", t),
                        ))
                    } else {
                        drive(SubsetExchange::relay_only())
                    }
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
