//! Primitive round-trips: Corollary 3.3 and 3.4 exchanges (E3/E4
//! wall-clock). Each group is measured twice — `default` builds a fresh
//! simulator per exchange, `session` answers every exchange on one
//! persistent `CliqueSession` via `drive_protocol_on` — so the artifact
//! shows what the session layer amortizes for 2–4-round primitives,
//! where per-run setup is proportionally largest.

use cc_bench::harness::{self, Options};
use cc_primitives::{
    drive, drive_protocol_on, DemandMatrix, KnownExchange, NodeGroup, SubsetExchange,
};
use cc_sim::util::word_bits;
use cc_sim::{run_protocol, CliqueSession, CliqueSpec, CommonScope, Payload};

#[derive(Clone, Debug)]
struct Tag(u32, u32);
impl Payload for Tag {
    fn size_bits(&self, n: usize) -> u64 {
        // Both fields travel on the wire, one word each.
        let _ = (self.0, self.1);
        2 * word_bits(n)
    }
}

fn main() {
    let opts = Options::from_env();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    let mut tag = 0u64;
    let mut session = CliqueSession::new();
    for n in [64usize, 256] {
        let w = cc_sim::util::isqrt(n);
        let grp = NodeGroup::contiguous(0, w);
        let mut demands = DemandMatrix::new(w);
        for i in 0..w {
            for j in 0..w {
                demands.set(i, j, (n / w) as u32);
            }
        }
        let known_fresh = harness::bench("known_exchange", n, "default", &opts, || {
            tag += 1;
            let t = tag;
            let grp = grp.clone();
            let demands = demands.clone();
            run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                if let Some(local) = grp.local_index(me) {
                    let outgoing: Vec<Vec<Tag>> = (0..w)
                        .map(|j| {
                            (0..demands.get(local, j))
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        })
                        .collect();
                    drive(KnownExchange::member(
                        grp.clone(),
                        demands.clone(),
                        outgoing,
                        CommonScope::new("bench.kx", t),
                    ))
                } else {
                    drive(KnownExchange::relay_only())
                }
            })
            .unwrap()
        });
        let known_session = harness::bench("known_exchange", n, "session", &opts, || {
            tag += 1;
            let t = tag;
            let grp = grp.clone();
            let demands = demands.clone();
            drive_protocol_on(
                &mut session,
                CliqueSpec::new(n).unwrap().with_budget_words(64),
                |me| {
                    if let Some(local) = grp.local_index(me) {
                        let outgoing: Vec<Vec<Tag>> = (0..w)
                            .map(|j| {
                                (0..demands.get(local, j))
                                    .map(|k| Tag(me.raw(), k))
                                    .collect()
                            })
                            .collect();
                        KnownExchange::member(
                            grp.clone(),
                            demands.clone(),
                            outgoing,
                            CommonScope::new("bench.kx", t),
                        )
                    } else {
                        KnownExchange::relay_only()
                    }
                },
            )
            .unwrap()
        });
        speedups.push(harness::speedup(&known_fresh, &known_session));
        entries.push(known_fresh);
        entries.push(known_session);
        let grp2 = NodeGroup::contiguous(0, w);
        let subset_fresh = harness::bench("subset_exchange", n, "default", &opts, || {
            tag += 1;
            let t = tag;
            let grp = grp2.clone();
            run_protocol(CliqueSpec::new(n).unwrap().with_budget_words(64), |me| {
                if let Some(local) = grp.local_index(me) {
                    let outgoing: Vec<Vec<Tag>> = (0..w)
                        .map(|j| {
                            (0..((local + j) % w) as u32)
                                .map(|k| Tag(me.raw(), k))
                                .collect()
                        })
                        .collect();
                    drive(SubsetExchange::member(
                        grp.clone(),
                        local,
                        outgoing,
                        CommonScope::new("bench.sx", t),
                    ))
                } else {
                    drive(SubsetExchange::relay_only())
                }
            })
            .unwrap()
        });
        let subset_session = harness::bench("subset_exchange", n, "session", &opts, || {
            tag += 1;
            let t = tag;
            let grp = grp2.clone();
            drive_protocol_on(
                &mut session,
                CliqueSpec::new(n).unwrap().with_budget_words(64),
                |me| {
                    if let Some(local) = grp.local_index(me) {
                        let outgoing: Vec<Vec<Tag>> = (0..w)
                            .map(|j| {
                                (0..((local + j) % w) as u32)
                                    .map(|k| Tag(me.raw(), k))
                                    .collect()
                            })
                            .collect();
                        SubsetExchange::member(
                            grp.clone(),
                            local,
                            outgoing,
                            CommonScope::new("bench.sx", t),
                        )
                    } else {
                        SubsetExchange::relay_only()
                    }
                },
            )
            .unwrap()
        });
        speedups.push(harness::speedup(&subset_fresh, &subset_session));
        entries.push(subset_fresh);
        entries.push(subset_session);
    }
    harness::write_json("primitives", &opts, &entries, &speedups);
}
