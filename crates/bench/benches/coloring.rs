//! Substrate benchmark: the three edge-coloring algorithms (E13 runtime
//! scaling; the exact coloring is the O(|E| log Δ) workhorse of every
//! routing plan).

use cc_coloring::{color_alternating, color_exact, color_greedy, BipartiteMultigraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn regular_graph(v: usize, d: usize, seed: &mut u64) -> BipartiteMultigraph {
    let mut demands = vec![0u32; v * v];
    for _ in 0..d {
        let mut perm: Vec<usize> = (0..v).collect();
        for i in (1..v).rev() {
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (*seed >> 33) as usize % (i + 1));
        }
        for (i, &j) in perm.iter().enumerate() {
            demands[i * v + j] += 1;
        }
    }
    BipartiteMultigraph::from_demands(v, v, &demands).unwrap()
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    let mut seed = 99u64;
    for (v, d) in [(16usize, 16usize), (32, 64), (64, 256)] {
        let g = regular_graph(v, d, &mut seed);
        group.bench_with_input(BenchmarkId::new("exact", format!("v{v}_d{d}")), &g, |b, g| {
            b.iter(|| color_exact(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", format!("v{v}_d{d}")), &g, |b, g| {
            b.iter(|| color_greedy(g))
        });
        if d <= 64 {
            group.bench_with_input(
                BenchmarkId::new("alternating", format!("v{v}_d{d}")),
                &g,
                |b, g| b.iter(|| color_alternating(g)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
