//! Substrate benchmark: the three edge-coloring algorithms (E13 runtime
//! scaling; the exact coloring is the O(|E| log Δ) workhorse of every
//! routing plan).

use cc_bench::harness::{self, Options};
use cc_coloring::{color_alternating, color_exact, color_greedy, BipartiteMultigraph};
use cc_rand::DetRng;

fn regular_graph(v: usize, d: usize, rng: &mut DetRng) -> BipartiteMultigraph {
    let mut demands = vec![0u32; v * v];
    for _ in 0..d {
        let perm = rng.permutation(v);
        for (i, &j) in perm.iter().enumerate() {
            demands[i * v + j] += 1;
        }
    }
    BipartiteMultigraph::from_demands(v, v, &demands).unwrap()
}

fn main() {
    let opts = Options::from_env();
    let mut rng = DetRng::seed_from_u64(99);
    let mut entries = Vec::new();
    for (v, d) in [(16usize, 16usize), (32, 64), (64, 256)] {
        let g = regular_graph(v, d, &mut rng);
        entries.push(harness::bench("exact", v, &format!("d{d}"), &opts, || {
            color_exact(&g).unwrap()
        }));
        entries.push(harness::bench("greedy", v, &format!("d{d}"), &opts, || {
            color_greedy(&g)
        }));
        if d <= 64 {
            entries.push(harness::bench(
                "alternating",
                v,
                &format!("d{d}"),
                &opts,
                || color_alternating(&g),
            ));
        }
    }
    harness::write_json("coloring", &opts, &entries, &[]);
}
