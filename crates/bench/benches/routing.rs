//! End-to-end simulated routing: the Theorem 3.7 (16-round) and
//! Theorem 5.4 (12-round) algorithms vs the randomized baseline, per
//! workload (regenerates the E1/E2/E9 measurements as wall-clock).

use cc_baselines::route_randomized;
use cc_bench::harness::{self, Options};
use cc_core::routing::{route_deterministic, route_optimized};
use cc_workloads as wl;

fn main() {
    let opts = Options::from_env();
    let mut entries = Vec::new();
    for n in [36usize, 64, 100] {
        let inst = wl::balanced_random(n, 42).unwrap();
        entries.push(harness::bench("det16", n, "default", &opts, || {
            route_deterministic(&inst).unwrap()
        }));
        entries.push(harness::bench("det12", n, "default", &opts, || {
            route_optimized(&inst).unwrap()
        }));
        entries.push(harness::bench("randomized", n, "default", &opts, || {
            route_randomized(&inst, 7).unwrap()
        }));
    }
    harness::write_json("routing", &opts, &entries, &[]);
}
