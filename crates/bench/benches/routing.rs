//! End-to-end simulated routing: the Theorem 3.7 (16-round) and
//! Theorem 5.4 (12-round) algorithms vs the randomized baseline, per
//! workload (regenerates the E1/E2/E9 measurements as wall-clock).

use cc_baselines::route_randomized;
use cc_core::routing::{route_deterministic, route_optimized};
use cc_workloads as wl;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for n in [36usize, 64, 100] {
        let inst = wl::balanced_random(n, 42).unwrap();
        group.bench_with_input(BenchmarkId::new("det16", n), &inst, |b, inst| {
            b.iter(|| route_deterministic(inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("det12", n), &inst, |b, inst| {
            b.iter(|| route_optimized(inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("randomized", n), &inst, |b, inst| {
            b.iter(|| route_randomized(inst, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
