//! End-to-end simulated sorting: Theorem 4.5 (37 rounds) vs the
//! randomized sample sort, plus the Algorithm 3 subset sort (E6/E7/E10).

use cc_baselines::sort_randomized;
use cc_core::sorting::sort_keys;
use cc_workloads as wl;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting");
    group.sample_size(10);
    for n in [16usize, 36, 64] {
        let keys = wl::uniform_keys(n, 5);
        group.bench_with_input(BenchmarkId::new("det37", n), &keys, |b, keys| {
            b.iter(|| sort_keys(keys).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("randomized", n), &keys, |b, keys| {
            b.iter(|| sort_randomized(keys, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
