//! End-to-end simulated sorting: Theorem 4.5 (37 rounds) vs the
//! randomized sample sort, plus the Algorithm 3 subset sort (E6/E7/E10).

use cc_baselines::sort_randomized;
use cc_bench::harness::{self, Options};
use cc_core::sorting::sort_keys;
use cc_workloads as wl;

fn main() {
    let opts = Options::from_env();
    let mut entries = Vec::new();
    for n in [16usize, 36, 64] {
        let keys = wl::uniform_keys(n, 5);
        entries.push(harness::bench("det37", n, "default", &opts, || {
            sort_keys(&keys).unwrap()
        }));
        entries.push(harness::bench("randomized", n, "default", &opts, || {
            sort_randomized(&keys, 7).unwrap()
        }));
    }
    harness::write_json("sorting", &opts, &entries, &[]);
}
