//! The engine benchmark behind the parallel zero-churn round engine:
//! routing and sorting workloads executed under four `ExecMode`s —
//!
//! * `seed_reference` — the pre-optimization engine (comparison-sort
//!   delivery with a quadratic drain, fresh allocations every round);
//! * `sequential` — bucketed delivery + buffer reuse, one thread;
//! * `spawn_parallel` — threaded stepping with scoped workers spawned
//!   and joined *every round* (the pre-pool parallel engine, retained as
//!   a baseline);
//! * `parallel` — the persistent worker pool: workers spawned once per
//!   run, parked between rounds (`{ threads: 0 }` resolves to one worker
//!   per available core).
//!
//! The `spawn_parallel`-vs-`parallel` speedup rows isolate exactly what
//! the pool buys: the per-round hand-off cost. Every mode produces
//! bit-identical `RunReport`s (asserted here on the round counts); only
//! wall-clock differs. Results land in `BENCH_engine.json` at the
//! workspace root; each entry records host cores, the resolved worker
//! count and the quick flag, so 1-core quick artifacts are
//! self-identifying.

use cc_bench::harness::{self, Options};
use cc_core::routing::{route_optimized_with_spec, spec_for_optimized};
use cc_core::sorting::{sort_with_spec, spec_for_sorting};
use cc_sim::{run_protocol, CliqueSpec, Ctx, ExecMode, Inbox, NodeMachine, Step};
use cc_workloads as wl;

/// Heavy-fan-out delivery stress: every node broadcasts every round, so a
/// round moves `n²` messages through the delivery path (the exact shape
/// that made the seed engine's front-shifting drain quadratic).
struct AllToAll {
    rounds: u32,
    done: u32,
}

impl NodeMachine for AllToAll {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let sum: u64 = inbox.drain().map(|(_, m)| m).sum();
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(sum);
        }
        ctx.broadcast(1);
        Step::Continue
    }
}

const MODES: [(&str, ExecMode); 4] = [
    ("seed_reference", ExecMode::SeedReference),
    ("sequential", ExecMode::Sequential),
    ("spawn_parallel", ExecMode::SpawnParallel { threads: 0 }),
    ("parallel", ExecMode::Parallel { threads: 0 }),
];

/// Benchmarks one workload under all four modes, asserting the modes
/// agree on the observable round count, and records the
/// seed-vs-optimized and pool-vs-spawn speedups.
fn bench_modes(
    opts: &Options,
    entries: &mut Vec<harness::Entry>,
    speedups: &mut Vec<harness::Speedup>,
    group: &str,
    n: usize,
    run: &mut dyn FnMut(ExecMode) -> u64,
) {
    let mut rounds = Vec::new();
    let per_mode: Vec<harness::Entry> = MODES
        .iter()
        .map(|(name, mode)| {
            let mut entry = harness::bench(group, n, name, opts, || rounds.push(run(*mode)));
            entry.worker_threads = Some(mode.worker_threads(n));
            entry
        })
        .collect();
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "{group} n={n}: modes disagreed on round count: {rounds:?}"
    );
    speedups.push(harness::speedup(&per_mode[0], &per_mode[1]));
    speedups.push(harness::speedup(&per_mode[0], &per_mode[3]));
    // Pool vs per-round spawn: the hand-off cost the pool eliminates.
    speedups.push(harness::speedup(&per_mode[2], &per_mode[3]));
    entries.extend(per_mode);
}

fn main() {
    let opts = Options::from_env();
    let host_cores = harness::host_cores();
    println!(
        "host: {host_cores} hardware thread(s); quick={}; parallel modes resolve \
         `threads: 0` to {host_cores} worker(s)",
        opts.quick
    );
    let mut entries = Vec::new();
    let mut speedups = Vec::new();

    // Routing: the Theorem 5.4 (12-round) router on fully loaded balanced
    // instances — the acceptance workload.
    for n in [64usize, 256, 1024] {
        let inst = wl::balanced_random(n, 42).unwrap();
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "route_optimized",
            n,
            &mut |mode| {
                let out = route_optimized_with_spec(&inst, spec_for_optimized(n).with_exec(mode))
                    .unwrap();
                out.metrics.comm_rounds()
            },
        );
    }

    // Sorting: the Theorem 4.5 (37-round) sorter. n = 1024 sorts a million
    // keys; skip it in quick mode to keep CI smoke runs short.
    let sort_sizes: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    for &n in sort_sizes {
        let keys = wl::uniform_keys(n, 5);
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "sort_keys",
            n,
            &mut |mode| {
                let out = sort_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap();
                out.metrics.comm_rounds()
            },
        );
    }

    // Pure delivery stress: n² messages per round for 8 rounds.
    for n in [64usize, 256, 1024] {
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "all_to_all_x8",
            n,
            &mut |mode| {
                let report = run_protocol(CliqueSpec::new(n).unwrap().with_exec(mode), |_| {
                    AllToAll { rounds: 8, done: 0 }
                })
                .unwrap();
                report.metrics.comm_rounds()
            },
        );
    }

    harness::write_json("engine", &opts, &entries, &speedups);

    // Surface the acceptance numbers directly in the output.
    for s in &speedups {
        if s.group == "route_optimized" && s.n == 1024 {
            println!(
                "route_optimized n=1024: {} is {:.2}x vs {}",
                s.candidate, s.ratio, s.baseline
            );
        }
        // The pool's acceptance regime: profitable parallelism *below*
        // the old spawn-amortization threshold.
        if s.n == 256 && s.baseline == "spawn_parallel" {
            println!(
                "{} n=256: pooled {} is {:.2}x vs per-round {}",
                s.group, s.candidate, s.ratio, s.baseline
            );
        }
    }
}
