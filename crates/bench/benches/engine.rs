//! The engine benchmark behind the parallel zero-churn round engine:
//! routing and sorting workloads executed under four `ExecMode`s —
//!
//! * `seed_reference` — the pre-optimization engine (comparison-sort
//!   delivery with a quadratic drain, fresh allocations every round);
//! * `sequential` — bucketed delivery + buffer reuse, one thread;
//! * `spawn_parallel` — threaded stepping with scoped workers spawned
//!   and joined *every round* (the pre-pool parallel engine, retained as
//!   a baseline);
//! * `parallel` — the persistent worker pool: workers spawned once per
//!   run, parked between rounds (`{ threads: 0 }` resolves to one worker
//!   per available core).
//!
//! The `spawn_parallel`-vs-`parallel` speedup rows isolate exactly what
//! the pool buys: the per-round hand-off cost. Every mode produces
//! bit-identical `RunReport`s (asserted here on the round counts); only
//! wall-clock differs. Results land in `BENCH_engine.json` at the
//! workspace root; each entry records host cores, the resolved worker
//! count and the quick flag, so 1-core quick artifacts are
//! self-identifying.
//!
//! A `sort_throughput` experiment measures the node-local hot path in
//! isolation: the radix scatter-key engine (sequential and pooled)
//! against the stable comparison sort it replaced, on bounded keys at
//! delivery scale.
//!
//! A final `session_throughput` experiment measures the session layer:
//! a batch of mixed route/sort queries answered on one persistent
//! `CliqueService` (threads and arenas reused across queries) vs the
//! stateless facade building a fresh simulator per query — and
//! `server_throughput` measures the layer above: the same mixed
//! route/sort traffic pushed through a sharded `QueryServer` by 4
//! concurrent client threads, 1 shard vs 4, against one directly driven
//! service — and `net_throughput` adds the final layer, the same traffic
//! over the `cc-net` TCP loopback (codec + framing + sockets) from 4
//! real client connections. Total round counts are asserted identical
//! across substrates, so the rows isolate dispatch/queueing overhead,
//! the wire tax, and (on multi-core hosts) shard parallelism. An
//! `obs_overhead` pair re-runs the reactor traffic with the cc-obs
//! lifecycle timestamps live vs stripped (the `CC_OBS=off` path) and
//! asserts the instrumented row stays within noise.

use cc_bench::harness::{self, Options};
use cc_core::routing::{route_optimized_with_spec, spec_for_optimized};
use cc_core::sorting::{sort_with_spec, spec_for_sorting};
use cc_core::{CliqueService, CongestedClique};
use cc_net::{CcClient, NetServer, NetServerConfig, ReactorBackend, ServingMode};
use cc_server::{QueryServer, Request, ServerConfig};
use cc_sim::{run_protocol, CliqueSpec, Ctx, ExecMode, Inbox, NodeMachine, Step};
use cc_workloads as wl;
use cc_workloads::RequestMix;

/// Heavy-fan-out delivery stress: every node broadcasts every round, so a
/// round moves `n²` messages through the delivery path (the exact shape
/// that made the seed engine's front-shifting drain quadratic).
struct AllToAll {
    rounds: u32,
    done: u32,
}

impl NodeMachine for AllToAll {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let sum: u64 = inbox.drain().map(|(_, m)| m).sum();
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(sum);
        }
        ctx.broadcast(1);
        Step::Continue
    }
}

const MODES: [(&str, ExecMode); 4] = [
    ("seed_reference", ExecMode::SeedReference),
    ("sequential", ExecMode::Sequential),
    ("spawn_parallel", ExecMode::SpawnParallel { threads: 0 }),
    ("parallel", ExecMode::Parallel { threads: 0 }),
];

/// Benchmarks one workload under all four modes, asserting the modes
/// agree on the observable round count, and records the
/// seed-vs-optimized and pool-vs-spawn speedups.
fn bench_modes(
    opts: &Options,
    entries: &mut Vec<harness::Entry>,
    speedups: &mut Vec<harness::Speedup>,
    group: &str,
    n: usize,
    run: &mut dyn FnMut(ExecMode) -> u64,
) {
    let mut rounds = Vec::new();
    let per_mode: Vec<harness::Entry> = MODES
        .iter()
        .map(|(name, mode)| {
            let mut entry = harness::bench(group, n, name, opts, || rounds.push(run(*mode)));
            entry.worker_threads = Some(mode.worker_threads(n));
            entry
        })
        .collect();
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "{group} n={n}: modes disagreed on round count: {rounds:?}"
    );
    speedups.push(harness::speedup(&per_mode[0], &per_mode[1]));
    speedups.push(harness::speedup(&per_mode[0], &per_mode[3]));
    // Pool vs per-round spawn: the hand-off cost the pool eliminates.
    speedups.push(harness::speedup(&per_mode[2], &per_mode[3]));
    entries.extend(per_mode);
}

/// Serves `requests` from `clients` concurrent worker threads, thread `c`
/// taking requests `c, c+clients, …`; each thread builds its own serving
/// closure from `factory` (an in-process handle, a TCP client, …) and the
/// total observed round count is returned — the cross-substrate parity
/// currency of the throughput benches.
fn strided_rounds<W, F>(clients: usize, requests: &[Request], factory: F) -> u64
where
    F: Fn() -> W + Sync,
    W: FnMut(&Request) -> u64,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let factory = &factory;
                scope.spawn(move || {
                    let mut serve = factory();
                    (c..requests.len())
                        .step_by(clients)
                        .map(|index| serve(&requests[index]))
                        .sum::<u64>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn main() {
    let opts = Options::from_env();
    let host_cores = harness::host_cores();
    println!(
        "host: {host_cores} hardware thread(s); quick={}; parallel modes resolve \
         `threads: 0` to {host_cores} worker(s)",
        opts.quick
    );
    let mut entries = Vec::new();
    let mut speedups = Vec::new();

    // Routing: the Theorem 5.4 (12-round) router on fully loaded balanced
    // instances — the acceptance workload.
    for n in [64usize, 256, 1024] {
        let inst = wl::balanced_random(n, 42).unwrap();
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "route_optimized",
            n,
            &mut |mode| {
                let out = route_optimized_with_spec(&inst, spec_for_optimized(n).with_exec(mode))
                    .unwrap();
                out.metrics.comm_rounds()
            },
        );
    }

    // Sorting: the Theorem 4.5 (37-round) sorter. n = 1024 sorts a million
    // keys; skip it in quick mode to keep CI smoke runs short.
    let sort_sizes: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    for &n in sort_sizes {
        let keys = wl::uniform_keys(n, 5);
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "sort_keys",
            n,
            &mut |mode| {
                let out = sort_with_spec(&keys, spec_for_sorting(n).with_exec(mode)).unwrap();
                out.metrics.comm_rounds()
            },
        );
    }

    // Node-local sort throughput: the radix scatter-key engine vs the
    // stable comparison sort it replaced, on the hot path's shape — a
    // clique-`n` round moves up to n² messages through the delivery
    // sort, as (u64 key, payload) pairs with keys bounded by the batch
    // size, so the empty high-byte passes are skipped. Each sample sorts
    // `sort_rounds` fresh clones (fewer rounds at larger n, roughly
    // constant elements per sample), approximating a protocol run's
    // node-local sorting bill rather than a single microsort.
    let sort_total = if opts.quick { 1usize << 20 } else { 1 << 22 };
    for n in [64usize, 256, 1024] {
        let len = n * n;
        let sort_rounds = (sort_total / len).max(1);
        let mut rng = cc_rand::DetRng::seed_from_u64(n as u64);
        let items: Vec<(u64, u64)> = (0..len as u64)
            .map(|i| (rng.next_u64() % len as u64, i))
            .collect();
        // Parity first: every variant must produce the same permutation.
        let sorted = {
            let mut v = items.clone();
            v.sort_by_key(|&(k, _)| k);
            v
        };
        {
            let mut v = items.clone();
            cc_sim::radix::sort_by_u64_key(&mut v, |&(k, _)| k);
            assert_eq!(v, sorted, "sort_throughput n={n}: radix diverged");
        }
        let comparison = {
            let mut entry = harness::bench("sort_throughput", n, "comparison", &opts, || {
                for _ in 0..sort_rounds {
                    let mut v = items.clone();
                    v.sort_by_key(|&(k, _)| k);
                    harness::black_box(&v);
                }
            });
            entry.worker_threads = Some(1);
            entry
        };
        let radix_seq = {
            let mut scratch = cc_sim::radix::RadixScratch::new();
            let mut entry = harness::bench("sort_throughput", n, "radix_sequential", &opts, || {
                for _ in 0..sort_rounds {
                    let mut v = items.clone();
                    cc_sim::radix::sort_by_u64_key_with(&mut v, |&(k, _)| k, &mut scratch);
                    harness::black_box(&v);
                }
            });
            entry.worker_threads = Some(1);
            entry
        };
        speedups.push(harness::speedup(&comparison, &radix_seq));
        entries.push(comparison.clone());
        entries.push(radix_seq);
        #[cfg(feature = "parallel")]
        {
            let workers = 2usize;
            let mut session = cc_sim::CliqueSession::new();
            {
                let mut v = items.clone();
                session.sort_by_u64_key_on(workers, &mut v, |&(k, _)| k);
                assert_eq!(v, sorted, "sort_throughput n={n}: pooled radix diverged");
            }
            let radix_par = {
                let mut entry =
                    harness::bench("sort_throughput", n, "radix_parallel", &opts, || {
                        for _ in 0..sort_rounds {
                            let mut v = items.clone();
                            session.sort_by_u64_key_on(workers, &mut v, |&(k, _)| k);
                            harness::black_box(&v);
                        }
                    });
                entry.worker_threads = Some(workers);
                entry
            };
            speedups.push(harness::speedup(&comparison, &radix_par));
            entries.push(radix_par);
        }
    }

    // Pure delivery stress: n² messages per round for 8 rounds.
    for n in [64usize, 256, 1024] {
        bench_modes(
            &opts,
            &mut entries,
            &mut speedups,
            "all_to_all_x8",
            n,
            &mut |mode| {
                let report = run_protocol(CliqueSpec::new(n).unwrap().with_exec(mode), |_| {
                    AllToAll { rounds: 8, done: 0 }
                })
                .unwrap();
                report.metrics.comm_rounds()
            },
        );
    }

    // Session throughput: `queries` successive mixed route/sort queries
    // answered by one persistent `CliqueService` (threads and arenas
    // reused across queries) vs by the stateless facade (a fresh
    // simulator per query). Both run under `ExecMode::Auto`; the
    // per-query answers are asserted identical, so the rows isolate pure
    // setup amortization.
    let queries = if opts.quick { 4usize } else { 8 };
    for n in [64usize, 256] {
        let inst = wl::balanced_random(n, 42).unwrap();
        let keys = wl::uniform_keys(n, 5);
        let mut rounds_seen: Vec<u64> = Vec::new();
        let fresh = {
            let mut entry =
                harness::bench("session_throughput", n, "fresh_simulator", &opts, || {
                    let clique = CongestedClique::new(n).unwrap();
                    let mut rounds = 0u64;
                    for q in 0..queries {
                        rounds += if q % 2 == 0 {
                            clique.route_optimized(&inst).unwrap().metrics.comm_rounds()
                        } else {
                            clique.sort(&keys).unwrap().metrics.comm_rounds()
                        };
                    }
                    rounds_seen.push(rounds);
                    rounds
                });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        let session = {
            let mut entry = harness::bench("session_throughput", n, "session", &opts, || {
                let mut service = CliqueService::new(n).unwrap();
                let mut rounds = 0u64;
                for q in 0..queries {
                    rounds += if q % 2 == 0 {
                        service
                            .route_optimized(&inst)
                            .unwrap()
                            .metrics
                            .comm_rounds()
                    } else {
                        service.sort(&keys).unwrap().metrics.comm_rounds()
                    };
                }
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        assert!(
            rounds_seen.windows(2).all(|w| w[0] == w[1]),
            "session_throughput n={n}: substrates disagreed on rounds: {rounds_seen:?}"
        );
        speedups.push(harness::speedup(&fresh, &session));
        entries.push(fresh);
        entries.push(session);
    }

    // Server throughput: the same mixed route/sort traffic as above, but
    // pushed through the sharded `QueryServer` by 4 concurrent client
    // threads — 1 shard vs 4 — against one directly driven warm service.
    // On a 1-core host the server rows measure pure dispatch/queue
    // overhead; on multi-core hosts the 4-shard row adds cross-size shard
    // parallelism (64- and 256-node requests hash to different shards).
    let server_queries = if opts.quick { 8usize } else { 16 };
    let clients = 4usize;
    for n in [64usize, 256] {
        let inst = wl::balanced_random(n, 42).unwrap();
        let keys = wl::uniform_keys(n, 5);
        let requests: Vec<Request> = (0..server_queries)
            .map(|q| {
                if q % 2 == 0 {
                    Request::RouteOptimized(inst.clone())
                } else {
                    Request::Sort(keys.clone())
                }
            })
            .collect();
        let mut rounds_seen: Vec<u64> = Vec::new();
        let direct = {
            let mut entry = harness::bench("server_throughput", n, "direct_service", &opts, || {
                let mut service = CliqueService::new(n).unwrap();
                let rounds: u64 = requests
                    .iter()
                    .map(|r| r.serve_on(&mut service).unwrap().metrics().comm_rounds())
                    .sum();
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        let mut server_entries = Vec::new();
        for shards in [1usize, 4] {
            let mode = format!(
                "server_{shards}_shard{}",
                if shards == 1 { "" } else { "s" }
            );
            let mut entry = harness::bench("server_throughput", n, &mode, &opts, || {
                let server = QueryServer::new(
                    ServerConfig::new(shards)
                        .with_queue_capacity(32)
                        .with_coalesce_limit(8),
                )
                .unwrap();
                let rounds = strided_rounds(clients, &requests, || {
                    let handle = server.handle();
                    move |request: &Request| {
                        handle
                            .call(request.clone())
                            .unwrap()
                            .metrics()
                            .comm_rounds()
                    }
                });
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            server_entries.push(entry);
        }
        assert!(
            rounds_seen.windows(2).all(|w| w[0] == w[1]),
            "server_throughput n={n}: substrates disagreed on rounds: {rounds_seen:?}"
        );
        for served in &server_entries {
            speedups.push(harness::speedup(&direct, served));
        }
        entries.push(direct);
        entries.extend(server_entries);
    }

    // Net throughput: the same class of mixed route/sort traffic, served
    // three ways — one directly driven warm service (no concurrency, no
    // dispatch), the in-process sharded server (queues + threads, no
    // codec), and the full TCP loopback path (codec + framing + sockets
    // on top). 4 clients each way; the TCP clients each own a real
    // connection. Total round counts are asserted identical, so the row
    // deltas isolate, layer by layer, what dispatch and the wire cost.
    // Note the rows are single-clique-size by design (the fleet shards by
    // size, so each row's traffic serializes on one shard even on
    // multi-core hosts): they price the wire and dispatch layers, not
    // shard parallelism — mixed-size traffic, as in the net_swarm
    // example, is what spreads across shards.
    let net_queries = if opts.quick { 8usize } else { 16 };
    for n in [64usize, 256] {
        let requests: Vec<Request> = RequestMix::new(vec![n])
            .with_weights([0, 1, 1, 0, 0, 0, 0])
            .generate(net_queries, 42);
        let route_count = requests
            .iter()
            .filter(|r| matches!(r, Request::RouteOptimized(_)))
            .count();
        println!(
            "net_throughput n={n}: {net_queries} queries \
             ({route_count} route_optimized, {} sort)",
            net_queries - route_count
        );
        let mut rounds_seen: Vec<u64> = Vec::new();
        let direct = {
            let mut entry = harness::bench("net_throughput", n, "direct_service", &opts, || {
                let mut service = CliqueService::new(n).unwrap();
                let rounds: u64 = requests
                    .iter()
                    .map(|r| r.serve_on(&mut service).unwrap().metrics().comm_rounds())
                    .sum();
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        let fleet_config = || {
            ServerConfig::new(4)
                .with_queue_capacity(32)
                .with_coalesce_limit(8)
        };
        let in_process = {
            let mut entry = harness::bench("net_throughput", n, "in_process_server", &opts, || {
                let server = QueryServer::new(fleet_config()).unwrap();
                let rounds = strided_rounds(clients, &requests, || {
                    let handle = server.handle();
                    move |request: &Request| {
                        handle
                            .call(request.clone())
                            .unwrap()
                            .metrics()
                            .comm_rounds()
                    }
                });
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        // The two serving cores, same traffic, same fleet: `tcp_loopback`
        // stays pinned to the thread-per-connection backend (the
        // historical baseline this group has always priced), `tcp_reactor`
        // is the single-threaded event loop.
        let mut tcp_mode = |mode: &str, serving: ServingMode| {
            let mut entry = harness::bench("net_throughput", n, mode, &opts, || {
                let server = NetServer::bind(
                    "127.0.0.1:0",
                    NetServerConfig::new(4)
                        .with_fleet(fleet_config())
                        .with_serving_mode(serving),
                )
                .unwrap();
                let addr = server.local_addr();
                let rounds = strided_rounds(clients, &requests, || {
                    let mut client = CcClient::connect(addr).unwrap();
                    move |request: &Request| client.call(request).unwrap().metrics().comm_rounds()
                });
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(n));
            entry
        };
        let tcp = tcp_mode("tcp_loopback", ServingMode::ThreadPerConnection);
        let reactor = tcp_mode("tcp_reactor", ServingMode::Reactor);
        assert!(
            rounds_seen.windows(2).all(|w| w[0] == w[1]),
            "net_throughput n={n}: substrates disagreed on rounds: {rounds_seen:?}"
        );
        speedups.push(harness::speedup(&direct, &in_process));
        speedups.push(harness::speedup(&direct, &tcp));
        // What the wire itself costs, dispatch already paid for.
        speedups.push(harness::speedup(&in_process, &tcp));
        // What the reactor costs (or saves) against two-threads-per-conn.
        speedups.push(harness::speedup(&tcp, &reactor));
        entries.push(direct);
        entries.push(in_process);
        entries.push(tcp);
        entries.push(reactor);
    }

    // Connection scaling: a fixed budget of small queries driven by 16
    // active connections while the row's *remaining* connections sit
    // idle — the C10k shape, where almost everyone connected is quiet at
    // any instant. Setup (bind, connect, accept) happens OUTSIDE the
    // timed closure; the timed region is purely request traffic, so each
    // row prices what the idle crowd costs the active minority. (The
    // old rows timed connection setup inside the closure and made every
    // connection active, which measured accept throughput, not idle
    // cost — that is why 64 "idle" connections read as a 0.75x
    // regression.)
    //
    // Per-iteration syscall shape, which is the entire story of these
    // rows: the poll backend rebuilds and scans one pollfd per
    // connection on every wakeup — O(conns), idle or not — while the
    // epoll backend registers each fd once and reaps only ready events —
    // O(ready) — so idle connections never appear in its wakeup path at
    // all. Poll rows are pinned alongside the epoll rows at every scale
    // as the O(n) baseline the tentpole exists to beat.
    {
        let scaling_n = 16usize;
        let scaling_queries = if opts.quick { 64usize } else { 256 };
        let active = 16usize;
        // Idle sockets connect in accept-backlog-sized batches so no
        // connect times out behind thousands of unaccepted neighbours.
        let connect_batch = 128usize;
        let requests: Vec<Request> = RequestMix::new(vec![scaling_n])
            .with_weights([0, 1, 1, 0, 0, 0, 0])
            .generate(scaling_queries, 7);
        println!(
            "net_scaling: {scaling_queries} clique-size-{scaling_n} queries per row from \
             {active} active connections; the rest of each row's connections are idle.\n\
             net_scaling: syscall shape per wakeup: poll = O(conns) pollfd rebuild + scan; \
             epoll = O(ready) event reap, idle fds untouched"
        );
        let run_row = |backend: ReactorBackend, reactors: usize, conns: usize, mode: &str| {
            let server = NetServer::bind(
                "127.0.0.1:0",
                NetServerConfig::new(2)
                    .with_fleet(
                        ServerConfig::new(2)
                            .with_queue_capacity(32)
                            .with_coalesce_limit(8),
                    )
                    .with_reactor_backend(backend)
                    .with_reactor_threads(reactors),
            )
            .unwrap();
            let addr = server.local_addr();
            let mut clients: Vec<CcClient> = (0..active)
                .map(|_| CcClient::connect(addr).unwrap())
                .collect();
            let mut idle: Vec<std::net::TcpStream> = Vec::with_capacity(conns - active);
            while idle.len() < conns - active {
                let batch = connect_batch.min(conns - active - idle.len());
                for _ in 0..batch {
                    idle.push(std::net::TcpStream::connect(addr).unwrap());
                }
                let want = (active + idle.len()) as u64;
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                while server.stats().connections < want {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "net_scaling {mode} conns={conns}: accept stalled at {}",
                        server.stats().connections
                    );
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            let mut rounds_seen: Vec<u64> = Vec::new();
            let mut entry = harness::bench("net_scaling", conns, mode, &opts, || {
                // Round-robin submit, then drain — all 16 active
                // connections hold work in flight at once, one thread
                // drives them all, the idle majority looks on.
                let mut rounds = 0u64;
                for batch in requests.chunks(active) {
                    for (client, request) in clients.iter_mut().zip(batch) {
                        client.submit(request).unwrap();
                    }
                    for client in clients.iter_mut().take(batch.len()) {
                        while client.pending() > 0 {
                            let (_, result) = client.wait_next().unwrap().unwrap();
                            rounds += result.unwrap().metrics().comm_rounds();
                        }
                    }
                }
                rounds_seen.push(rounds);
                rounds
            });
            entry.worker_threads = Some(reactors);
            assert!(
                rounds_seen.windows(2).all(|w| w[0] == w[1]),
                "net_scaling {mode} conns={conns}: rounds drifted across samples: {rounds_seen:?}"
            );
            drop(idle);
            drop(clients);
            server.shutdown();
            entry
        };
        let mut poll_rows: Vec<harness::Entry> = Vec::new();
        for (backend, mode) in [
            (ReactorBackend::Poll, "poll"),
            (ReactorBackend::Epoll, "epoll"),
        ] {
            let mut baseline: Option<harness::Entry> = None;
            for conns in [active, 256, 1024, 4096] {
                let entry = run_row(backend, 1, conns, mode);
                if let Some(base) = &baseline {
                    let s = harness::speedup(base, &entry);
                    // The PR's regression gate: with epoll, 240 idle
                    // bystanders must be (close to) free — the pre-fix
                    // bench read 0.75x here with only 48. The bound is
                    // lenient because quick mode is one sample on a
                    // shared host; the trend rows at 1024/4096 are the
                    // real evidence.
                    if backend == ReactorBackend::Epoll && entry.n == 256 {
                        assert!(
                            s.ratio > 0.6,
                            "net_scaling: 256-connection epoll row degraded to {:.2}x of \
                             its 16-connection baseline — idle sockets are not free",
                            s.ratio
                        );
                    }
                    speedups.push(s);
                } else {
                    baseline = Some(entry.clone());
                }
                if backend == ReactorBackend::Poll {
                    poll_rows.push(entry.clone());
                } else if let Some(poll) = poll_rows.iter().find(|e| e.n == entry.n) {
                    // Poll pinned as the baseline in the same row.
                    speedups.push(harness::speedup(poll, &entry));
                }
                entries.push(entry);
            }
        }
        // Multi-reactor serving at the top scale: accepted sockets dealt
        // least-connections across 2 and 4 event loops.
        let single = entries
            .iter()
            .find(|e| e.group == "net_scaling" && e.mode == "epoll" && e.n == 4096)
            .cloned()
            .expect("epoll 4096 row");
        for (reactors, mode) in [(2usize, "epoll_r2"), (4, "epoll_r4")] {
            let entry = run_row(ReactorBackend::Epoll, reactors, 4096, mode);
            speedups.push(harness::speedup(&single, &entry));
            entries.push(entry);
        }
    }

    // Observability overhead: the same single-connection reactor traffic
    // as net_throughput, once with the lifecycle timestamps live
    // (`timing_on`, the default) and once with them stripped to no-ops
    // (`timing_off` — the runtime path `CC_OBS=off` selects). Counters
    // and gauges stay on in both rows; the switch removes only the
    // `Instant` stamps feeding the per-stage latency histograms, so the
    // pair prices exactly what the histograms cost a serving request.
    {
        let obs_n = 64usize;
        let requests: Vec<Request> = RequestMix::new(vec![obs_n])
            .with_weights([0, 1, 1, 0, 0, 0, 0])
            .generate(net_queries, 42);
        let mut rounds_seen: Vec<u64> = Vec::new();
        let mut obs_row = |mode: &str, timing: bool| {
            cc_obs::set_timing_enabled(timing);
            let mut entry = harness::bench("obs_overhead", obs_n, mode, &opts, || {
                let server = NetServer::bind(
                    "127.0.0.1:0",
                    NetServerConfig::new(4).with_fleet(
                        ServerConfig::new(4)
                            .with_queue_capacity(32)
                            .with_coalesce_limit(8),
                    ),
                )
                .unwrap();
                let addr = server.local_addr();
                let rounds = strided_rounds(clients, &requests, || {
                    let mut client = CcClient::connect(addr).unwrap();
                    move |request: &Request| client.call(request).unwrap().metrics().comm_rounds()
                });
                rounds_seen.push(rounds);
                rounds
            });
            cc_obs::set_timing_enabled(true);
            entry.worker_threads = Some(ExecMode::Auto.worker_threads(obs_n));
            entry
        };
        let instrumented = obs_row("timing_on", true);
        let stripped = obs_row("timing_off", false);
        assert!(
            rounds_seen.windows(2).all(|w| w[0] == w[1]),
            "obs_overhead: rows disagreed on rounds: {rounds_seen:?}"
        );
        let s = harness::speedup(&instrumented, &stripped);
        // Acceptance target: instrumentation within ~3% of the stripped
        // path. The assert is lenient for the same reason as the
        // net_scaling gate — quick mode is one sample on a shared host —
        // while the JSON rows carry the real numbers.
        assert!(
            s.ratio < 1.5,
            "obs_overhead: timing_off runs {:.2}x faster than instrumented — \
             the lifecycle stamps are not within noise",
            s.ratio
        );
        speedups.push(s);
        entries.push(instrumented);
        entries.push(stripped);
    }

    harness::write_json("engine", &opts, &entries, &speedups);

    // Surface the acceptance numbers directly in the output.
    for s in &speedups {
        if s.group == "route_optimized" && s.n == 1024 {
            println!(
                "route_optimized n=1024: {} is {:.2}x vs {}",
                s.candidate, s.ratio, s.baseline
            );
        }
        // The pool's acceptance regime: profitable parallelism *below*
        // the old spawn-amortization threshold.
        if s.n == 256 && s.baseline == "spawn_parallel" {
            println!(
                "{} n=256: pooled {} is {:.2}x vs per-round {}",
                s.group, s.candidate, s.ratio, s.baseline
            );
        }
        // The radix engine's acceptance regime: node-local sorting faster
        // than the comparison sort it replaced at delivery scale.
        if s.group == "sort_throughput" && s.n == 1024 {
            println!(
                "sort_throughput n=1024: {} is {:.2}x vs {}",
                s.candidate, s.ratio, s.baseline
            );
        }
        // The session layer's acceptance regime: batched queries on one
        // persistent session vs a fresh simulator per query.
        if s.group == "session_throughput" {
            println!(
                "session_throughput n={}: one session answering {queries} mixed queries is \
                 {:.2}x vs fresh simulators",
                s.n, s.ratio
            );
        }
        // The server layer: sharded concurrent serving vs one directly
        // driven service (ratio > 1 needs multi-core shard parallelism;
        // on 1 core it reads as pure dispatch overhead).
        if s.group == "server_throughput" {
            println!(
                "server_throughput n={}: {} serving {server_queries} mixed queries from \
                 {clients} clients is {:.2}x vs direct_service",
                s.n, s.candidate, s.ratio
            );
        }
        // The wire layer: the TCP loopback path vs its in-process and
        // directly-driven baselines (ratio < 1 reads as the wire tax).
        if s.group == "net_throughput" {
            println!(
                "net_throughput n={}: {} serving {net_queries} mixed queries from \
                 {clients} clients is {:.2}x vs {}",
                s.n, s.candidate, s.ratio, s.baseline
            );
        }
        // Connection scaling: here `n` is the connection count (16 of
        // which are active; the rest idle). Within a backend the
        // baseline is its own 16-connection row — a ratio near 1.0 is
        // the point (idle connections are nearly free). Cross-backend
        // rows pin poll as the baseline epoll must beat at scale.
        if s.group == "net_scaling" {
            println!(
                "net_scaling: {} at {} connections runs at {:.2}x vs {}",
                s.candidate, s.n, s.ratio, s.baseline
            );
        }
        // The observability kit's acceptance regime: serving with the
        // lifecycle stamps live must sit within noise of the stripped
        // path (a ratio near 1.0 means the histograms are free).
        if s.group == "obs_overhead" {
            println!(
                "obs_overhead n={}: {} runs at {:.2}x vs instrumented {}",
                s.n, s.candidate, s.ratio, s.baseline
            );
        }
    }
}
