//! Engine throughput: lock-step all-to-all delivery (message movement +
//! budget enforcement dominate simulated wall-clock).

use cc_bench::harness::{self, Options};
use cc_sim::{run_protocol, CliqueSpec, Ctx, Inbox, NodeMachine, Step};

struct AllToAll {
    rounds: u32,
    done: u32,
}

impl NodeMachine for AllToAll {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let sum: u64 = inbox.drain().map(|(_, m)| m).sum();
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(sum);
        }
        ctx.broadcast(1);
        Step::Continue
    }
}

fn main() {
    let opts = Options::from_env();
    let mut entries = Vec::new();
    for n in [64usize, 128, 256] {
        entries.push(harness::bench("all_to_all_x8", n, "default", &opts, || {
            run_protocol(CliqueSpec::new(n).unwrap(), |_| AllToAll {
                rounds: 8,
                done: 0,
            })
            .unwrap()
        }));
    }
    harness::write_json("simulator", &opts, &entries, &[]);
}
