//! Engine throughput: lock-step all-to-all delivery (message movement +
//! budget enforcement dominate simulated wall-clock).

use cc_sim::{run_protocol, CliqueSpec, Ctx, Inbox, NodeMachine, Step};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct AllToAll {
    rounds: u32,
    done: u32,
}

impl NodeMachine for AllToAll {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let sum: u64 = inbox.drain().map(|(_, m)| m).sum();
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(sum);
        }
        ctx.broadcast(1);
        Step::Continue
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::new("all_to_all_x8", n), &n, |b, &n| {
            b.iter(|| {
                run_protocol(CliqueSpec::new(n).unwrap(), |_| AllToAll {
                    rounds: 8,
                    done: 0,
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
