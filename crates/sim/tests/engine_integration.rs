//! Engine integration: multi-phase protocols, budget boundaries, the
//! histogram, virtualized sub-cliques, and liveness guards.

use cc_sim::{run_protocol, CliqueSpec, Ctx, Inbox, NodeId, NodeMachine, Payload, SimError, Step};

/// A configurable k-phase all-to-all: phase t sends (t+1) words per edge.
struct Phased {
    phases: u32,
    done: u32,
    words_per_phase: u64,
}

#[derive(Clone, Debug)]
struct Words(u64);
impl Payload for Words {
    fn size_bits(&self, n: usize) -> u64 {
        self.0 * cc_sim::util::word_bits(n)
    }
}

impl NodeMachine for Phased {
    type Msg = Words;
    type Output = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Words>) {
        ctx.broadcast(Words(self.words_per_phase));
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, Words>, inbox: &mut Inbox<Words>) -> Step<u32> {
        let received = inbox.drain().count() as u32;
        self.done += 1;
        if self.done >= self.phases {
            return Step::Done(received);
        }
        ctx.broadcast(Words(self.words_per_phase));
        Step::Continue
    }
}

#[test]
fn phase_count_equals_round_count() {
    for phases in [1u32, 3, 7] {
        let report = run_protocol(CliqueSpec::new(8).unwrap(), |_| Phased {
            phases,
            done: 0,
            words_per_phase: 2,
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), u64::from(phases));
        assert!(report.outputs.iter().all(|&r| r == 8));
    }
}

#[test]
fn budget_boundary_is_exact() {
    // words_per_phase == budget words passes; +1 fails.
    let n = 8;
    let budget_words = 5u64;
    let ok = run_protocol(
        CliqueSpec::new(n).unwrap().with_budget_words(budget_words),
        |_| Phased {
            phases: 1,
            done: 0,
            words_per_phase: budget_words,
        },
    );
    assert!(ok.is_ok());
    let err = run_protocol(
        CliqueSpec::new(n).unwrap().with_budget_words(budget_words),
        |_| Phased {
            phases: 1,
            done: 0,
            words_per_phase: budget_words + 1,
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::BudgetExceeded { .. }));
}

#[test]
fn histogram_accounts_every_busy_edge() {
    let n = 6;
    let spec = CliqueSpec::new(n).unwrap().with_edge_histogram(true);
    let report = run_protocol(spec, |_| Phased {
        phases: 2,
        done: 0,
        words_per_phase: 1,
    })
    .unwrap();
    let hist = report.metrics.edge_histogram().expect("enabled");
    // 2 rounds × n² busy directed edges (self-loops included).
    assert_eq!(hist.total_observations(), 2 * (n * n) as u64);
    assert_eq!(hist.max_load(), cc_sim::util::word_bits(n));
}

#[test]
fn per_round_metrics_sum_to_totals() {
    let n = 5;
    let report = run_protocol(CliqueSpec::new(n).unwrap(), |_| Phased {
        phases: 4,
        done: 0,
        words_per_phase: 1,
    })
    .unwrap();
    let m = &report.metrics;
    let sum_msgs: u64 = m.rounds().iter().map(|r| r.messages).sum();
    let sum_bits: u64 = m.rounds().iter().map(|r| r.bits).sum();
    assert_eq!(sum_msgs, m.total_messages());
    assert_eq!(sum_bits, m.total_bits());
    assert_eq!(
        m.max_edge_bits(),
        m.rounds().iter().map(|r| r.max_edge_bits).max().unwrap()
    );
}

/// Nodes 0..k run a virtual sub-clique via `virtualized` contexts; the
/// remaining nodes idle. Exercises the id-translation seam the general-n
/// routing depends on.
struct SubClique {
    k: usize,
    me: NodeId,
    got: u64,
}

impl NodeMachine for SubClique {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.me.index() >= self.k {
            return;
        }
        let k = self.k;
        let me = self.me;
        let (base, outbox) = ctx.split();
        let vctx = base.virtualized(me, k);
        assert_eq!(vctx.n(), k);
        for v in 0..k {
            outbox.push((NodeId::new(v), me.raw() as u64));
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        self.got = inbox.drain().map(|(_, m)| m).sum();
        Step::Done(self.got)
    }
}

#[test]
fn virtualized_contexts_scope_identity() {
    let n = 10;
    let k = 4;
    let report = run_protocol(CliqueSpec::new(n).unwrap(), |me| SubClique {
        k,
        me,
        got: 0,
    })
    .unwrap();
    let expected: u64 = (0..k as u64).sum();
    for v in 0..n {
        if v < k {
            assert_eq!(report.outputs[v], expected);
        } else {
            assert_eq!(report.outputs[v], 0);
        }
    }
}

/// Silent-round tolerance: a protocol pausing for `gap` silent rounds
/// survives iff gap ≤ max_silent_rounds.
struct Napper {
    wake_at: u64,
}

impl NodeMachine for Napper {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 0);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.round() >= self.wake_at {
            return Step::Done(());
        }
        if ctx.round() == 1 {
            // Go silent until wake_at.
        }
        Step::Continue
    }
}

#[test]
fn bounded_silence_is_tolerated() {
    let spec = CliqueSpec::new(3).unwrap().with_max_silent_rounds(10);
    assert!(run_protocol(spec, |_| Napper { wake_at: 8 }).is_ok());
}

#[test]
fn unbounded_silence_stalls() {
    let spec = CliqueSpec::new(3).unwrap().with_max_silent_rounds(5);
    let err = run_protocol(spec, |_| Napper { wake_at: 50 }).unwrap_err();
    assert!(matches!(err, SimError::Stalled { .. }));
}

#[test]
fn common_cache_divergence_panics_inside_protocol() {
    struct Diverger {
        me: NodeId,
    }
    impl NodeMachine for Diverger {
        type Msg = u64;
        type Output = ();

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
            // Each node claims a different "common" input — the cache
            // must catch the second caller.
            let bad_hash = self.me.raw() as u64;
            let _ = ctx.common().get_or_compute(
                cc_sim::CommonScope::new("diverge", 0),
                bad_hash,
                || 1u32,
            );
            Step::Done(())
        }
    }
    let result = std::panic::catch_unwind(|| {
        let _ = run_protocol(CliqueSpec::new(3).unwrap(), |me| Diverger { me });
    });
    assert!(result.is_err(), "divergence must panic");
}

#[test]
fn self_messages_are_budgeted_and_counted() {
    struct SelfTalk;
    impl NodeMachine for SelfTalk {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(ctx.me(), 42);
        }

        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
            Step::Done(inbox.drain().map(|(_, m)| m).sum())
        }
    }
    let report = run_protocol(CliqueSpec::new(4).unwrap(), |_| SelfTalk).unwrap();
    assert_eq!(report.metrics.total_messages(), 4);
    assert!(report.outputs.iter().all(|&x| x == 42));
}

/// A panic inside `on_round` on a pooled worker must propagate to the
/// caller — with the original payload — not deadlock the driving thread
/// waiting for a result that will never arrive (regression: the pool's
/// result channel only errors once *every* worker is gone, and the
/// surviving parked workers keep theirs alive).
#[test]
fn worker_panic_propagates_under_pooled_stepping() {
    use cc_sim::ExecMode;

    struct Bomb;
    impl NodeMachine for Bomb {
        type Msg = u64;
        type Output = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(ctx.me(), 1);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
            let _ = inbox.drain().count();
            if ctx.me().index() == 0 {
                panic!("node 0 exploded");
            }
            ctx.send(ctx.me(), 1);
            Step::Continue
        }
    }

    // 8 nodes on 4 workers: node 0 panics in round 1 while the other
    // three workers' nodes are still mid-protocol. (Without the
    // `parallel` feature this degrades to sequential, where propagation
    // is trivially direct — the assertion still holds.)
    let result = std::panic::catch_unwind(|| {
        let _ = run_protocol(
            CliqueSpec::new(8)
                .unwrap()
                .with_exec(ExecMode::Parallel { threads: 4 }),
            |_| Bomb,
        );
    });
    let payload = result.expect_err("protocol panic must propagate, not deadlock");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(
        msg.contains("node 0 exploded"),
        "unexpected payload: {msg:?}"
    );
}
