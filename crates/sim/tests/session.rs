//! Session-reuse determinism: a [`CliqueSession`] reused across many
//! runs — including runs of *different* protocols and runs that fail —
//! must produce `RunReport`s bit-identical to a fresh [`Simulator`] for
//! every execution mode. This is the contract that lets the service
//! layer (`cc-core`'s `CliqueService`) amortize setup without ever
//! changing an answer.

use cc_sim::{
    CliqueSession, CliqueSpec, Ctx, ExecMode, Inbox, NodeId, NodeMachine, Payload, RunReport,
    SimError, Simulator, Step,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Every mode the session must agree with a fresh simulator on.
fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Auto,
        ExecMode::Sequential,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 5 },
        ExecMode::Parallel { threads: 0 },
        ExecMode::SpawnParallel { threads: 2 },
        ExecMode::SeedReference,
    ]
}

/// A multi-round protocol with sender-dependent fan-out: every node
/// relays a mixing sum to a sliding window of peers, so inbox ordering,
/// metrics, and work meters all depend on delivery discipline.
struct Mixer {
    rounds: u32,
    done: u32,
    acc: u64,
}

fn mixers(n: usize, rounds: u32) -> Vec<Mixer> {
    (0..n)
        .map(|_| Mixer {
            rounds,
            done: 0,
            acc: 0,
        })
        .collect()
}

impl NodeMachine for Mixer {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index();
        for k in 0..1 + me % 3 {
            ctx.send(NodeId::new((me + k + 1) % ctx.n()), (me * 7 + k) as u64);
        }
        ctx.charge_work(3);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        for (src, m) in inbox.drain() {
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(m ^ src.index() as u64);
        }
        ctx.charge_work(1 + self.acc % 5);
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(self.acc);
        }
        let me = ctx.me().index();
        for k in 0..1 + (me + self.done as usize) % 2 {
            ctx.send(
                NodeId::new((me + 2 * k + 1) % ctx.n()),
                self.acc % 1_000_000,
            );
        }
        Step::Continue
    }
}

/// Node 1 sends to node 0 after node 0 finished — a deterministic
/// mid-batch failure.
struct Poisoner {
    me: usize,
}

impl NodeMachine for Poisoner {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.me == 1 {
            ctx.send(NodeId::new(0), 7);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if self.me == 0 || ctx.round() == 2 {
            return Step::Done(());
        }
        ctx.send(NodeId::new(0), 9);
        Step::Continue
    }
}

fn spec(n: usize, mode: ExecMode) -> CliqueSpec {
    CliqueSpec::new(n)
        .unwrap()
        .with_edge_histogram(true)
        .with_exec(mode)
}

fn fresh_report(n: usize, mode: ExecMode, rounds: u32) -> RunReport<u64> {
    Simulator::new(spec(n, mode), mixers(n, rounds))
        .unwrap()
        .run()
        .unwrap()
}

/// The tentpole assertion: one session, reused across every mode and
/// several workload shapes, against a fresh simulator each time.
#[test]
fn reused_session_is_bit_identical_to_fresh_simulator_in_every_mode() {
    let n = 24;
    let mut session = CliqueSession::new();
    // Reuse the session across modes *and* run shapes; every single
    // answer must match its fresh-simulator twin, including metrics,
    // histograms and per-node work meters (RunReport compares by value).
    for round_count in [1u32, 4] {
        for mode in all_modes() {
            let fresh = fresh_report(n, mode, round_count);
            let reused = session
                .run(spec(n, mode), mixers(n, round_count))
                .unwrap_or_else(|e| panic!("session run failed under {mode:?}: {e:?}"));
            assert_eq!(fresh, reused, "divergence under {mode:?} x{round_count}");
        }
    }
    assert_eq!(session.stats().completed(), 2 * all_modes().len() as u64);
}

/// Clique sizes may change run-to-run on one session (the arenas resize).
#[test]
fn session_survives_changing_clique_sizes() {
    let mut session = CliqueSession::new();
    for n in [4usize, 32, 7, 64, 3] {
        let mode = ExecMode::Parallel { threads: 3 };
        let fresh = fresh_report(n, mode, 2);
        let reused = session.run(spec(n, mode), mixers(n, 2)).unwrap();
        assert_eq!(fresh, reused, "divergence at n={n}");
    }
}

/// A failed run mid-batch must not change any later answer: the error
/// itself must be identical to the fresh simulator's, and follow-up runs
/// must still be bit-identical in every mode.
#[test]
fn failed_run_mid_batch_does_not_poison_the_session() {
    let n = 16;
    let mut session = CliqueSession::new();
    for mode in all_modes() {
        let before = session.run(spec(n, mode), mixers(n, 2)).unwrap();
        let fresh_err = Simulator::new(spec(2, mode), vec![Poisoner { me: 0 }, Poisoner { me: 1 }])
            .unwrap()
            .run()
            .unwrap_err();
        let session_err = session
            .run(spec(2, mode), vec![Poisoner { me: 0 }, Poisoner { me: 1 }])
            .unwrap_err();
        assert_eq!(fresh_err, session_err, "error diverged under {mode:?}");
        assert!(matches!(
            session_err,
            SimError::MessageToFinishedNode { .. }
        ));
        let after = session.run(spec(n, mode), mixers(n, 2)).unwrap();
        assert_eq!(before, after, "post-failure divergence under {mode:?}");
    }
    assert_eq!(session.stats().failed(), all_modes().len() as u64);
}

/// Interleaving two protocols with different message types on one session
/// must not perturb either (piles are segregated by message type).
#[test]
fn interleaved_protocols_stay_bit_identical() {
    struct Pulse;
    impl NodeMachine for Pulse {
        type Msg = (u64, u64);
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, (u64, u64)>) {
            let me = ctx.me().index() as u64;
            ctx.broadcast((me, me * me));
        }
        fn on_round(
            &mut self,
            _ctx: &mut Ctx<'_, (u64, u64)>,
            inbox: &mut Inbox<(u64, u64)>,
        ) -> Step<u64> {
            Step::Done(inbox.drain().map(|(_, (a, b))| a + b).sum())
        }
    }
    let n = 12;
    let mode = ExecMode::Parallel { threads: 2 };
    let mut session = CliqueSession::new();
    for _ in 0..3 {
        let mixed = session.run(spec(n, mode), mixers(n, 3)).unwrap();
        assert_eq!(mixed, fresh_report(n, mode, 3));
        let pulses = session
            .run(spec(n, mode), (0..n).map(|_| Pulse).collect())
            .unwrap();
        let fresh_pulses = Simulator::new(spec(n, mode), (0..n).map(|_| Pulse).collect())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(pulses, fresh_pulses);
    }
}

/// A protocol panic inside a parallel stepping worker aborts only that
/// run: the driver drains every in-flight job before re-raising, so no
/// stale worker can touch the session's shared state after the next run
/// has reset it — later answers stay bit-identical to fresh simulators.
#[test]
fn worker_panic_aborts_the_run_but_not_the_session() {
    struct Bomb {
        me: usize,
    }
    impl NodeMachine for Bomb {
        type Msg = u64;
        type Output = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
            if self.me == 0 {
                panic!("protocol bug on node 0");
            }
            Step::Done(())
        }
    }
    let n = 16;
    let mode = ExecMode::Parallel { threads: 4 };
    let mut session = CliqueSession::new();
    let before = session.run(spec(n, mode), mixers(n, 2)).unwrap();
    for _ in 0..2 {
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            session.run(
                spec(n, mode),
                (0..n).map(|me| Bomb { me }).collect::<Vec<_>>(),
            )
        }));
        assert!(panicked.is_err(), "the protocol bug must propagate");
        let after = session.run(spec(n, mode), mixers(n, 2)).unwrap();
        assert_eq!(before, after, "post-panic divergence");
    }
}

/// A panic unwinding out of the *delivery* pass (a user `size_bits`)
/// must not leave stale per-destination counters in the session scratch:
/// later runs still validate and meter every destination exactly like a
/// fresh simulator.
#[test]
fn delivery_pass_panic_does_not_leave_stale_scratch() {
    #[derive(Clone, Debug)]
    struct Volatile(u64);
    impl Payload for Volatile {
        fn size_bits(&self, n: usize) -> u64 {
            assert!(self.0 != u64::MAX, "poisoned payload reached the wire");
            cc_sim::util::word_bits(n)
        }
    }
    struct Spray {
        poison: bool,
    }
    impl NodeMachine for Spray {
        type Msg = Volatile;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Volatile>) {
            let me = ctx.me().index() as u64;
            // Several clean messages first, so the counting pass dirties
            // scratch entries before the poisoned one unwinds.
            for v in ctx.nodes() {
                ctx.send(v, Volatile(me));
            }
            if self.poison && ctx.me().index() == 0 {
                ctx.send(NodeId::new(1), Volatile(u64::MAX));
            }
        }
        fn on_round(
            &mut self,
            _ctx: &mut Ctx<'_, Volatile>,
            inbox: &mut Inbox<Volatile>,
        ) -> Step<u64> {
            Step::Done(inbox.drain().map(|(_, m)| m.0).sum())
        }
    }
    let n = 8;
    let mode = ExecMode::Sequential;
    let mut session = CliqueSession::new();
    let clean = |poison| (0..n).map(move |_| Spray { poison }).collect::<Vec<_>>();
    let fresh = Simulator::new(spec(n, mode), clean(false))
        .unwrap()
        .run()
        .unwrap();
    let panicked = catch_unwind(AssertUnwindSafe(|| session.run(spec(n, mode), clean(true))));
    assert!(panicked.is_err(), "the poisoned payload must propagate");
    // Same destinations, clean payloads: every message must be delivered,
    // metered and budget-checked exactly like on a fresh simulator.
    let recovered = session.run(spec(n, mode), clean(false)).unwrap();
    assert_eq!(fresh, recovered);
}

/// `run_many` batches answer exactly like individual fresh runs, and the
/// batch report's aggregates agree with the per-run metrics.
#[test]
fn run_many_matches_fresh_runs_and_aggregates() {
    let n = 10;
    let mut session = CliqueSession::new();
    let batch: Vec<(CliqueSpec, Vec<Mixer>)> = all_modes()
        .into_iter()
        .map(|mode| (spec(n, mode), mixers(n, 2)))
        .collect();
    let report = session.run_many(batch);
    assert_eq!(report.failed(), 0);
    let mut rounds = 0;
    let mut messages = 0;
    for (mode, run) in all_modes().iter().zip(&report.runs) {
        let run = run.as_ref().unwrap();
        assert_eq!(run, &fresh_report(n, *mode, 2), "divergence under {mode:?}");
        rounds += run.metrics.comm_rounds();
        messages += run.metrics.total_messages();
    }
    assert_eq!(report.total_comm_rounds(), rounds);
    assert_eq!(report.total_messages(), messages);
    assert_eq!(session.stats().comm_rounds(), rounds);
    assert_eq!(session.stats().messages(), messages);
}
