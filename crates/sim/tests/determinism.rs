//! Execution-mode determinism: the optimized engine (sequential and
//! parallel) must produce byte-identical `RunReport`s — outputs, round
//! metrics, histograms, work meters — to the retained seed-reference
//! engine, and model violations must be reported at the lowest
//! `(src, dst)` pair no matter how stepping is scheduled.

use cc_sim::{
    run_protocol, CliqueSpec, Ctx, ExecMode, Inbox, NodeId, NodeMachine, RunReport, SimError, Step,
};

/// All execution modes a deterministic protocol must agree across.
fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::SeedReference,
        ExecMode::Sequential,
        ExecMode::Auto,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 5 },
        ExecMode::Parallel { threads: 0 },
    ]
}

fn reports_for<N: NodeMachine>(
    base: CliqueSpec,
    make: impl Fn(NodeId) -> N + Copy,
) -> Vec<RunReport<N::Output>> {
    all_modes()
        .into_iter()
        .map(|mode| run_protocol(base.clone().with_exec(mode), make).unwrap())
        .collect()
}

fn assert_all_identical<O: PartialEq + std::fmt::Debug>(reports: &[RunReport<O>]) {
    let first = &reports[0];
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            first.outputs, r.outputs,
            "outputs diverged between mode 0 and mode {i}"
        );
        assert_eq!(
            first.metrics, r.metrics,
            "metrics diverged between mode 0 and mode {i}"
        );
    }
}

/// Heavy fan-out with scrambled send order: node `v` sends `1 + v % 3`
/// messages to every destination, emitted in a stride pattern so the
/// outbox is far from destination-sorted — the shape that exercised the
/// seed engine's quadratic drain and now exercises the bucket pass.
struct HeavyFanOut {
    rounds: u32,
    done: u32,
    checksum: u64,
}

impl NodeMachine for HeavyFanOut {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        send_wave(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        // Fold sender order into the checksum so any delivery reordering
        // changes the output.
        for (src, m) in inbox.drain() {
            self.checksum = self
                .checksum
                .wrapping_mul(31)
                .wrapping_add(src.raw() as u64)
                .wrapping_add(m);
        }
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(self.checksum);
        }
        send_wave(ctx);
        Step::Continue
    }
}

fn send_wave(ctx: &mut Ctx<'_, u64>) {
    let n = ctx.n();
    let me = ctx.me().index();
    let copies = 1 + me % 3;
    // Stride through destinations so sends arrive dst-unsorted.
    for c in 0..copies {
        for k in 0..n {
            let dst = (k * 7 + me + c) % n;
            ctx.send(NodeId::new(dst), (me * 1000 + dst + c) as u64);
        }
    }
}

#[test]
fn heavy_fanout_identical_across_modes() {
    let spec = CliqueSpec::new(40)
        .unwrap()
        .with_budget_words(16)
        .with_edge_histogram(true);
    let reports = reports_for(spec, |_| HeavyFanOut {
        rounds: 5,
        done: 0,
        checksum: 7,
    });
    assert_all_identical(&reports);
    // The workload really is heavy: every round busies all n² edges.
    assert_eq!(reports[0].metrics.rounds()[0].busy_edges, 40 * 40);
}

/// A protocol charging per-node work and memory: the per-node meters must
/// agree across modes (they are part of `Metrics` equality, but assert
/// the interesting values explicitly).
struct Worker;

impl NodeMachine for Worker {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index() as u64;
        ctx.charge_work(10 * me);
        ctx.note_mem(100 + me);
        ctx.send(ctx.me(), me);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        ctx.charge_work(1);
        Step::Done(inbox.drain().map(|(_, m)| m).sum())
    }
}

#[test]
fn work_meters_identical_across_modes() {
    let reports = reports_for(CliqueSpec::new(9).unwrap(), |_| Worker);
    assert_all_identical(&reports);
    let work = reports[0].metrics.node_work();
    assert_eq!(work.len(), 9);
    assert_eq!(work[8].steps(), 81);
    assert_eq!(work[8].peak_mem_words(), 108);
}

/// Two nodes violate the budget (src 5 before src 2 in send time is
/// irrelevant — ids order the report); within the lower src, the
/// violation on the lower dst wins even though it was queued later.
struct DoubleViolator;

impl NodeMachine for DoubleViolator {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index();
        if me == 5 || me == 2 {
            // Over-budget to dst 9 first, then to dst 4: the report must
            // name (2, 4).
            for dst in [9usize, 4] {
                for k in 0..64 {
                    ctx.send(NodeId::new(dst), k);
                }
            }
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn budget_violation_reports_lowest_src_dst_in_every_mode() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(12)
            .unwrap()
            .with_budget_words(8)
            .with_exec(mode);
        let err = run_protocol(spec, |_| DoubleViolator).unwrap_err();
        match err {
            SimError::BudgetExceeded { src, dst, .. } => {
                assert_eq!((src.index(), dst.index()), (2, 4), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// An out-of-range destination orders *after* every valid destination of
/// the same sender (NodeId comparison), so a budget violation on a valid
/// edge is reported first — in every mode.
struct MixedViolator;

impl NodeMachine for MixedViolator {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me().index() == 3 {
            ctx.send(NodeId::new(ctx.n() + 7), 1);
            for k in 0..64 {
                ctx.send(NodeId::new(6), k);
            }
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn out_of_range_orders_after_valid_destinations() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(8)
            .unwrap()
            .with_budget_words(8)
            .with_exec(mode);
        let err = run_protocol(spec, |_| MixedViolator).unwrap_err();
        match err {
            SimError::BudgetExceeded { src, dst, .. } => {
                assert_eq!((src.index(), dst.index()), (3, 6), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// With no budget violation in the way, the lowest out-of-range
/// destination is reported.
struct WildPair;

impl NodeMachine for WildPair {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me().index() == 1 {
            ctx.send(NodeId::new(ctx.n() + 9), 1);
            ctx.send(NodeId::new(ctx.n() + 2), 1);
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn lowest_out_of_range_destination_is_reported() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(5).unwrap().with_exec(mode);
        let err = run_protocol(spec, |_| WildPair).unwrap_err();
        match err {
            SimError::DestinationOutOfRange { src, dst, .. } => {
                assert_eq!((src.index(), dst), (1, 7), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// Every node finishes in the same round while node 0's final handler
/// still queues messages (to dst 5 first, then dst 2): the all-finished
/// check must report the lowest `(src, dst)` pair, not the first message
/// in send order.
struct PartingShot;

impl NodeMachine for PartingShot {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.me().index() == 0 {
            ctx.send(NodeId::new(5), 7);
            ctx.send(NodeId::new(2), 7);
        }
        Step::Done(())
    }
}

#[test]
fn sends_in_the_final_round_report_lowest_src_dst() {
    // The seed engine reported this corner in send order; the optimized
    // engine extends the lowest-(src, dst) guarantee to it, so only the
    // non-baseline modes are asserted here.
    for mode in [
        ExecMode::Sequential,
        ExecMode::Auto,
        ExecMode::Parallel { threads: 2 },
    ] {
        let err =
            run_protocol(CliqueSpec::new(6).unwrap().with_exec(mode), |_| PartingShot).unwrap_err();
        match err {
            SimError::MessageToFinishedNode { src, dst, .. } => {
                assert_eq!((src.index(), dst.index()), (0, 2), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// Inbox ordering under bundled same-destination sends: ascending sender,
/// per-sender send order — in every mode.
struct Bundler;

impl NodeMachine for Bundler {
    type Msg = u64;
    type Output = Vec<(u32, u64)>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index() as u64;
        // Three messages to node 0, interleaved with other traffic.
        ctx.send(NodeId::new(0), me * 10);
        ctx.send(ctx.me(), 999);
        ctx.send(NodeId::new(0), me * 10 + 1);
        ctx.send(NodeId::new(0), me * 10 + 2);
    }

    fn on_round(
        &mut self,
        _ctx: &mut Ctx<'_, u64>,
        inbox: &mut Inbox<u64>,
    ) -> Step<Vec<(u32, u64)>> {
        Step::Done(inbox.drain().map(|(s, m)| (s.raw(), m)).collect())
    }
}

#[test]
fn bundled_sends_preserve_order_in_every_mode() {
    let reports = reports_for(CliqueSpec::new(4).unwrap(), |_| Bundler);
    assert_all_identical(&reports);
    let at_zero = &reports[0].outputs[0];
    let expected: Vec<(u32, u64)> = vec![
        (0, 0),
        (0, 999),
        (0, 1),
        (0, 2),
        (1, 10),
        (1, 11),
        (1, 12),
        (2, 20),
        (2, 21),
        (2, 22),
        (3, 30),
        (3, 31),
        (3, 32),
    ];
    assert_eq!(at_zero, &expected);
}

/// Staggered completion: nodes finish in different rounds, so parallel
/// chunks hold a mix of running and finished nodes for most of the run.
struct Staggered;

impl NodeMachine for Staggered {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 0);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let _ = inbox.drain().count();
        if ctx.round() > ctx.me().index() as u64 {
            return Step::Done(ctx.round());
        }
        ctx.send(ctx.me(), ctx.round());
        Step::Continue
    }
}

#[test]
fn staggered_completion_identical_across_modes() {
    let reports = reports_for(CliqueSpec::new(23).unwrap(), |_| Staggered);
    assert_all_identical(&reports);
    assert_eq!(reports[0].outputs[22], 23);
}
