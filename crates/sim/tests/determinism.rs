//! Execution-mode determinism: the optimized engine (sequential and
//! parallel) must produce byte-identical `RunReport`s — outputs, round
//! metrics, histograms, work meters — to the retained seed-reference
//! engine, and model violations must be reported at the lowest
//! `(src, dst)` pair no matter how stepping is scheduled.

use cc_sim::{
    run_protocol, CliqueSpec, Ctx, ExecMode, Inbox, NodeId, NodeMachine, RunReport, SimError, Step,
};

/// All execution modes a deterministic protocol must agree across.
fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::SeedReference,
        ExecMode::Sequential,
        ExecMode::Auto,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 5 },
        ExecMode::Parallel { threads: 0 },
        ExecMode::SpawnParallel { threads: 2 },
    ]
}

/// The mode matrix of the error-path determinism suite: for a protocol
/// that violates the model, every mode must return the *identical*
/// [`SimError`] value — same variant, same fields — because violations
/// are resolved at the lowest `(src, dst)` pair independent of stepping.
fn error_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Auto,
        ExecMode::Sequential,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 3 },
        ExecMode::SpawnParallel { threads: 2 },
        ExecMode::SeedReference,
    ]
}

/// Runs `make` under every error-suite mode and returns the per-mode
/// errors, asserting the run really failed.
fn errors_for<N: NodeMachine>(
    base: CliqueSpec,
    make: impl Fn(NodeId) -> N + Copy,
) -> Vec<(ExecMode, SimError)> {
    error_modes()
        .into_iter()
        .map(|mode| {
            let err = match run_protocol(base.clone().with_exec(mode), make) {
                Err(err) => err,
                Ok(_) => panic!("expected a model violation under {mode:?}"),
            };
            (mode, err)
        })
        .collect()
}

/// Asserts every mode produced the same error value as the first.
fn assert_errors_identical(errors: &[(ExecMode, SimError)]) {
    let (first_mode, first) = &errors[0];
    for (mode, err) in &errors[1..] {
        assert_eq!(
            first, err,
            "error diverged between {first_mode:?} and {mode:?}"
        );
    }
}

fn reports_for<N: NodeMachine>(
    base: CliqueSpec,
    make: impl Fn(NodeId) -> N + Copy,
) -> Vec<RunReport<N::Output>> {
    all_modes()
        .into_iter()
        .map(|mode| run_protocol(base.clone().with_exec(mode), make).unwrap())
        .collect()
}

fn assert_all_identical<O: PartialEq + std::fmt::Debug>(reports: &[RunReport<O>]) {
    let first = &reports[0];
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            first.outputs, r.outputs,
            "outputs diverged between mode 0 and mode {i}"
        );
        assert_eq!(
            first.metrics, r.metrics,
            "metrics diverged between mode 0 and mode {i}"
        );
    }
}

/// Heavy fan-out with scrambled send order: node `v` sends `1 + v % 3`
/// messages to every destination, emitted in a stride pattern so the
/// outbox is far from destination-sorted — the shape that exercised the
/// seed engine's quadratic drain and now exercises the bucket pass.
struct HeavyFanOut {
    rounds: u32,
    done: u32,
    checksum: u64,
}

impl NodeMachine for HeavyFanOut {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        send_wave(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        // Fold sender order into the checksum so any delivery reordering
        // changes the output.
        for (src, m) in inbox.drain() {
            self.checksum = self
                .checksum
                .wrapping_mul(31)
                .wrapping_add(src.raw() as u64)
                .wrapping_add(m);
        }
        self.done += 1;
        if self.done >= self.rounds {
            return Step::Done(self.checksum);
        }
        send_wave(ctx);
        Step::Continue
    }
}

fn send_wave(ctx: &mut Ctx<'_, u64>) {
    let n = ctx.n();
    let me = ctx.me().index();
    let copies = 1 + me % 3;
    // Stride through destinations so sends arrive dst-unsorted.
    for c in 0..copies {
        for k in 0..n {
            let dst = (k * 7 + me + c) % n;
            ctx.send(NodeId::new(dst), (me * 1000 + dst + c) as u64);
        }
    }
}

#[test]
fn heavy_fanout_identical_across_modes() {
    let spec = CliqueSpec::new(40)
        .unwrap()
        .with_budget_words(16)
        .with_edge_histogram(true);
    let reports = reports_for(spec, |_| HeavyFanOut {
        rounds: 5,
        done: 0,
        checksum: 7,
    });
    assert_all_identical(&reports);
    // The workload really is heavy: every round busies all n² edges.
    assert_eq!(reports[0].metrics.rounds()[0].busy_edges, 40 * 40);
}

/// A protocol charging per-node work and memory: the per-node meters must
/// agree across modes (they are part of `Metrics` equality, but assert
/// the interesting values explicitly).
struct Worker;

impl NodeMachine for Worker {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index() as u64;
        ctx.charge_work(10 * me);
        ctx.note_mem(100 + me);
        ctx.send(ctx.me(), me);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        ctx.charge_work(1);
        Step::Done(inbox.drain().map(|(_, m)| m).sum())
    }
}

#[test]
fn work_meters_identical_across_modes() {
    let reports = reports_for(CliqueSpec::new(9).unwrap(), |_| Worker);
    assert_all_identical(&reports);
    let work = reports[0].metrics.node_work();
    assert_eq!(work.len(), 9);
    assert_eq!(work[8].steps(), 81);
    assert_eq!(work[8].peak_mem_words(), 108);
}

/// Two nodes violate the budget (src 5 before src 2 in send time is
/// irrelevant — ids order the report); within the lower src, the
/// violation on the lower dst wins even though it was queued later.
struct DoubleViolator;

impl NodeMachine for DoubleViolator {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index();
        if me == 5 || me == 2 {
            // Over-budget to dst 9 first, then to dst 4: the report must
            // name (2, 4).
            for dst in [9usize, 4] {
                for k in 0..64 {
                    ctx.send(NodeId::new(dst), k);
                }
            }
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn budget_violation_reports_lowest_src_dst_in_every_mode() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(12)
            .unwrap()
            .with_budget_words(8)
            .with_exec(mode);
        let err = run_protocol(spec, |_| DoubleViolator).unwrap_err();
        match err {
            SimError::BudgetExceeded { src, dst, .. } => {
                assert_eq!((src.index(), dst.index()), (2, 4), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// An out-of-range destination orders *after* every valid destination of
/// the same sender (NodeId comparison), so a budget violation on a valid
/// edge is reported first — in every mode.
struct MixedViolator;

impl NodeMachine for MixedViolator {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me().index() == 3 {
            ctx.send(NodeId::new(ctx.n() + 7), 1);
            for k in 0..64 {
                ctx.send(NodeId::new(6), k);
            }
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn out_of_range_orders_after_valid_destinations() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(8)
            .unwrap()
            .with_budget_words(8)
            .with_exec(mode);
        let err = run_protocol(spec, |_| MixedViolator).unwrap_err();
        match err {
            SimError::BudgetExceeded { src, dst, .. } => {
                assert_eq!((src.index(), dst.index()), (3, 6), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// With no budget violation in the way, the lowest out-of-range
/// destination is reported.
struct WildPair;

impl NodeMachine for WildPair {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.me().index() == 1 {
            ctx.send(NodeId::new(ctx.n() + 9), 1);
            ctx.send(NodeId::new(ctx.n() + 2), 1);
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
        Step::Done(())
    }
}

#[test]
fn lowest_out_of_range_destination_is_reported() {
    for mode in all_modes() {
        let spec = CliqueSpec::new(5).unwrap().with_exec(mode);
        let err = run_protocol(spec, |_| WildPair).unwrap_err();
        match err {
            SimError::DestinationOutOfRange { src, dst, .. } => {
                assert_eq!((src.index(), dst), (1, 7), "mode {mode:?}");
            }
            other => panic!("unexpected error {other:?} under {mode:?}"),
        }
    }
}

/// Every node finishes in the same round while node 0's final handler
/// still queues messages (to dst 5 first, then dst 2): the all-finished
/// check must report the lowest `(src, dst)` pair, not the first message
/// in send order.
struct PartingShot;

impl NodeMachine for PartingShot {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.me().index() == 0 {
            ctx.send(NodeId::new(5), 7);
            ctx.send(NodeId::new(2), 7);
        }
        Step::Done(())
    }
}

#[test]
fn sends_in_the_final_round_report_lowest_src_dst() {
    // The seed engine used to report this corner in send order (the
    // first-queued destination); both engines now honor the documented
    // lowest-(src, dst) guarantee, so the full mode matrix — including
    // SeedReference — must agree on the exact error value.
    let errors = errors_for(CliqueSpec::new(6).unwrap(), |_| PartingShot);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::MessageToFinishedNode { round, src, dst } => {
            assert_eq!((*round, src.index(), dst.index()), (2, 0, 2));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// Inbox ordering under bundled same-destination sends: ascending sender,
/// per-sender send order — in every mode.
struct Bundler;

impl NodeMachine for Bundler {
    type Msg = u64;
    type Output = Vec<(u32, u64)>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let me = ctx.me().index() as u64;
        // Three messages to node 0, interleaved with other traffic.
        ctx.send(NodeId::new(0), me * 10);
        ctx.send(ctx.me(), 999);
        ctx.send(NodeId::new(0), me * 10 + 1);
        ctx.send(NodeId::new(0), me * 10 + 2);
    }

    fn on_round(
        &mut self,
        _ctx: &mut Ctx<'_, u64>,
        inbox: &mut Inbox<u64>,
    ) -> Step<Vec<(u32, u64)>> {
        Step::Done(inbox.drain().map(|(s, m)| (s.raw(), m)).collect())
    }
}

#[test]
fn bundled_sends_preserve_order_in_every_mode() {
    let reports = reports_for(CliqueSpec::new(4).unwrap(), |_| Bundler);
    assert_all_identical(&reports);
    let at_zero = &reports[0].outputs[0];
    let expected: Vec<(u32, u64)> = vec![
        (0, 0),
        (0, 999),
        (0, 1),
        (0, 2),
        (1, 10),
        (1, 11),
        (1, 12),
        (2, 20),
        (2, 21),
        (2, 22),
        (3, 30),
        (3, 31),
        (3, 32),
    ];
    assert_eq!(at_zero, &expected);
}

/// Staggered completion: nodes finish in different rounds, so parallel
/// chunks hold a mix of running and finished nodes for most of the run.
struct Staggered;

impl NodeMachine for Staggered {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 0);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
        let _ = inbox.drain().count();
        if ctx.round() > ctx.me().index() as u64 {
            return Step::Done(ctx.round());
        }
        ctx.send(ctx.me(), ctx.round());
        Step::Continue
    }
}

#[test]
fn staggered_completion_identical_across_modes() {
    let reports = reports_for(CliqueSpec::new(23).unwrap(), |_| Staggered);
    assert_all_identical(&reports);
    assert_eq!(reports[0].outputs[22], 23);
}

// ---------------------------------------------------------------------------
// Error-path determinism suite: every mode must return the identical
// `SimError` *value* — not just the same variant — for each violation
// class, including the cases where only the lowest-(src, dst) precedence
// rule disambiguates between several simultaneous violations.
// ---------------------------------------------------------------------------

#[test]
fn budget_exceeded_error_identical_across_modes() {
    let errors = errors_for(CliqueSpec::new(12).unwrap().with_budget_words(8), |_| {
        DoubleViolator
    });
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::BudgetExceeded {
            round, src, dst, ..
        } => {
            assert_eq!((*round, src.index(), dst.index()), (1, 2, 4));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn destination_out_of_range_error_identical_across_modes() {
    let errors = errors_for(CliqueSpec::new(5).unwrap(), |_| WildPair);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::DestinationOutOfRange { src, dst, n } => {
            assert_eq!((src.index(), *dst, *n), (1, 7, 5));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// Several nodes violate in the same final round, each on several
/// destinations queued in descending order: node 4 queues {5, 1} and
/// node 2 queues {9, 3}. Send order would report (4, 5) first and
/// per-sender order would report (2, 9); only the lowest-(src, dst) rule
/// yields (2, 3) — which every mode must agree on exactly.
struct FinalRoundChaos;

impl NodeMachine for FinalRoundChaos {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        match ctx.me().index() {
            4 => {
                ctx.send(NodeId::new(5), 7);
                ctx.send(NodeId::new(1), 7);
            }
            2 => {
                ctx.send(NodeId::new(9), 7);
                ctx.send(NodeId::new(3), 7);
            }
            _ => {}
        }
        Step::Done(())
    }
}

#[test]
fn multi_violation_resolved_by_lowest_src_dst_in_every_mode() {
    let errors = errors_for(CliqueSpec::new(10).unwrap(), |_| FinalRoundChaos);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::MessageToFinishedNode { round, src, dst } => {
            assert_eq!((*round, src.index(), dst.index()), (2, 2, 3));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// Every node finishes in round 1 while node 1's final handler queues
/// messages *only* to out-of-range destinations (n+3 first, then n+1).
/// There is no finished in-range recipient to blame, so the violation
/// must be classified as `DestinationOutOfRange` — on the lowest invalid
/// destination — in every mode (regression: both engines used to emit
/// `MessageToFinishedNode` with a nonsensical `dst ≥ n` here).
struct PartingWildShot;

impl NodeMachine for PartingWildShot {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.me().index() == 1 {
            ctx.send(NodeId::new(ctx.n() + 3), 7);
            ctx.send(NodeId::new(ctx.n() + 1), 7);
        }
        Step::Done(())
    }
}

#[test]
fn final_round_out_of_range_classified_in_every_mode() {
    let errors = errors_for(CliqueSpec::new(6).unwrap(), |_| PartingWildShot);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::DestinationOutOfRange { src, dst, n } => {
            assert_eq!((src.index(), *dst, *n), (1, 7, 6));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// Mixed final round: node 2 queues only out-of-range destinations while
/// node 4 queues an in-range one. Senders are scanned in ascending order
/// — exactly like the delivery pass — so node 2's addressing bug is
/// reported even though node 4's violation has the "stronger" variant.
struct MixedFinalRound;

impl NodeMachine for MixedFinalRound {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        match ctx.me().index() {
            2 => ctx.send(NodeId::new(ctx.n() + 2), 7),
            4 => ctx.send(NodeId::new(0), 7),
            _ => {}
        }
        Step::Done(())
    }
}

#[test]
fn final_round_scans_senders_ascending_in_every_mode() {
    let errors = errors_for(CliqueSpec::new(8).unwrap(), |_| MixedFinalRound);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::DestinationOutOfRange { src, dst, n } => {
            assert_eq!((src.index(), *dst, *n), (2, 10, 8));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// Nodes 2.. finish in round 1; nodes 0 and 1 keep running but go silent,
/// so the engine must declare a stall with identical round/finished/total
/// accounting in every mode.
struct SilentMinority;

impl NodeMachine for SilentMinority {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.me().index() >= 2 {
            return Step::Done(());
        }
        Step::Continue
    }
}

#[test]
fn stalled_error_identical_across_modes() {
    let n = 9;
    let errors = errors_for(
        CliqueSpec::new(n).unwrap().with_max_silent_rounds(3),
        |_| SilentMinority,
    );
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::Stalled {
            round,
            finished,
            total,
        } => {
            // Round 1 delivers and completes n-2 nodes; rounds 2-4 are
            // silent (tolerated); round 5 exceeds the limit.
            assert_eq!((*round, *finished, *total), (5, n - 2, n));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

/// An in-flight violation (not the final-round corner): node 1 keeps
/// sending to node 0 after node 0 finished, detected during delivery.
struct LateToFinished;

impl NodeMachine for LateToFinished {
    type Msg = u64;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(ctx.me(), 1);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
        let _ = inbox.drain().count();
        if ctx.me().index() == 0 {
            return Step::Done(());
        }
        if ctx.me().index() == 1 {
            ctx.send(NodeId::new(0), 9);
        }
        ctx.send(ctx.me(), 1);
        Step::Continue
    }
}

#[test]
fn message_to_finished_node_error_identical_across_modes() {
    let errors = errors_for(CliqueSpec::new(4).unwrap(), |_| LateToFinished);
    assert_errors_identical(&errors);
    match &errors[0].1 {
        SimError::MessageToFinishedNode { round, src, dst } => {
            assert_eq!((*round, src.index(), dst.index()), (2, 1, 0));
        }
        other => panic!("unexpected error {other:?}"),
    }
}
