//! Seeded parity suite for the radix scatter-key engine: every radix
//! path must equal the stable comparison sort (the oracle) element for
//! element — including the payload order of duplicate keys — over
//! adversarial key distributions, every key bit-width, and degenerate
//! sizes. The oracle is `slice::sort_by_key`, which is also the
//! below-threshold and toggled-off implementation, so these tests pin
//! that all paths through `cc_sim::radix` agree.

use cc_rand::DetRng;
use cc_sim::radix;
use cc_sim::Inbox;
use cc_sim::NodeId;

/// Pair each key with its input position so stability violations are
/// visible as payload mismatches.
fn with_positions(keys: &[u64]) -> Vec<(u64, usize)> {
    keys.iter().copied().zip(0..).collect()
}

/// Asserts radix == stable oracle on `keys`, for both the thread-local
/// and the caller-scratch entry points.
fn assert_parity(keys: &[u64], label: &str) {
    let mut expected = with_positions(keys);
    expected.sort_by_key(|&(k, _)| k);

    let mut got = with_positions(keys);
    radix::sort_by_u64_key(&mut got, |&(k, _)| k);
    assert_eq!(got, expected, "thread-local path diverged on {label}");

    let mut scratch = radix::RadixScratch::new();
    let mut got = with_positions(keys);
    radix::sort_by_u64_key_with(&mut got, |&(k, _)| k, &mut scratch);
    assert_eq!(got, expected, "caller-scratch path diverged on {label}");

    // Scratch reuse must not leak state between sorts.
    let mut got = with_positions(keys);
    radix::sort_by_u64_key_with(&mut got, |&(k, _)| k, &mut scratch);
    assert_eq!(got, expected, "recycled-scratch path diverged on {label}");
}

fn uniform(rng: &mut DetRng, len: usize, mask: u64) -> Vec<u64> {
    (0..len).map(|_| rng.next_u64() & mask).collect()
}

/// A simple Zipf-like sampler (the same inverse-power shape
/// `cc-workloads::zipf_keys` uses; duplicated here because `cc-sim`
/// cannot dev-depend on `cc-workloads` without re-unifying the
/// `parallel` feature the no-default-features CI lane turns off).
fn zipf(rng: &mut DetRng, len: usize, universe: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let rank = ((universe as f64).powf(u) - 1.0) as u64;
            rank.min(universe - 1)
        })
        .collect()
}

#[test]
fn parity_all_equal_sorted_reverse() {
    for len in [0usize, 1, 2, 63, 64, 65, 256, 1000] {
        let equal: Vec<u64> = vec![42; len];
        assert_parity(&equal, "all-equal");
        let sorted: Vec<u64> = (0..len as u64).collect();
        assert_parity(&sorted, "already-sorted");
        let reverse: Vec<u64> = (0..len as u64).rev().collect();
        assert_parity(&reverse, "reverse");
    }
}

#[test]
fn parity_every_key_bit_width() {
    let mut rng = DetRng::seed_from_u64(0xC110E);
    for bits in [1u32, 4, 7, 8, 9, 16, 20, 24, 32, 33, 48, 63, 64] {
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        for len in [65usize, 300, 1024] {
            let keys = uniform(&mut rng, len, mask);
            assert_parity(&keys, &format!("uniform {bits}-bit"));
        }
    }
}

#[test]
fn parity_zipf_distribution() {
    let mut rng = DetRng::seed_from_u64(7);
    for universe in [4u64, 64, 1 << 20] {
        let keys = zipf(&mut rng, 800, universe);
        assert_parity(&keys, &format!("zipf universe {universe}"));
    }
}

/// Duplicate keys keep their payloads in input order — the stability
/// half of the determinism contract, asserted directly rather than via
/// the oracle.
#[test]
fn duplicates_preserve_payload_order() {
    let mut rng = DetRng::seed_from_u64(99);
    let keys = uniform(&mut rng, 500, 0x7); // 8 distinct keys, heavy duplication
    let mut items = with_positions(&keys);
    radix::sort_by_u64_key(&mut items, |&(k, _)| k);
    for pair in items.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "keys out of order");
        if pair[0].0 == pair[1].0 {
            assert!(
                pair[0].1 < pair[1].1,
                "stability violated: payload {} before {}",
                pair[0].1,
                pair[1].1
            );
        }
    }
}

#[test]
fn bounded_scatter_matches_oracle() {
    let mut rng = DetRng::seed_from_u64(3);
    for buckets in [1usize, 2, 16, 257] {
        let keys: Vec<u64> = (0..700).map(|_| rng.next_u64() % buckets as u64).collect();
        let mut expected = with_positions(&keys);
        expected.sort_by_key(|&(k, _)| k);
        let mut got = with_positions(&keys);
        radix::sort_by_bounded_key(&mut got, buckets, |&(k, _)| k as usize);
        assert_eq!(got, expected, "bounded scatter, {buckets} buckets");
    }
}

#[test]
fn two_key_lexicographic_matches_oracle() {
    let mut rng = DetRng::seed_from_u64(11);
    let items: Vec<(u64, u64, usize)> = (0..600)
        .map(|i| (rng.next_u64() & 0xF, rng.next_u64() & 0xFF, i))
        .collect();
    let mut expected = items.clone();
    expected.sort_by_key(|&(a, b, _)| (a, b));
    let mut got = items.clone();
    radix::sort_by_u64_key2(&mut got, |&(a, _, _)| a, |&(_, b, _)| b);
    assert_eq!(got, expected);
}

/// Flipping the toggle changes which implementation runs, never the
/// result. (Runs concurrently with the other tests in this binary; that
/// is safe precisely because both settings are stable sorts.)
#[test]
fn toggle_off_is_observationally_identical() {
    let mut rng = DetRng::seed_from_u64(5);
    let keys = uniform(&mut rng, 900, u64::MAX >> 16);
    let mut on = with_positions(&keys);
    let mut off = with_positions(&keys);
    radix::set_radix_enabled(true);
    radix::sort_by_u64_key(&mut on, |&(k, _)| k);
    radix::set_radix_enabled(false);
    radix::sort_by_u64_key(&mut off, |&(k, _)| k);
    radix::set_radix_enabled(true);
    assert_eq!(on, off);
}

/// `Inbox::from_messages` above the radix threshold (the converted
/// unsorted path) keeps the documented stable semantics: ascending
/// sender, per-sender send order preserved.
#[test]
fn inbox_from_messages_radix_path_is_stable() {
    let mut rng = DetRng::seed_from_u64(21);
    let items: Vec<(NodeId, u64)> = (0..400u64)
        .map(|seq| (NodeId::new((rng.next_u64() % 13) as usize), seq))
        .collect();
    let mut expected = items.clone();
    expected.sort_by_key(|&(src, _)| src);
    let got: Vec<(NodeId, u64)> = Inbox::from_messages(items).into_iter().collect();
    assert_eq!(got, expected);
}
