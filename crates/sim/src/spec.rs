use crate::error::SimError;
use crate::util::word_bits;

/// Configuration of a simulated congested clique.
///
/// Built with [`CliqueSpec::new`] and refined with the `with_*` builder
/// methods ([C-BUILDER]):
///
/// ```rust
/// # fn main() -> Result<(), cc_sim::SimError> {
/// let spec = cc_sim::CliqueSpec::new(64)?
///     .with_budget_words(6)
///     .with_max_rounds(100)
///     .with_edge_histogram(true);
/// assert_eq!(spec.n(), 64);
/// assert_eq!(spec.bits_per_edge(), 36); // 6 words × ⌈log₂ 64⌉
/// # Ok(())
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#builders-enable-construction-of-complex-values-c-builder
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueSpec {
    n: usize,
    bits_per_edge: u64,
    max_rounds: u64,
    max_silent_rounds: u64,
    record_edge_histogram: bool,
}

/// Default per-edge budget, in machine words of `⌈log₂ n⌉` bits.
///
/// Generous enough for every protocol in this workspace: the widest
/// messages are bundled sort keys (4 keys of 2 words) plus a piggybacked
/// announcement word.
pub const DEFAULT_BUDGET_WORDS: u64 = 16;

/// Default bound on the number of rounds before the engine aborts.
pub const DEFAULT_MAX_ROUNDS: u64 = 100_000;

/// Default bound on *consecutive* rounds without any message or node
/// completion before the engine declares the protocol stalled.
///
/// Lockstep protocols may legitimately pass through a few message-free
/// rounds (e.g. a sub-phase with nothing to exchange still advances its
/// fixed round schedule); unbounded silence indicates a livelock.
pub const DEFAULT_MAX_SILENT_ROUNDS: u64 = 64;

impl CliqueSpec {
    /// Creates a spec for an `n`-node clique with the default budget of
    /// [`DEFAULT_BUDGET_WORDS`] machine words per directed edge per round.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::InvalidSpec {
                reason: "clique must have at least one node".to_owned(),
            });
        }
        Ok(CliqueSpec {
            n,
            bits_per_edge: DEFAULT_BUDGET_WORDS * word_bits(n),
            max_rounds: DEFAULT_MAX_ROUNDS,
            max_silent_rounds: DEFAULT_MAX_SILENT_ROUNDS,
            record_edge_histogram: false,
        })
    }

    /// Sets the per-edge per-round budget to `words` machine words
    /// (`words × ⌈log₂ n⌉` bits).
    #[must_use]
    pub fn with_budget_words(mut self, words: u64) -> Self {
        self.bits_per_edge = words * word_bits(self.n);
        self
    }

    /// Sets the per-edge per-round budget to an explicit number of bits.
    #[must_use]
    pub fn with_bits_per_edge(mut self, bits: u64) -> Self {
        self.bits_per_edge = bits;
        self
    }

    /// Sets the maximum number of rounds before the engine gives up.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the maximum number of consecutive silent (no message, no
    /// completion) rounds tolerated before [`SimError::Stalled`].
    #[must_use]
    pub fn with_max_silent_rounds(mut self, max_silent_rounds: u64) -> Self {
        self.max_silent_rounds = max_silent_rounds;
        self
    }

    /// Enables recording of the per-edge bit-load histogram (used by the
    /// load-balance experiment E14; costs extra bookkeeping per round).
    #[must_use]
    pub fn with_edge_histogram(mut self, enabled: bool) -> Self {
        self.record_edge_histogram = enabled;
        self
    }

    /// Number of nodes in the clique.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-directed-edge, per-round bit budget.
    #[inline]
    pub fn bits_per_edge(&self) -> u64 {
        self.bits_per_edge
    }

    /// Maximum number of rounds before [`SimError::TooManyRounds`].
    #[inline]
    pub fn max_rounds(&self) -> u64 {
        self.max_rounds
    }

    /// Maximum consecutive silent rounds before [`SimError::Stalled`].
    #[inline]
    pub fn max_silent_rounds(&self) -> u64 {
        self.max_silent_rounds
    }

    /// Whether the per-edge load histogram is recorded.
    #[inline]
    pub fn records_edge_histogram(&self) -> bool {
        self.record_edge_histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_clique() {
        assert!(matches!(
            CliqueSpec::new(0),
            Err(SimError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn default_budget_scales_with_log_n() {
        let spec = CliqueSpec::new(1024).unwrap();
        assert_eq!(spec.bits_per_edge(), DEFAULT_BUDGET_WORDS * 10);
    }

    #[test]
    fn builder_overrides() {
        let spec = CliqueSpec::new(16)
            .unwrap()
            .with_bits_per_edge(7)
            .with_max_rounds(3);
        assert_eq!(spec.bits_per_edge(), 7);
        assert_eq!(spec.max_rounds(), 3);
        assert!(!spec.records_edge_histogram());
    }
}
