use crate::error::SimError;
use crate::util::word_bits;

/// Cliques below this size never auto-select threaded stepping: a round of
/// `on_round` calls on a few dozen nodes finishes faster than the worker
/// hand-off costs.
///
/// Workers are persistent and parked between rounds (see the engine's
/// worker pool), so the hand-off is a channel send rather than a thread
/// spawn — which is why this threshold sits well below the 128 nodes the
/// per-round spawn/join engine needed.
pub const PARALLEL_AUTO_THRESHOLD: usize = 64;

/// Minimum nodes per worker chunk that [`ExecMode::Auto`] will schedule.
///
/// Workers are spawned once per run and parked between rounds, so a chunk
/// only has to amortize a channel hand-off (microseconds), not a thread
/// spawn/join — hence 8 nodes per worker instead of the 32 the
/// spawn-per-round engine required. Explicit [`ExecMode::Parallel`]
/// counts are honored as given.
pub const PARALLEL_MIN_CHUNK: usize = 8;

/// How the engine executes a run.
///
/// Every mode produces **bit-identical** [`RunReport`](crate::RunReport)s
/// for a deterministic protocol: message delivery is always performed on
/// the driving thread in ascending sender order, node stepping touches
/// only per-node state, and error precedence is fixed at the lowest
/// `(src, dst)` violation — so the mode only changes wall-clock time,
/// never observable behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Threaded stepping when the `parallel` feature is enabled, the host
    /// has more than one core, and the clique has at least
    /// [`PARALLEL_AUTO_THRESHOLD`] nodes; sequential otherwise. The worker
    /// count is capped so each chunk holds at least
    /// [`PARALLEL_MIN_CHUNK`] nodes.
    #[default]
    Auto,
    /// Single-threaded stepping (still uses the bucketed delivery path).
    Sequential,
    /// Step nodes on exactly `threads` persistent pooled workers (`0` =
    /// one per available core); workers are spawned once per run and
    /// parked between rounds. Without the `parallel` feature this
    /// degrades to [`ExecMode::Sequential`].
    Parallel {
        /// Number of stepping workers; `0` selects one per available core.
        threads: usize,
    },
    /// The pre-pool parallel engine: `threads` scoped workers spawned and
    /// joined *every round* instead of drawn from the persistent pool.
    /// Retained solely as a benchmark baseline so the pool's per-round
    /// hand-off advantage stays measurable (`cargo bench -p cc-bench
    /// --bench engine`); never use it for real runs. Resolves its worker
    /// count exactly like [`ExecMode::Parallel`].
    SpawnParallel {
        /// Number of stepping workers; `0` selects one per available core.
        threads: usize,
    },
    /// The pre-optimization engine: comparison-sort delivery with a
    /// quadratic drain and fresh inbox allocations every round. Retained
    /// solely as the benchmark baseline the optimized paths are measured
    /// against; never use it for real runs.
    SeedReference,
}

impl ExecMode {
    /// The number of stepping workers this mode resolves to for an
    /// `n`-node clique on this host (1 means sequential stepping).
    pub fn worker_threads(self, n: usize) -> usize {
        let cores = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        match self {
            ExecMode::Sequential | ExecMode::SeedReference => 1,
            ExecMode::Auto => {
                if !cfg!(feature = "parallel") || n < PARALLEL_AUTO_THRESHOLD {
                    1
                } else {
                    // Cap workers so every chunk amortizes its per-round
                    // hand-off cost (see PARALLEL_MIN_CHUNK).
                    cores().min(n / PARALLEL_MIN_CHUNK).max(1)
                }
            }
            ExecMode::Parallel { threads } | ExecMode::SpawnParallel { threads } => {
                if !cfg!(feature = "parallel") {
                    return 1;
                }
                let t = if threads == 0 { cores() } else { threads };
                t.clamp(1, n.max(1))
            }
        }
    }
}

/// Configuration of a simulated congested clique.
///
/// Built with [`CliqueSpec::new`] and refined with the `with_*` builder
/// methods ([C-BUILDER]):
///
/// ```rust
/// # fn main() -> Result<(), cc_sim::SimError> {
/// let spec = cc_sim::CliqueSpec::new(64)?
///     .with_budget_words(6)
///     .with_max_rounds(100)
///     .with_edge_histogram(true);
/// assert_eq!(spec.n(), 64);
/// assert_eq!(spec.bits_per_edge(), 36); // 6 words × ⌈log₂ 64⌉
/// # Ok(())
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#builders-enable-construction-of-complex-values-c-builder
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueSpec {
    n: usize,
    bits_per_edge: u64,
    max_rounds: u64,
    max_silent_rounds: u64,
    record_edge_histogram: bool,
    exec: ExecMode,
}

/// Default per-edge budget, in machine words of `⌈log₂ n⌉` bits.
///
/// Generous enough for every protocol in this workspace: the widest
/// messages are bundled sort keys (4 keys of 2 words) plus a piggybacked
/// announcement word.
pub const DEFAULT_BUDGET_WORDS: u64 = 16;

/// Default bound on the number of rounds before the engine aborts.
pub const DEFAULT_MAX_ROUNDS: u64 = 100_000;

/// Default bound on *consecutive* rounds without any message or node
/// completion before the engine declares the protocol stalled.
///
/// Lockstep protocols may legitimately pass through a few message-free
/// rounds (e.g. a sub-phase with nothing to exchange still advances its
/// fixed round schedule); unbounded silence indicates a livelock.
pub const DEFAULT_MAX_SILENT_ROUNDS: u64 = 64;

impl CliqueSpec {
    /// Creates a spec for an `n`-node clique with the default budget of
    /// [`DEFAULT_BUDGET_WORDS`] machine words per directed edge per round.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::InvalidSpec {
                reason: "clique must have at least one node".to_owned(),
            });
        }
        Ok(CliqueSpec {
            n,
            bits_per_edge: DEFAULT_BUDGET_WORDS * word_bits(n),
            max_rounds: DEFAULT_MAX_ROUNDS,
            max_silent_rounds: DEFAULT_MAX_SILENT_ROUNDS,
            record_edge_histogram: false,
            exec: ExecMode::Auto,
        })
    }

    /// Sets the per-edge per-round budget to `words` machine words
    /// (`words × ⌈log₂ n⌉` bits).
    #[must_use]
    pub fn with_budget_words(mut self, words: u64) -> Self {
        self.bits_per_edge = words * word_bits(self.n);
        self
    }

    /// Sets the per-edge per-round budget to an explicit number of bits.
    #[must_use]
    pub fn with_bits_per_edge(mut self, bits: u64) -> Self {
        self.bits_per_edge = bits;
        self
    }

    /// Sets the maximum number of rounds before the engine gives up.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the maximum number of consecutive silent (no message, no
    /// completion) rounds tolerated before [`SimError::Stalled`].
    #[must_use]
    pub fn with_max_silent_rounds(mut self, max_silent_rounds: u64) -> Self {
        self.max_silent_rounds = max_silent_rounds;
        self
    }

    /// Enables recording of the per-edge bit-load histogram (used by the
    /// load-balance experiment E14; costs extra bookkeeping per round).
    #[must_use]
    pub fn with_edge_histogram(mut self, enabled: bool) -> Self {
        self.record_edge_histogram = enabled;
        self
    }

    /// Selects the execution mode (see [`ExecMode`]). All modes are
    /// observably identical; this only trades wall-clock time.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Number of nodes in the clique.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-directed-edge, per-round bit budget.
    #[inline]
    pub fn bits_per_edge(&self) -> u64 {
        self.bits_per_edge
    }

    /// Maximum number of rounds before [`SimError::TooManyRounds`].
    #[inline]
    pub fn max_rounds(&self) -> u64 {
        self.max_rounds
    }

    /// Maximum consecutive silent rounds before [`SimError::Stalled`].
    #[inline]
    pub fn max_silent_rounds(&self) -> u64 {
        self.max_silent_rounds
    }

    /// Whether the per-edge load histogram is recorded.
    #[inline]
    pub fn records_edge_histogram(&self) -> bool {
        self.record_edge_histogram
    }

    /// The configured execution mode.
    #[inline]
    pub fn exec(&self) -> ExecMode {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_clique() {
        assert!(matches!(
            CliqueSpec::new(0),
            Err(SimError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn default_budget_scales_with_log_n() {
        let spec = CliqueSpec::new(1024).unwrap();
        assert_eq!(spec.bits_per_edge(), DEFAULT_BUDGET_WORDS * 10);
    }

    #[test]
    fn builder_overrides() {
        let spec = CliqueSpec::new(16)
            .unwrap()
            .with_bits_per_edge(7)
            .with_max_rounds(3);
        assert_eq!(spec.bits_per_edge(), 7);
        assert_eq!(spec.max_rounds(), 3);
        assert!(!spec.records_edge_histogram());
        assert_eq!(spec.exec(), ExecMode::Auto);
        let spec = spec.with_exec(ExecMode::Sequential);
        assert_eq!(spec.exec(), ExecMode::Sequential);
    }

    #[test]
    fn exec_mode_resolution() {
        assert_eq!(ExecMode::Sequential.worker_threads(1024), 1);
        assert_eq!(ExecMode::SeedReference.worker_threads(1024), 1);
        // Small cliques never auto-parallelize.
        assert_eq!(
            ExecMode::Auto.worker_threads(PARALLEL_AUTO_THRESHOLD - 1),
            1
        );
        if cfg!(feature = "parallel") {
            // Explicit thread counts are honored (clamped to n).
            assert_eq!(ExecMode::Parallel { threads: 3 }.worker_threads(1024), 3);
            assert_eq!(ExecMode::Parallel { threads: 64 }.worker_threads(8), 8);
            assert!(ExecMode::Parallel { threads: 0 }.worker_threads(1024) >= 1);
            // The spawn-per-round baseline resolves exactly like Parallel.
            assert_eq!(
                ExecMode::SpawnParallel { threads: 3 }.worker_threads(1024),
                3
            );
        } else {
            assert_eq!(ExecMode::Parallel { threads: 3 }.worker_threads(1024), 1);
            assert_eq!(
                ExecMode::SpawnParallel { threads: 3 }.worker_threads(1024),
                1
            );
        }
    }
}
