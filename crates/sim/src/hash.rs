//! A small, dependency-free, *stable* 64-bit hash (FNV-1a).
//!
//! The simulator's [common-knowledge cache](crate::CommonCache) keys shared
//! computations by a hash of each node's view of the input. The standard
//! library's `DefaultHasher` is not guaranteed stable across releases, and
//! the deterministic algorithms of the paper rely on all nodes agreeing on
//! derived values, so we pin an explicit algorithm.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] implementing 64-bit FNV-1a.
///
/// ```rust
/// use std::hash::{Hash, Hasher};
/// let mut h = cc_sim::hash::StableHasher::new();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let mut h2 = cc_sim::hash::StableHasher::new();
/// 42u64.hash(&mut h2);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes anything `Hash` with the stable hasher.
pub fn stable_hash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Hashes a slice of `u32` values (the common shape of demand matrices).
pub fn hash_u32s(values: &[u32]) -> u64 {
    let mut h = StableHasher::new();
    for &v in values {
        h.write(&v.to_le_bytes());
    }
    h.write_u8(0x5a);
    h.finish()
}

/// Hashes a slice of `u64` values (the common shape of key sets).
pub fn hash_u64s(values: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &v in values {
        h.write(&v.to_le_bytes());
    }
    h.write_u8(0xa5);
    h.finish()
}

/// Combines two hashes order-dependently.
pub fn combine(a: u64, b: u64) -> u64 {
    let mut h = StableHasher::new();
    h.write(&a.to_le_bytes());
    h.write(&b.to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u32s(&[1, 2, 3]), hash_u32s(&[1, 2, 3]));
        assert_eq!(hash_u64s(&[1, 2, 3]), hash_u64s(&[1, 2, 3]));
    }

    #[test]
    fn sensitive_to_order_and_content() {
        assert_ne!(hash_u32s(&[1, 2, 3]), hash_u32s(&[3, 2, 1]));
        assert_ne!(hash_u32s(&[1, 2, 3]), hash_u32s(&[1, 2, 4]));
        assert_ne!(hash_u32s(&[]), hash_u32s(&[0]));
    }

    #[test]
    fn u32_and_u64_views_differ() {
        // Domain separation: the same numeric content hashed as different
        // widths must not collide trivially.
        assert_ne!(hash_u32s(&[7, 8]), hash_u64s(&[7, 8]));
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        let h = StableHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
    }
}
