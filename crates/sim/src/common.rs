use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Identifies one shared deterministic computation.
///
/// Deterministic congested-clique algorithms frequently have *all* nodes of
/// a group evaluate the same function of common knowledge (e.g. the König
/// edge coloring of a globally announced demand multigraph in Algorithm 2,
/// Step 2). A scope names one such evaluation site: a static label plus a
/// dynamic tag (typically a phase number and a group index packed together).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommonScope {
    /// Static name of the computation site (e.g. `"alg2.step2.coloring"`).
    pub label: &'static str,
    /// Dynamic disambiguator: pack phase/group indices as needed.
    pub tag: u64,
}

impl CommonScope {
    /// Creates a scope.
    pub fn new(label: &'static str, tag: u64) -> Self {
        CommonScope { label, tag }
    }
}

/// The computed value of one scope plus the input hash it was computed
/// from.
///
/// Stored behind a per-scope `OnceLock`: the map lock is only held long
/// enough to find or insert the slot, while the (potentially
/// heavyweight) compute runs under the slot's own initialization lock —
/// so *distinct* scopes compute concurrently and racing callers of the
/// *same* scope still compute exactly once.
struct SlotValue {
    input_hash: u64,
    value: Arc<dyn Any + Send + Sync>,
}

/// One scope's compute-once cell.
type ScopeSlot = OnceLock<SlotValue>;

/// Memoizes computations that are common knowledge across nodes, verifying
/// the common-knowledge assumption at runtime.
///
/// The first node to evaluate a [`CommonScope`] computes the value; later
/// nodes receive the cached [`Arc`]. Every caller supplies a hash of its
/// *local view* of the input; if two nodes ever disagree, the protocol's
/// common-knowledge assumption is broken and the cache panics with a
/// diagnostic — a distributed-correctness assertion, not merely an
/// optimization.
///
/// Internally the cache is two-level: a short-lived map lock resolves a
/// scope to its per-scope once-slot, and the compute closure runs under
/// that slot alone. Under parallel stepping, distinct heavyweight scopes
/// (e.g. the per-group König colorings of one round of Algorithm 2) are
/// therefore evaluated concurrently on different workers instead of
/// serializing on a single cache-wide lock.
///
/// # Panics
///
/// [`CommonCache::get_or_compute`] panics if a second caller presents a
/// different `input_hash` for the same scope, or if the cached value's type
/// differs from the requested one.
#[derive(Default)]
pub struct CommonCache {
    entries: Mutex<HashMap<CommonScope, Arc<ScopeSlot>>>,
}

impl std::fmt::Debug for CommonCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.len();
        write!(f, "CommonCache({n} entries)")
    }
}

impl CommonCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the scope map, recovering from poisoning: a panic elsewhere
    /// (e.g. a divergence assertion on another worker) must not cascade
    /// into an unrelated panic message here.
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, HashMap<CommonScope, Arc<ScopeSlot>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the memoized value for `scope`, computing it with `compute`
    /// on first use.
    ///
    /// `input_hash` must be a hash of the caller's local view of every
    /// input that `compute` reads; see [`crate::hash`].
    ///
    /// Only the scope-to-slot lookup takes the cache-wide lock; the
    /// compute itself synchronizes per scope, so concurrent callers of
    /// different scopes never wait on each other.
    ///
    /// # Panics
    ///
    /// Panics on input-hash divergence between nodes (broken
    /// common-knowledge assumption) or on a type mismatch for the scope.
    pub fn get_or_compute<T, F>(&self, scope: CommonScope, input_hash: u64, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let slot = self.lock_entries().entry(scope).or_default().clone();
        let filled = slot.get_or_init(|| SlotValue {
            input_hash,
            value: Arc::new(compute()),
        });
        assert_eq!(
            filled.input_hash, input_hash,
            "common-knowledge divergence at {}#{:x}: a node supplied input hash {:#x}, \
             but the scope was first evaluated with {:#x}",
            scope.label, scope.tag, input_hash, filled.input_hash
        );
        filled
            .value
            .clone()
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch in common scope {}", scope.label))
    }

    /// Forgets every memoized scope while keeping the map's allocation.
    ///
    /// A [`CliqueSession`](crate::CliqueSession) calls this between runs:
    /// each protocol run must start from an empty cache — both for the
    /// determinism contract (a reused session is bit-identical to a fresh
    /// [`Simulator`](crate::Simulator)) and for correctness, since two
    /// runs may evaluate the same [`CommonScope`] from *different* inputs,
    /// which within one run would (rightly) trip the divergence assertion.
    pub fn reset(&self) {
        self.lock_entries().clear();
    }

    /// Number of distinct scopes evaluated so far.
    pub fn len(&self) -> usize {
        self.lock_entries()
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Returns `true` if no scope has been evaluated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn computes_once() {
        let cache = CommonCache::new();
        let calls = AtomicUsize::new(0);
        let scope = CommonScope::new("test", 1);
        for _ in 0..5 {
            let v = cache.get_or_compute(scope, 42, || {
                calls.fetch_add(1, Ordering::SeqCst);
                123u64
            });
            assert_eq!(*v, 123);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reset_forgets_scopes_and_divergence_history() {
        let cache = CommonCache::new();
        let scope = CommonScope::new("reset", 3);
        assert_eq!(*cache.get_or_compute(scope, 1, || 10u64), 10);
        cache.reset();
        assert!(cache.is_empty());
        // A different input hash for the same scope is fine after reset —
        // it's a new run; the recompute actually happens.
        assert_eq!(*cache.get_or_compute(scope, 2, || 20u64), 20);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_tags_are_distinct_scopes() {
        let cache = CommonCache::new();
        let a = cache.get_or_compute(CommonScope::new("t", 1), 0, || 1u64);
        let b = cache.get_or_compute(CommonScope::new("t", 2), 0, || 2u64);
        assert_eq!((*a, *b), (1, 2));
    }

    #[test]
    #[should_panic(expected = "common-knowledge divergence")]
    fn detects_divergent_inputs() {
        let cache = CommonCache::new();
        let scope = CommonScope::new("diverge", 7);
        let _ = cache.get_or_compute(scope, 1, || 0u64);
        let _ = cache.get_or_compute(scope, 2, || 0u64);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn detects_type_mismatch() {
        let cache = CommonCache::new();
        let scope = CommonScope::new("ty", 0);
        let _ = cache.get_or_compute(scope, 1, || 0u64);
        let _: Arc<String> = cache.get_or_compute(scope, 1, String::new);
    }

    /// Two workers evaluating *different* scopes must both be inside their
    /// compute closures at the same time: the barrier rendezvous deadlocks
    /// under a cache that runs computes while holding the map lock.
    #[test]
    fn distinct_scopes_compute_concurrently() {
        let cache = CommonCache::new();
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for tag in 0..2u64 {
                let (cache, barrier) = (&cache, &barrier);
                s.spawn(move || {
                    let v = cache.get_or_compute(CommonScope::new("concurrent", tag), tag, || {
                        barrier.wait();
                        tag * 10
                    });
                    assert_eq!(*v, tag * 10);
                });
            }
        });
        assert_eq!(cache.len(), 2);
    }

    /// Racing callers of the *same* scope still compute exactly once; the
    /// loser blocks on the slot and receives the winner's value.
    #[test]
    fn same_scope_race_computes_once() {
        let cache = CommonCache::new();
        let calls = AtomicUsize::new(0);
        let barrier = Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (cache, calls, barrier) = (&cache, &calls, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let v = cache.get_or_compute(CommonScope::new("race", 0), 9, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        77u64
                    });
                    assert_eq!(*v, 77);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }
}
