//! Radix scatter-key engine for the node-local sort and delivery hot
//! paths.
//!
//! The protocols of the paper are bottlenecked locally, not globally:
//! between rounds every node re-sorts `(key, payload)` batches, and the
//! delivery pass groups outboxes by destination. This module replaces
//! those comparison sorts with an LSD radix pipeline —
//! **count → exclusive scan → scatter** with double-buffered scratch, the
//! classic GPU-sort structure — plus a single-pass *bounded scatter* for
//! keys with a known small range (destinations `< n`).
//!
//! ## How a sort runs
//!
//! 1. Each element is reduced to a `(u64 key, u32 index)` pair in the
//!    scratch's keyed buffer (payloads are not moved per pass).
//! 2. One cheap XOR pass finds the bits that vary between keys (keys
//!    bounded below `2^k` leave the high bits constant); digits are laid
//!    over that span only and sized adaptively — a 20-bit span is two
//!    balanced 10-bit passes, not three 8-bit ones.
//! 3. Each pass counts its digit, exclusive-scans the histogram into
//!    bucket offsets and scatters the pairs into the spare buffer,
//!    ping-ponging the two buffers.
//! 4. The sorted index column is a permutation, applied to the payload
//!    slice in place — a sequential gather for plain-data payloads,
//!    cycle-following swaps for ownership-carrying ones.
//!
//! ## Determinism contract
//!
//! Equal-key payload order is load-bearing: inbox order, tie-broken
//! protocol keys and ultimately whole `RunReport`s depend on it. Every
//! path through this module — radix, bounded scatter, the
//! below-[`RADIX_MIN_LEN`] small-input path, and the
//! [`set_radix_enabled`]`(false)` fallback — is a **stable** sort, so the
//! engine's output is bit-identical with the radix path on or off, in
//! every `ExecMode`. The comparison sort is simultaneously the runtime
//! fallback and the test oracle (see `crates/sim/tests/radix.rs`).
//!
//! ## Scratch recycling
//!
//! All working memory lives in a [`RadixScratch`]: callers on the engine's
//! persistent worker threads go through a thread-local scratch that
//! survives rounds *and* runs (the threads are parked between runs, like
//! the inbox/outbox piles), and a
//! [`CliqueSession`](crate::CliqueSession) owns one for its public sort
//! surface. Steady-state sorts allocate nothing.
//!
//! ## Parallel driver
//!
//! With the `parallel` feature, large sorts fan out over the session's
//! parked workers (see `CliqueSession::sort_by_u64_key`): the keyed
//! pairs are split
//! into per-worker chunks, each worker histograms and locally groups its
//! chunk per pass, and the driving thread merges the chunk histograms
//! with a scan and reassembles bucket-major in chunk order. Chunk
//! boundaries are fixed and reassembly order is positional, so the
//! parallel driver is observably identical to the sequential one.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::node::NodeId;

/// Bits consumed per pass by the fixed-digit paths (the parallel driver's
/// chunk histograms; the sequential path sizes its digits adaptively, see
/// [`MAX_DIGIT_BITS`]).
pub const RADIX_BITS: u32 = 8;

/// Buckets per digit (`2^RADIX_BITS`).
pub const RADIX_BUCKETS: usize = 1 << RADIX_BITS;

/// Passes needed to cover a full `u64` key (the parallel driver's
/// fixed-width histograms; unused without the `parallel` feature).
#[cfg(feature = "parallel")]
const RADIX_PASSES: usize = (u64::BITS / RADIX_BITS) as usize;

/// Widest digit the adaptive sequential sort will use: 2^11 bucket
/// counters (16 KiB) still sit comfortably in cache while cutting the
/// pass count for the common 16–24-bit bounded key spans from three to
/// two.
const MAX_DIGIT_BITS: u32 = 11;

/// Below this length the stable comparison sort is used instead: a radix
/// pass touches every bucket counter regardless of input size, so tiny
/// batches (the common case for per-sender fan-out) are cheaper to
/// merge-sort than to histogram.
pub const RADIX_MIN_LEN: usize = 64;

/// Minimum elements per worker chunk before the parallel driver engages;
/// below this the channel hand-off costs more than the scatter it splits.
pub const PARALLEL_SORT_MIN_CHUNK: usize = 512;

/// Sentinel marking an index-column entry as already placed during the
/// cycle-following permutation apply. Inputs longer than `u32::MAX`
/// elements fall back to the comparison sort so the sentinel can never
/// collide with a real index.
const PLACED: u32 = u32::MAX;

const TOGGLE_UNSET: u8 = 0;
const TOGGLE_OFF: u8 = 1;
const TOGGLE_ON: u8 = 2;

/// Process-wide radix toggle, initialized lazily from the `CC_RADIX`
/// environment variable (`0`, `off` or `false` disable). Because every
/// path is stable, flipping it never changes observable results — only
/// which sort implementation produces them.
static RADIX_TOGGLE: AtomicU8 = AtomicU8::new(TOGGLE_UNSET);

/// Whether the radix paths are active. Defaults to on; the environment
/// variable `CC_RADIX=off` (or `0`/`false`) disables them at startup, and
/// [`set_radix_enabled`] overrides either way at runtime.
pub fn radix_enabled() -> bool {
    match RADIX_TOGGLE.load(Ordering::Relaxed) {
        TOGGLE_OFF => false,
        TOGGLE_ON => true,
        _ => {
            let on = !matches!(
                std::env::var("CC_RADIX").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            RADIX_TOGGLE.store(if on { TOGGLE_ON } else { TOGGLE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the radix paths on or off for the whole process (overriding
/// `CC_RADIX`). Used by the determinism suite to pin that reports are
/// bit-identical either way; both settings are stable sorts, so this is
/// never required for correctness.
pub fn set_radix_enabled(on: bool) {
    RADIX_TOGGLE.store(if on { TOGGLE_ON } else { TOGGLE_OFF }, Ordering::Relaxed);
}

/// Reusable working memory for the radix paths: the double-buffered
/// `(key, index)` columns and the histogram/offset table. All buffers
/// keep their capacity across calls, so a recycled scratch makes
/// steady-state sorts allocation-free.
#[derive(Debug, Default)]
pub struct RadixScratch {
    keyed: Vec<(u64, u32)>,
    spare: Vec<(u64, u32)>,
    counts: Vec<usize>,
}

impl RadixScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch behind [`sort_by_u64_key`] and friends. On the
    /// engine's persistent session workers the thread — and therefore
    /// this scratch — outlives individual runs, giving the same
    /// run-to-run recycling as the session's message piles.
    static THREAD_SCRATCH: RefCell<RadixScratch> = RefCell::new(RadixScratch::new());
}

/// Runs `f` against the calling thread's recycled scratch, falling back
/// to a fresh one if the thread-local is already borrowed (a key closure
/// that itself sorts).
fn with_thread_scratch<R>(f: impl FnOnce(&mut RadixScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut RadixScratch::new()),
    })
}

/// True when a batch of `len` elements should take the stable comparison
/// sort instead of a radix pass (small input, absurd length, or the
/// toggle is off).
#[inline]
fn use_comparison(len: usize) -> bool {
    len < RADIX_MIN_LEN || len > u32::MAX as usize || !radix_enabled()
}

#[cfg(feature = "parallel")]
#[inline]
fn digit(key: u64, shift: u32) -> usize {
    ((key >> shift) & (RADIX_BUCKETS as u64 - 1)) as usize
}

/// Stable sort of `items` by a `u64` key, on the calling thread's
/// recycled scratch. Equal keys keep their input order — the same
/// guarantee as [`slice::sort_by_key`], which is also the below-threshold
/// and toggled-off implementation.
pub fn sort_by_u64_key<T: Clone, F: Fn(&T) -> u64>(items: &mut [T], key: F) {
    with_thread_scratch(|scratch| sort_by_u64_key_with(items, key, scratch));
}

/// As [`sort_by_u64_key`], against a caller-owned [`RadixScratch`].
pub fn sort_by_u64_key_with<T: Clone, F: Fn(&T) -> u64>(
    items: &mut [T],
    key: F,
    scratch: &mut RadixScratch,
) {
    if use_comparison(items.len()) {
        items.sort_by_key(key);
        return;
    }
    radix_sort_impl(items, &key, scratch);
}

/// Stable sort by the lexicographic pair `(major, minor)`, on the calling
/// thread's recycled scratch: two stable radix passes (minor first), or
/// one stable comparison sort below the threshold. Used for composite
/// protocol keys that span more than 64 bits.
pub fn sort_by_u64_key2<T: Clone>(
    items: &mut [T],
    major: impl Fn(&T) -> u64,
    minor: impl Fn(&T) -> u64,
) {
    with_thread_scratch(|scratch| sort_by_u64_key2_with(items, major, minor, scratch));
}

/// As [`sort_by_u64_key2`], against a caller-owned [`RadixScratch`].
pub fn sort_by_u64_key2_with<T: Clone>(
    items: &mut [T],
    major: impl Fn(&T) -> u64,
    minor: impl Fn(&T) -> u64,
    scratch: &mut RadixScratch,
) {
    if use_comparison(items.len()) {
        items.sort_by_key(|a| (major(a), minor(a)));
        return;
    }
    // A stable sort by the minor key followed by a stable sort by the
    // major key is exactly the stable lexicographic (major, minor) sort.
    radix_sort_impl(items, &minor, scratch);
    radix_sort_impl(items, &major, scratch);
}

/// Stable single-pass scatter by a key with a known small range
/// (`key(t) < buckets` for every element): count, exclusive scan, place.
/// This is the delivery-path shape — destinations are perfect small keys
/// — and costs one pass regardless of key magnitude.
///
/// # Panics
///
/// Panics if `key` returns a value `>= buckets`.
pub fn sort_by_bounded_key<T: Clone, F: Fn(&T) -> usize>(items: &mut [T], buckets: usize, key: F) {
    with_thread_scratch(|scratch| sort_by_bounded_key_with(items, buckets, key, scratch));
}

/// As [`sort_by_bounded_key`], against a caller-owned [`RadixScratch`].
pub fn sort_by_bounded_key_with<T: Clone, F: Fn(&T) -> usize>(
    items: &mut [T],
    buckets: usize,
    key: F,
    scratch: &mut RadixScratch,
) {
    if use_comparison(items.len()) {
        items.sort_by_key(key);
        return;
    }
    scatter_impl(items, buckets, &key, scratch);
}

/// Groups a seed-engine outbox batch by destination: ascending `dst`,
/// per-destination send order preserved — byte-identical batch order to
/// the stable `sort_by_key` it replaces. In-range destinations take one
/// bounded scatter pass over `n + 1` buckets; out-of-range destinations
/// (the cold error path — the engine aborts on the first such group) land
/// in the overflow bucket and are comparison-sorted back into ascending
/// order so the downstream validation scan sees the exact legacy order.
pub(crate) fn group_by_destination<M: Clone>(
    batch: &mut [(NodeId, M)],
    n: usize,
    scratch: &mut RadixScratch,
) {
    if use_comparison(batch.len()) {
        batch.sort_by_key(|(dst, _)| *dst);
        return;
    }
    scatter_impl(
        batch,
        n + 1,
        &|(dst, _): &(NodeId, M)| dst.index().min(n),
        scratch,
    );
    let valid = batch.partition_point(|(dst, _)| dst.index() < n);
    batch[valid..].sort_by_key(|(dst, _)| *dst);
}

/// The sequential radix path: build the keyed column, LSD-sort it, apply
/// the resulting permutation to the payloads.
fn radix_sort_impl<T: Clone, F: Fn(&T) -> u64>(
    items: &mut [T],
    key: &F,
    scratch: &mut RadixScratch,
) {
    scratch.keyed.clear();
    scratch
        .keyed
        .extend(items.iter().enumerate().map(|(i, t)| (key(t), i as u32)));
    radix_sort_keyed(&mut scratch.keyed, &mut scratch.spare, &mut scratch.counts);
    apply_permutation(items, &mut scratch.keyed);
}

/// Stable LSD radix sort of the `(key, index)` column. One cheap XOR
/// pass finds the bits that actually vary between keys; bits outside
/// that mask are shared by every key and never sorted on at all — keys
/// bounded below `2^k` cost `ceil(k / MAX_DIGIT_BITS)` count+scatter
/// passes. Each digit is counted, exclusive-scanned and scattered into
/// the spare buffer (ping-pong).
fn radix_sort_keyed(
    keyed: &mut Vec<(u64, u32)>,
    spare: &mut Vec<(u64, u32)>,
    counts: &mut Vec<usize>,
) {
    let len = keyed.len();
    let Some(&(first, _)) = keyed.first() else {
        return;
    };
    let mut diff = 0u64;
    for &(key, _) in keyed.iter() {
        diff |= key ^ first;
    }
    if diff == 0 {
        return; // all keys equal: sorting is the identity
    }
    // Digits are laid over the varying bit-span only (the constant low
    // and high bits sort themselves), sized to minimize the pass count:
    // a 20-bit span is two balanced 10-bit passes, not three 8-bit ones.
    let low = diff.trailing_zeros();
    let span = 64 - diff.leading_zeros() - low;
    let passes = span.div_ceil(MAX_DIGIT_BITS);
    let digit_bits = span.div_ceil(passes);
    let buckets = 1usize << digit_bits;
    let mask = buckets as u64 - 1;
    spare.clear();
    spare.resize(len, (0, PLACED));
    for pass in 0..passes {
        let shift = low + pass * digit_bits;
        if (diff >> shift) & mask == 0 {
            continue; // every key shares this digit: a stable no-op pass
        }
        counts.clear();
        counts.resize(buckets, 0);
        for &(key, _) in keyed.iter() {
            counts[((key >> shift) & mask) as usize] += 1;
        }
        // Exclusive scan in place: counts becomes the running offsets.
        let mut running = 0usize;
        for slot in counts.iter_mut() {
            let count = *slot;
            *slot = running;
            running += count;
        }
        for &pair in keyed.iter() {
            let bucket = ((pair.0 >> shift) & mask) as usize;
            spare[counts[bucket]] = pair;
            counts[bucket] += 1;
        }
        std::mem::swap(keyed, spare);
    }
}

/// Stable single-pass counting scatter: count per bucket, exclusive scan,
/// then write each element's *target* slot into the index column and
/// apply it as a permutation.
fn scatter_impl<T: Clone, F: Fn(&T) -> usize>(
    items: &mut [T],
    buckets: usize,
    key: &F,
    scratch: &mut RadixScratch,
) {
    scratch.counts.clear();
    scratch.counts.resize(buckets, 0);
    for t in items.iter() {
        scratch.counts[key(t)] += 1;
    }
    let mut running = 0usize;
    for slot in scratch.counts.iter_mut() {
        let count = *slot;
        *slot = running;
        running += count;
    }
    // keyed[target].1 = source index, i.e. the same permutation encoding
    // the LSD sort produces.
    scratch.keyed.clear();
    scratch.keyed.resize(items.len(), (0, PLACED));
    for (i, t) in items.iter().enumerate() {
        let slot = &mut scratch.counts[key(t)];
        scratch.keyed[*slot].1 = i as u32;
        *slot += 1;
    }
    apply_permutation(items, &mut scratch.keyed);
}

/// Applies the permutation held in the index column (`keyed[target].1` =
/// source index) to `items` in place.
///
/// Plain-data payloads (`!needs_drop`, where `Clone` is a field copy)
/// take a sequential gather through a transient typed buffer — one
/// random read per element, which at delivery scale is ~3x faster than
/// chasing cycles. Ownership-carrying payloads take the cycle-following
/// swap walk instead: allocation- and clone-free, with each index entry
/// overwritten with [`PLACED`] as its cycle is resolved.
fn apply_permutation<T: Clone>(items: &mut [T], keyed: &mut [(u64, u32)]) {
    debug_assert_eq!(items.len(), keyed.len());
    if !std::mem::needs_drop::<T>() {
        let gathered: Vec<T> = keyed
            .iter()
            .map(|&(_, src)| items[src as usize].clone())
            .collect();
        for (slot, value) in items.iter_mut().zip(gathered) {
            *slot = value;
        }
        return;
    }
    for i in 0..items.len() {
        let mut src = keyed[i].1;
        if src == PLACED {
            continue;
        }
        let mut pos = i;
        loop {
            let source = src as usize;
            keyed[pos].1 = PLACED;
            if source == i {
                break;
            }
            items.swap(pos, source);
            pos = source;
            src = keyed[pos].1;
        }
    }
}

/// One job's result on the parallel path: a chunk of the keyed column
/// plus the histogram(s) computed over it.
#[cfg(feature = "parallel")]
type KeyedJobResult = (Vec<(u64, u32)>, Vec<usize>);

/// The session-pooled radix path: as [`sort_by_u64_key_with`], but large
/// inputs fan the per-pass count/group work out over `workers` chunks on
/// the session's parked worker threads. Falls back to the sequential
/// radix (or comparison) path when the input is too small to split.
/// Output is bit-identical to the sequential path.
#[cfg(feature = "parallel")]
pub(crate) fn sort_by_u64_key_pooled<T: Clone, F: Fn(&T) -> u64>(
    items: &mut [T],
    key: F,
    workers: usize,
    scratch: &mut RadixScratch,
    pool: &mut crate::pool::SessionPool,
) {
    if use_comparison(items.len()) {
        items.sort_by_key(key);
        return;
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        radix_sort_impl(items, &key, scratch);
        return;
    }
    scratch.keyed.clear();
    scratch
        .keyed
        .extend(items.iter().enumerate().map(|(i, t)| (key(t), i as u32)));
    sort_keyed_parallel(&mut scratch.keyed, workers, pool);
    apply_permutation(items, &mut scratch.keyed);
}

/// Fixed chunk boundaries for the whole sort: like the engine's
/// `ChunkSplit`, sizes depend only on `(len, workers)`, which is what
/// makes the parallel reassembly deterministic.
#[cfg(feature = "parallel")]
fn chunk_sizes(len: usize, workers: usize) -> Vec<usize> {
    let base = len / workers;
    let rem = len % workers;
    (0..workers).map(|c| base + usize::from(c < rem)).collect()
}

/// Chunked-parallel LSD sort of the keyed column.
///
/// Phase A: each worker receives ownership of its chunk (pairs travel by
/// value through the job channel — same `forbid(unsafe_code)` discipline
/// as the stepping pools) and histograms all digits at once. The driver
/// merges the chunk histograms to decide which passes are non-trivial.
///
/// Per pass: each worker stably groups its chunk by the current digit and
/// reports the grouped chunk plus its per-bucket counts; the driver
/// reassembles bucket-major in chunk order — an exclusive scan over the
/// `(bucket, chunk)` count matrix — writing directly into the next round
/// of chunks. Stability: within a bucket, chunk order equals original
/// order, and within a chunk the local grouping is stable.
#[cfg(feature = "parallel")]
fn sort_keyed_parallel(
    keyed: &mut Vec<(u64, u32)>,
    workers: usize,
    pool: &mut crate::pool::SessionPool,
) {
    let len = keyed.len();
    let sizes = chunk_sizes(len, workers);
    let mut chunks: Vec<Vec<(u64, u32)>> = Vec::with_capacity(workers);
    let mut start = 0usize;
    for &size in &sizes {
        chunks.push(keyed[start..start + size].to_vec());
        start += size;
    }

    // Phase A: all-pass histograms, one job per chunk.
    let jobs: Vec<Box<dyn FnOnce() -> KeyedJobResult + Send + 'static>> = chunks
        .into_iter()
        .map(|chunk| {
            Box::new(move || {
                let mut hist = vec![0usize; RADIX_PASSES * RADIX_BUCKETS];
                for &(key, _) in &chunk {
                    let mut rest = key;
                    for pass in 0..RADIX_PASSES {
                        hist[pass * RADIX_BUCKETS
                            + (rest & (RADIX_BUCKETS as u64 - 1)) as usize] += 1;
                        rest >>= RADIX_BITS;
                    }
                }
                (chunk, hist)
            }) as Box<dyn FnOnce() -> KeyedJobResult + Send + 'static>
        })
        .collect();
    let mut phase_a = pool.run_jobs(jobs);
    let mut global = vec![0usize; RADIX_PASSES * RADIX_BUCKETS];
    for (_, hist) in &phase_a {
        for (total, count) in global.iter_mut().zip(hist) {
            *total += count;
        }
    }
    let mut chunks: Vec<Vec<(u64, u32)>> = phase_a.drain(..).map(|(chunk, _)| chunk).collect();

    for pass in 0..RADIX_PASSES {
        let hist = &global[pass * RADIX_BUCKETS..(pass + 1) * RADIX_BUCKETS];
        if hist.contains(&len) {
            continue;
        }
        let shift = pass as u32 * RADIX_BITS;

        // Workers: stable local grouping of each chunk by this digit.
        let jobs: Vec<Box<dyn FnOnce() -> KeyedJobResult + Send + 'static>> =
            std::mem::take(&mut chunks)
                .into_iter()
                .map(|chunk| {
                    Box::new(move || {
                        let mut counts = vec![0usize; RADIX_BUCKETS];
                        for &(key, _) in &chunk {
                            counts[digit(key, shift)] += 1;
                        }
                        let mut offsets = [0usize; RADIX_BUCKETS];
                        let mut running = 0usize;
                        for (slot, &count) in offsets.iter_mut().zip(&counts) {
                            *slot = running;
                            running += count;
                        }
                        let mut grouped = vec![(0u64, PLACED); chunk.len()];
                        for &pair in &chunk {
                            let bucket = digit(pair.0, shift);
                            grouped[offsets[bucket]] = pair;
                            offsets[bucket] += 1;
                        }
                        (grouped, counts)
                    }) as Box<dyn FnOnce() -> KeyedJobResult + Send + 'static>
                })
                .collect();
        let grouped = pool.run_jobs(jobs);

        // Driver: deterministic bucket-major reassembly straight into the
        // next round's chunks (chunk boundaries are fixed, so the global
        // scatter and the re-split are one copy).
        let starts: Vec<[usize; RADIX_BUCKETS]> = grouped
            .iter()
            .map(|(_, counts)| {
                let mut offsets = [0usize; RADIX_BUCKETS];
                let mut running = 0usize;
                for (slot, &count) in offsets.iter_mut().zip(counts) {
                    *slot = running;
                    running += count;
                }
                offsets
            })
            .collect();
        let mut next: Vec<Vec<(u64, u32)>> =
            sizes.iter().map(|&size| Vec::with_capacity(size)).collect();
        let mut cur = 0usize;
        for bucket in 0..RADIX_BUCKETS {
            for (chunk_idx, (grouped_chunk, counts)) in grouped.iter().enumerate() {
                let seg_start = starts[chunk_idx][bucket];
                let mut segment = &grouped_chunk[seg_start..seg_start + counts[bucket]];
                while !segment.is_empty() {
                    if next[cur].len() == sizes[cur] {
                        cur += 1;
                        continue;
                    }
                    let take = (sizes[cur] - next[cur].len()).min(segment.len());
                    next[cur].extend_from_slice(&segment[..take]);
                    segment = &segment[take..];
                }
            }
        }
        chunks = next;
    }

    keyed.clear();
    for chunk in &chunks {
        keyed.extend_from_slice(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(keys: &[u64]) -> Vec<(u64, usize)> {
        keys.iter().copied().zip(0..).collect()
    }

    /// Radix output equals the stable comparison oracle, including the
    /// payload order of duplicate keys (payload = original position).
    #[test]
    fn matches_stable_oracle_on_duplicates() {
        let keys: Vec<u64> = (0..200u64).map(|i| (i * 37) % 11).collect();
        let mut got = pairs(&keys);
        let mut expected = got.clone();
        expected.sort_by_key(|&(k, _)| k);
        sort_by_u64_key(&mut got, |&(k, _)| k);
        assert_eq!(got, expected);
    }

    /// The trivial-digit skip must not break full-range keys.
    #[test]
    fn sorts_full_width_keys() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let keys: Vec<u64> = (0..300)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        let mut got = pairs(&keys);
        let mut expected = got.clone();
        expected.sort_by_key(|&(k, _)| k);
        sort_by_u64_key(&mut got, |&(k, _)| k);
        assert_eq!(got, expected);
    }

    #[test]
    fn bounded_scatter_is_stable() {
        let keys: Vec<u64> = (0..150u64).map(|i| (i * 7) % 5).collect();
        let mut got = pairs(&keys);
        let mut expected = got.clone();
        expected.sort_by_key(|&(k, _)| k);
        sort_by_bounded_key(&mut got, 5, |&(k, _)| k as usize);
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut empty: Vec<(u64, usize)> = Vec::new();
        sort_by_u64_key(&mut empty, |&(k, _)| k);
        assert!(empty.is_empty());
        let mut one = vec![(9u64, 0usize)];
        sort_by_u64_key(&mut one, |&(k, _)| k);
        assert_eq!(one, vec![(9, 0)]);
    }

    /// The permutation apply resolves multi-element cycles correctly
    /// (regression guard for the swap-walk logic).
    #[test]
    fn permutation_cycles_resolve() {
        // keyed[target].1 = source: reverse of 5 elements.
        let mut items = vec![10, 11, 12, 13, 14];
        let mut keyed: Vec<(u64, u32)> = vec![(0, 4), (0, 3), (0, 2), (0, 1), (0, 0)];
        apply_permutation(&mut items, &mut keyed);
        assert_eq!(items, vec![14, 13, 12, 11, 10]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pooled_driver_matches_sequential() {
        let mut pool = crate::pool::SessionPool::default();
        let mut scratch = RadixScratch::new();
        let mut state = 7u64;
        let keys: Vec<u64> = (0..1000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 20
            })
            .collect();
        let mut sequential = pairs(&keys);
        let mut expected = sequential.clone();
        expected.sort_by_key(|&(k, _)| k);
        let mut pooled = sequential.clone();
        sort_by_u64_key_with(&mut sequential, |&(k, _)| k, &mut scratch);
        sort_by_u64_key_pooled(&mut pooled, |&(k, _)| k, 3, &mut scratch, &mut pool);
        assert_eq!(sequential, expected);
        assert_eq!(pooled, expected);
    }
}
