//! Persistent clique sessions: one simulator substrate serving many
//! protocol runs.
//!
//! A [`Simulator`](crate::Simulator) is one-shot: every run spawns its
//! stepping workers, allocates every inbox/outbox buffer and the delivery
//! scratch, and throws all of it away with the [`RunReport`]. For a
//! single long run that setup is noise; for a *service* answering
//! millions of constant-round queries (the regime of Lenzen's protocols —
//! 16-round routing, 37-round sorting), it is the dominant cost.
//!
//! A [`CliqueSession`] keeps the expensive parts alive between runs:
//!
//! * **worker threads** are spawned once per session and parked between
//!   runs as well as between rounds (see `pool::SessionPool`) — the jobs
//!   are type-erased, so consecutive runs of *different* protocols reuse
//!   the same threads;
//! * **message buffers** (inboxes/outboxes) are recycled run-to-run in
//!   per-message-type piles, so a steady-state run performs no warm-up
//!   allocations;
//! * the **delivery scratch** and the [`CommonCache`] allocation survive
//!   across runs (the cache's *contents* are reset before every run —
//!   common knowledge is per-protocol-instance).
//!
//! Determinism is the contract: for every protocol and every
//! [`ExecMode`], a reused session produces a [`RunReport`] **bit-identical**
//! to a fresh [`Simulator`](crate::Simulator) — recycling only ever
//! returns *cleared* buffers, the cache starts every run empty, and the
//! chunk partition and stepping semantics are shared with the one-shot
//! engine. A failed run ([`SimError`]) does not poison the session: its
//! buffers are recycled like any other and the next run starts from the
//! same clean state.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::common::CommonCache;
use crate::engine::{
    build_chunks, run_rounds, run_seed, step_inline, ChunkSplit, DeliveryScratch, NodeMachine,
    RunReport,
};
use crate::error::SimError;
use crate::node::NodeId;
use crate::spec::{CliqueSpec, ExecMode};

/// Aggregate counters over every run a session has executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    completed: u64,
    failed: u64,
    comm_rounds: u64,
    messages: u64,
}

impl SessionStats {
    /// Runs that finished with a [`RunReport`].
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Runs that ended in a [`SimError`].
    #[inline]
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Total runs, successful or not (saturating, like every counter
    /// here — a soak run pins at `u64::MAX` instead of wrapping).
    #[inline]
    pub fn runs(&self) -> u64 {
        self.completed.saturating_add(self.failed)
    }

    /// Communication rounds summed over all completed runs.
    #[inline]
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    /// Messages delivered summed over all completed runs.
    #[inline]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    // Saturating on purpose: a long soak run must degrade to a pinned
    // ceiling, never wrap in release or panic in debug.
    fn record<O>(&mut self, result: &Result<RunReport<O>, SimError>) {
        match result {
            Ok(report) => {
                self.completed = self.completed.saturating_add(1);
                self.comm_rounds = self
                    .comm_rounds
                    .saturating_add(report.metrics.comm_rounds());
                self.messages = self
                    .messages
                    .saturating_add(report.metrics.total_messages());
            }
            Err(_) => self.failed = self.failed.saturating_add(1),
        }
    }
}

/// The outcome of [`CliqueSession::run_many`]: per-run results plus the
/// batch's aggregate throughput.
#[derive(Debug)]
pub struct BatchReport<O> {
    /// One result per submitted instance, in submission order. A failed
    /// run does not abort the batch; later instances still execute.
    pub runs: Vec<Result<RunReport<O>, SimError>>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl<O> BatchReport<O> {
    /// Number of runs that completed successfully.
    pub fn completed(&self) -> usize {
        self.runs.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of runs that failed.
    pub fn failed(&self) -> usize {
        self.runs.len() - self.completed()
    }

    /// Communication rounds summed over the completed runs (saturating).
    pub fn total_comm_rounds(&self) -> u64 {
        self.runs
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .fold(0u64, |acc, r| acc.saturating_add(r.metrics.comm_rounds()))
    }

    /// Messages delivered summed over the completed runs (saturating).
    pub fn total_messages(&self) -> u64 {
        self.runs
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .fold(0u64, |acc, r| {
                acc.saturating_add(r.metrics.total_messages())
            })
    }

    /// Completed runs per wall-clock second (0 when nothing completed or
    /// the batch was too fast to time).
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }
}

/// A reusable simulation substrate: worker threads, message-buffer piles,
/// delivery scratch and the common-knowledge cache all survive across
/// protocol runs. See the [module documentation](self) for when to prefer
/// a session over a one-shot [`Simulator`](crate::Simulator).
///
/// ```rust
/// use cc_sim::{CliqueSession, CliqueSpec, Ctx, Inbox, NodeMachine, Step};
///
/// struct Echo;
/// impl NodeMachine for Echo {
///     type Msg = u64;
///     type Output = u64;
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
///         ctx.broadcast(ctx.me().index() as u64);
///     }
///     fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
///         Step::Done(inbox.drain().map(|(_, m)| m).sum())
///     }
/// }
///
/// # fn main() -> Result<(), cc_sim::SimError> {
/// let mut session = CliqueSession::new();
/// let spec = CliqueSpec::new(8)?;
/// for _ in 0..3 {
///     let machines = (0..8).map(|_| Echo).collect();
///     let report = session.run(spec.clone(), machines)?;
///     assert_eq!(report.metrics.comm_rounds(), 1);
/// }
/// assert_eq!(session.stats().completed(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct CliqueSession {
    /// Shared so `'static` session workers can hold it across a round;
    /// contents are reset before every run.
    common: Arc<CommonCache>,
    #[cfg(feature = "parallel")]
    pool: crate::pool::SessionPool,
    /// Cleared, capacity-retaining message buffers, one pile per message
    /// type (different protocols recycle independently).
    piles: HashMap<TypeId, Box<dyn Any + Send>>,
    scratch: DeliveryScratch,
    /// Recycled working memory for the session's public radix-sort
    /// surface ([`CliqueSession::sort_by_u64_key`]) — like the message
    /// piles, it keeps its capacity run-to-run.
    radix: crate::radix::RadixScratch,
    stats: SessionStats,
}

impl std::fmt::Debug for CliqueSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliqueSession")
            .field("stats", &self.stats)
            .field("message_types", &self.piles.len())
            .finish_non_exhaustive()
    }
}

impl CliqueSession {
    /// Creates an empty session. Worker threads are spawned lazily on the
    /// first run whose [`ExecMode`] resolves to more than one worker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate counters over every run so far.
    #[inline]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of live stepping workers (0 until a parallel run spawned
    /// some; the pool never shrinks).
    pub fn worker_threads(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.pool.workers()
        }
        #[cfg(not(feature = "parallel"))]
        {
            0
        }
    }

    /// Runs one protocol instance on the session's recycled substrate.
    ///
    /// Observable behavior — outputs, metrics, and errors — is
    /// bit-identical to `Simulator::new(spec, machines)?.run()` in every
    /// [`ExecMode`]; only setup cost differs. The `'static` bounds exist
    /// because session workers outlive any single run (a one-shot
    /// [`Simulator`](crate::Simulator) has no such requirement).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Simulator::run`](crate::Simulator::run), plus
    /// [`SimError::NodeCountMismatch`] from construction. An error leaves
    /// the session fully reusable.
    pub fn run<N>(
        &mut self,
        spec: CliqueSpec,
        machines: Vec<N>,
    ) -> Result<RunReport<N::Output>, SimError>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
    {
        if machines.len() != spec.n() {
            let result = Err(SimError::NodeCountMismatch {
                expected: spec.n(),
                actual: machines.len(),
            });
            self.stats.record(&result);
            return result;
        }
        // Every run starts from an empty cache: common knowledge is
        // per-instance, and a stale entry would either leak another
        // run's value or trip the divergence assertion.
        self.common.reset();
        let result = self.run_prepared(&spec, machines);
        self.stats.record(&result);
        result
    }

    /// As [`CliqueSession::run`], building machines with a closure of the
    /// node id — the session-flavored [`run_protocol`](crate::run_protocol).
    ///
    /// # Errors
    ///
    /// See [`CliqueSession::run`].
    pub fn run_protocol<N, F>(
        &mut self,
        spec: CliqueSpec,
        make: F,
    ) -> Result<RunReport<N::Output>, SimError>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
        F: FnMut(NodeId) -> N,
    {
        let machines = (0..spec.n()).map(NodeId::new).map(make).collect();
        self.run(spec, machines)
    }

    /// Executes a batch of instances back-to-back on the same substrate,
    /// returning per-run reports plus aggregate throughput. A failed run
    /// does not abort the batch (its error is recorded in place and the
    /// session stays clean for the next instance).
    pub fn run_many<N, I>(&mut self, instances: I) -> BatchReport<N::Output>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
        I: IntoIterator<Item = (CliqueSpec, Vec<N>)>,
    {
        let started = Instant::now();
        let runs = instances
            .into_iter()
            .map(|(spec, machines)| self.run(spec, machines))
            .collect();
        BatchReport {
            runs,
            elapsed: started.elapsed(),
        }
    }

    /// The mode dispatch of [`Simulator::run`](crate::Simulator::run),
    /// against session-owned arenas instead of fresh ones.
    fn run_prepared<N>(
        &mut self,
        spec: &CliqueSpec,
        machines: Vec<N>,
    ) -> Result<RunReport<N::Output>, SimError>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
    {
        let mode = spec.exec();
        if mode == ExecMode::SeedReference {
            // The seed engine allocates everything fresh by design (it is
            // the benchmark baseline); the session only lends its cache.
            return run_seed(spec, machines, &self.common);
        }
        let n = spec.n();
        let threads = mode.worker_threads(n);
        let split = ChunkSplit::new(n, threads);
        let mut pile = self.take_pile::<N::Msg>();
        let mut chunks = build_chunks(machines, &split, &mut pile);
        self.scratch.reset(n);

        let result = self.step_chunks(spec, &mut chunks, split, mode);

        // Success or failure, every buffer goes back to the pile cleared.
        for chunk in &mut chunks {
            chunk.recycle_into(&mut pile);
        }
        self.piles.insert(TypeId::of::<N::Msg>(), Box::new(pile));
        result
    }

    /// Runs the round loop with the stepping strategy `mode` resolved to.
    fn step_chunks<N>(
        &mut self,
        spec: &CliqueSpec,
        chunks: &mut [crate::engine::NodeChunk<N>],
        split: ChunkSplit,
        mode: ExecMode,
    ) -> Result<RunReport<N::Output>, SimError>
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
    {
        let n = spec.n();
        let common = Arc::clone(&self.common);
        #[cfg(feature = "parallel")]
        if chunks.len() > 1 {
            if matches!(mode, ExecMode::SpawnParallel { .. }) {
                return run_rounds(
                    spec,
                    &common,
                    chunks,
                    split,
                    &mut self.scratch,
                    crate::engine::step_spawning_per_round(n),
                );
            }
            let pool = &mut self.pool;
            pool.ensure_workers(chunks.len());
            return run_rounds(
                spec,
                &common,
                chunks,
                split,
                &mut self.scratch,
                |round, chunks, _| pool.step_round(round, n, &common, chunks),
            );
        }
        let _ = mode; // single chunk (or no `parallel` feature): inline
        run_rounds(
            spec,
            &common,
            chunks,
            split,
            &mut self.scratch,
            step_inline(n),
        )
    }

    /// Stable sort of `items` by a `u64` key on the session's recycled
    /// radix scratch (see [`crate::radix`]): count → exclusive scan →
    /// scatter above the radix threshold, the stable comparison sort
    /// below it — both preserve equal-key input order, so results are
    /// identical either way.
    ///
    /// Large inputs additionally fan the per-pass counting and grouping
    /// out over the session's parked worker threads (one chunk per
    /// worker, merged deterministically — bit-identical to the
    /// sequential path); small inputs run inline. Use
    /// [`CliqueSession::sort_by_u64_key_on`] to pin the worker count.
    pub fn sort_by_u64_key<T: Clone, F>(&mut self, items: &mut [T], key: F)
    where
        F: Fn(&T) -> u64,
    {
        #[cfg(feature = "parallel")]
        {
            let workers = Self::auto_sort_workers(items.len());
            crate::radix::sort_by_u64_key_pooled(
                items,
                key,
                workers,
                &mut self.radix,
                &mut self.pool,
            );
        }
        #[cfg(not(feature = "parallel"))]
        crate::radix::sort_by_u64_key_with(items, key, &mut self.radix);
    }

    /// As [`CliqueSession::sort_by_u64_key`], forcing the chunked
    /// parallel driver to use exactly `workers` chunks (growing the
    /// session pool if needed) instead of sizing from the host core
    /// count — the sort-path analogue of `ExecMode::Parallel { threads }`.
    /// Inputs below the radix threshold still sort inline.
    #[cfg(feature = "parallel")]
    pub fn sort_by_u64_key_on<T: Clone, F>(&mut self, workers: usize, items: &mut [T], key: F)
    where
        F: Fn(&T) -> u64,
    {
        crate::radix::sort_by_u64_key_pooled(
            items,
            key,
            workers.max(1),
            &mut self.radix,
            &mut self.pool,
        );
    }

    /// One chunk per core, but never chunks smaller than the hand-off
    /// cost can amortize.
    #[cfg(feature = "parallel")]
    fn auto_sort_workers(len: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        cores
            .min(len / crate::radix::PARALLEL_SORT_MIN_CHUNK)
            .max(1)
    }

    /// Takes the recycled-buffer pile for message type `M` out of the
    /// session (an empty pile on the first run of a type). The pile is
    /// keyed — and its `Box<dyn Any>` downcast guaranteed — by `M`'s
    /// `TypeId`.
    fn take_pile<M: Send + 'static>(&mut self) -> Vec<Vec<(NodeId, M)>> {
        self.piles
            .remove(&TypeId::of::<M>())
            .map(|pile| {
                *pile
                    .downcast::<Vec<Vec<(NodeId, M)>>>()
                    .expect("pile is keyed by its message TypeId")
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Simulator, Step};
    use crate::inbox::Inbox;

    /// All-to-all broadcast for `rounds` rounds; output is the running sum.
    struct Chatter {
        rounds: u32,
        done: u32,
        acc: u64,
    }

    impl Chatter {
        fn fleet(n: usize, rounds: u32) -> Vec<Chatter> {
            (0..n)
                .map(|_| Chatter {
                    rounds,
                    done: 0,
                    acc: 0,
                })
                .collect()
        }
    }

    impl NodeMachine for Chatter {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(ctx.me().index() as u64);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
            self.acc += inbox.drain().map(|(_, m)| m).sum::<u64>();
            self.done += 1;
            if self.done >= self.rounds {
                return Step::Done(self.acc);
            }
            ctx.broadcast(self.acc % 97);
            Step::Continue
        }
    }

    /// Node 1 sends to node 0 after node 0 has finished: a guaranteed
    /// `MessageToFinishedNode`.
    struct Late {
        me: usize,
    }

    impl NodeMachine for Late {
        type Msg = u64;
        type Output = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.me == 1 {
                ctx.send(NodeId::new(0), 7);
            }
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
            let _ = inbox.drain().count();
            if self.me == 0 || ctx.round() == 2 {
                return Step::Done(());
            }
            ctx.send(NodeId::new(0), 9);
            Step::Continue
        }
    }

    fn spec(n: usize, mode: ExecMode) -> CliqueSpec {
        CliqueSpec::new(n).unwrap().with_exec(mode)
    }

    #[test]
    fn reused_session_matches_fresh_simulator() {
        let n = 12;
        let mut session = CliqueSession::new();
        for round_count in [1u32, 3, 2] {
            let fresh = Simulator::new(
                spec(n, ExecMode::Sequential),
                Chatter::fleet(n, round_count),
            )
            .unwrap()
            .run()
            .unwrap();
            let reused = session
                .run(
                    spec(n, ExecMode::Sequential),
                    Chatter::fleet(n, round_count),
                )
                .unwrap();
            assert_eq!(fresh, reused);
        }
        assert_eq!(session.stats().completed(), 3);
        assert_eq!(session.stats().failed(), 0);
    }

    #[test]
    fn failed_run_does_not_poison_the_session() {
        let n = 8;
        let mut session = CliqueSession::new();
        let ok_before = session
            .run(spec(n, ExecMode::Sequential), Chatter::fleet(n, 2))
            .unwrap();
        let err = session
            .run(
                spec(2, ExecMode::Sequential),
                vec![Late { me: 0 }, Late { me: 1 }],
            )
            .unwrap_err();
        assert!(matches!(err, SimError::MessageToFinishedNode { .. }));
        let ok_after = session
            .run(spec(n, ExecMode::Sequential), Chatter::fleet(n, 2))
            .unwrap();
        assert_eq!(ok_before, ok_after);
        assert_eq!(session.stats().runs(), 3);
        assert_eq!(session.stats().failed(), 1);
    }

    /// Soak-run protection: counters already at the ceiling must stay
    /// pinned there on further records — a plain `+=` would wrap in
    /// release builds and panic in debug.
    #[test]
    fn session_stats_saturate_instead_of_overflowing() {
        let mut stats = SessionStats {
            completed: u64::MAX,
            failed: u64::MAX,
            comm_rounds: u64::MAX,
            messages: u64::MAX,
        };
        assert_eq!(stats.runs(), u64::MAX);
        let ok: Result<RunReport<()>, SimError> = Ok(RunReport {
            outputs: Vec::new(),
            metrics: crate::metrics::Metrics::new(false, 0),
        });
        stats.record(&ok);
        let err: Result<RunReport<()>, SimError> = Err(SimError::InvalidSpec {
            reason: "soak".into(),
        });
        stats.record(&err);
        assert_eq!(stats.completed(), u64::MAX);
        assert_eq!(stats.failed(), u64::MAX);
        assert_eq!(stats.comm_rounds(), u64::MAX);
        assert_eq!(stats.messages(), u64::MAX);
        assert_eq!(stats.runs(), u64::MAX);
    }

    #[test]
    fn mixed_message_types_share_one_session() {
        let n = 6;
        let mut session = CliqueSession::new();
        let words = session
            .run(spec(n, ExecMode::Sequential), Chatter::fleet(n, 1))
            .unwrap();
        // A second protocol with a different message type: unit pulses.
        struct Pulse;
        impl NodeMachine for Pulse {
            type Msg = ();
            type Output = usize;
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.broadcast(());
            }
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, inbox: &mut Inbox<()>) -> Step<usize> {
                Step::Done(inbox.drain().count())
            }
        }
        let pulses = session
            .run(
                spec(n, ExecMode::Sequential),
                (0..n).map(|_| Pulse).collect(),
            )
            .unwrap();
        assert_eq!(pulses.outputs, vec![n; n]);
        let words_again = session
            .run(spec(n, ExecMode::Sequential), Chatter::fleet(n, 1))
            .unwrap();
        assert_eq!(words, words_again);
    }

    #[test]
    fn run_many_reports_batch_throughput() {
        let n = 5;
        let mut session = CliqueSession::new();
        let batch: Vec<(CliqueSpec, Vec<Chatter>)> = (0..4)
            .map(|i| (spec(n, ExecMode::Sequential), Chatter::fleet(n, 1 + i % 2)))
            .collect();
        let report = session.run_many(batch);
        assert_eq!(report.completed(), 4);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.total_comm_rounds(), 1 + 2 + 1 + 2);
        assert!(report.total_messages() > 0);
        assert_eq!(session.stats().completed(), 4);
    }

    #[test]
    fn run_many_continues_past_a_failure() {
        let mut session = CliqueSession::new();
        let batch = vec![
            (
                spec(2, ExecMode::Sequential),
                vec![Late { me: 0 }, Late { me: 1 }],
            ),
            // Wrong machine count: construction-time error, also mid-batch.
            (spec(3, ExecMode::Sequential), vec![Late { me: 0 }]),
        ];
        let report = session.run_many(batch);
        assert_eq!(report.failed(), 2);
        assert!(matches!(
            report.runs[1],
            Err(SimError::NodeCountMismatch { .. })
        ));
        // The session still works.
        let ok = session
            .run(spec(4, ExecMode::Sequential), Chatter::fleet(4, 1))
            .unwrap();
        assert_eq!(ok.outputs.len(), 4);
    }

    /// The server layer above (`cc-server`) moves whole sessions into
    /// shard worker threads; this compile-time assertion is the contract
    /// that lets it. `Sync` is *not* claimed — a session is a `&mut self`
    /// substrate, shared across threads by ownership transfer only.
    #[test]
    fn session_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CliqueSession>();
        assert_send::<SessionStats>();
        assert_send::<BatchReport<u64>>();
        assert_send::<RunReport<Vec<u64>>>();
    }

    /// `runs_per_sec` must stay finite for batches too fast to time —
    /// quick-mode runs of tiny cliques can complete within one clock tick,
    /// and a `completed / 0.0` division would report `inf` (or `NaN` for
    /// an empty batch). Pinned: zero elapsed reports zero throughput.
    #[test]
    fn runs_per_sec_is_finite_for_zero_duration_batches() {
        let empty: BatchReport<u64> = BatchReport {
            runs: Vec::new(),
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.runs_per_sec(), 0.0);

        let instant: BatchReport<u64> = BatchReport {
            runs: vec![Ok(RunReport {
                outputs: vec![7],
                metrics: crate::Metrics::default(),
            })],
            elapsed: Duration::ZERO,
        };
        assert_eq!(instant.completed(), 1);
        assert_eq!(instant.runs_per_sec(), 0.0);
        assert!(instant.runs_per_sec().is_finite());

        // A timed batch still reports real throughput.
        let timed: BatchReport<u64> = BatchReport {
            runs: vec![Ok(RunReport {
                outputs: vec![7],
                metrics: crate::Metrics::default(),
            })],
            elapsed: Duration::from_millis(500),
        };
        assert_eq!(timed.runs_per_sec(), 2.0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_session_reuses_workers_across_runs() {
        let n = 16;
        let mut session = CliqueSession::new();
        let mode = ExecMode::Parallel { threads: 3 };
        let first = session.run(spec(n, mode), Chatter::fleet(n, 2)).unwrap();
        assert_eq!(session.worker_threads(), 3);
        let fresh = Simulator::new(spec(n, mode), Chatter::fleet(n, 2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(first, fresh);
        // A wider run grows the pool; a narrower one reuses a subset.
        let _ = session
            .run(
                spec(n, ExecMode::Parallel { threads: 5 }),
                Chatter::fleet(n, 1),
            )
            .unwrap();
        assert_eq!(session.worker_threads(), 5);
        let _ = session
            .run(
                spec(n, ExecMode::Parallel { threads: 2 }),
                Chatter::fleet(n, 1),
            )
            .unwrap();
        assert_eq!(session.worker_threads(), 5);
    }
}
