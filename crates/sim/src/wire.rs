//! Bit-exact message encoding.
//!
//! The congested-clique model is stated in *bits*, so the honest way to
//! account for a message's size is to actually encode it. Protocol crates
//! declare [`Payload::size_bits`](crate::Payload::size_bits) analytically
//! (fields × widths); tests use this module to encode representative
//! messages and assert that the declared sizes are true upper bounds.
//!
//! The format is a plain MSB-first bit stream of fixed-width unsigned
//! fields; the reader must know the schema (as real routers would — the
//! paper's messages are self-describing only through protocol phase).
//!
//! ```rust
//! use cc_sim::wire::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(5, 3);
//! w.write_bits(1023, 10);
//! let buf = w.finish();
//! let mut r = BitReader::new(&buf);
//! assert_eq!(r.read_bits(3), Some(5));
//! assert_eq!(r.read_bits(10), Some(1023));
//! ```

/// Serializes fixed-width unsigned fields into a bit stream.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_len: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    ///
    /// Writes in byte-sized chunks rather than bit-by-bit: the field is
    /// split into (at most) a head that completes the current partial
    /// byte, a run of whole bytes pushed directly, and a tail that opens a
    /// new partial byte — so a 64-bit field costs ~9 shifts instead of 64
    /// read-modify-write loop iterations.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        // Invariant: buf.len() == ceil(bit_len / 8); the last byte (when
        // bit_len % 8 != 0) has its unused low bits zero.
        let mut rem = width;
        let used = (self.bit_len % 8) as u32;
        if used != 0 {
            // Head: fill the free low bits of the current partial byte
            // with the top `take` bits of the field.
            let free = 8 - used;
            let take = free.min(rem);
            let bits = (value >> (rem - take)) & low_mask(take);
            *self.buf.last_mut().expect("partial byte exists") |= (bits as u8) << (free - take);
            self.bit_len += u64::from(take);
            rem -= take;
        }
        while rem >= 8 {
            // Body: whole bytes, MSB-first.
            rem -= 8;
            self.buf.push(((value >> rem) & 0xFF) as u8);
            self.bit_len += 8;
        }
        if rem > 0 {
            // Tail: open a new partial byte with the low bits left-packed.
            let bits = value & low_mask(rem);
            self.buf.push((bits as u8) << (8 - rem));
            self.bit_len += u64::from(rem);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Finishes the stream, returning the backing bytes (last byte
    /// zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// The low `bits` bits set (`bits ≤ 64`).
#[inline]
fn low_mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Deserializes fixed-width unsigned fields from a bit stream.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads `width` bits MSB-first, or `None` if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds 64");
        if self.pos + u64::from(width) > (self.buf.len() as u64) * 8 {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..width {
            let byte_idx = (self.pos / 8) as usize;
            let off = 7 - (self.pos % 8) as u32;
            let bit = u64::from((self.buf[byte_idx] >> off) & 1);
            value = (value << 1) | bit;
            self.pos += 1;
        }
        Some(value)
    }

    /// Current read position in bits.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_mixed_widths() {
        let fields: Vec<(u64, u32)> = vec![
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (256, 9),
            (0xdead_beef, 32),
            (u64::MAX, 64),
            (1, 17),
        ];
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.write_bits(v, width);
        }
        let expected_bits: u64 = fields.iter().map(|&(_, w)| u64::from(w)).sum();
        assert_eq!(w.bit_len(), expected_bits);
        let buf = w.finish();
        assert_eq!(buf.len() as u64, expected_bits.div_ceil(8));
        let mut r = BitReader::new(&buf);
        for &(v, width) in &fields {
            assert_eq!(r.read_bits(width), Some(v));
        }
        // 135 bits were written, so one zero padding bit remains in the
        // final byte; reading past the buffer fails.
        assert_eq!(r.read_bits(1), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(2), Some(3));
        // The padding bits exist in the byte but reading past the written
        // length within the final byte is permitted (padding is zeros);
        // reading past the buffer is not.
        assert_eq!(r.read_bits(6), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    /// The per-bit reference implementation the chunked
    /// [`BitWriter::write_bits`] replaced, kept verbatim as the oracle for
    /// the equivalence tests below: any byte-level divergence would change
    /// the wire format.
    #[derive(Default)]
    struct PerBitWriter {
        buf: Vec<u8>,
        bit_len: u64,
    }

    impl PerBitWriter {
        fn write_bits(&mut self, value: u64, width: u32) {
            assert!(width <= 64);
            assert!(width == 64 || value < (1u64 << width));
            for i in (0..width).rev() {
                let bit = (value >> i) & 1;
                let byte_idx = (self.bit_len / 8) as usize;
                if byte_idx == self.buf.len() {
                    self.buf.push(0);
                }
                let off = 7 - (self.bit_len % 8) as u32;
                if bit == 1 {
                    self.buf[byte_idx] |= 1 << off;
                }
                self.bit_len += 1;
            }
        }
    }

    /// Deterministic xorshift so the equivalence tests need no external
    /// PRNG crate.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn chunked_writer_matches_per_bit_reference_on_random_fields() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for seq in 0..64 {
            let mut fast = BitWriter::new();
            let mut slow = PerBitWriter::default();
            let fields = 1 + (seq % 17);
            for _ in 0..fields {
                let width = (xorshift(&mut state) % 65) as u32;
                let value = if width == 0 {
                    0
                } else if width == 64 {
                    xorshift(&mut state)
                } else {
                    xorshift(&mut state) & ((1u64 << width) - 1)
                };
                fast.write_bits(value, width);
                slow.write_bits(value, width);
                assert_eq!(fast.bit_len(), slow.bit_len);
            }
            assert_eq!(fast.finish(), slow.buf, "sequence {seq} diverged");
        }
    }

    #[test]
    fn chunked_writer_matches_per_bit_reference_at_alignment_edges() {
        // Every (offset, width) pair around byte boundaries, with
        // all-ones values to exercise the masking.
        for offset in 0..16u32 {
            for width in 0..=64u32 {
                let mut fast = BitWriter::new();
                let mut slow = PerBitWriter::default();
                if offset > 0 {
                    fast.write_bits(low_mask(offset), offset);
                    slow.write_bits(low_mask(offset), offset);
                }
                fast.write_bits(low_mask(width), width);
                slow.write_bits(low_mask(width), width);
                assert_eq!(fast.bit_len(), slow.bit_len);
                assert_eq!(fast.finish(), slow.buf, "offset {offset} width {width}");
            }
        }
    }

    #[test]
    fn zero_width_field_is_a_no_op() {
        let mut w = BitWriter::new();
        w.write_bits(5, 3);
        w.write_bits(0, 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 4);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(5));
        assert_eq!(r.read_bits(1), Some(1));
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let buf = w.finish();
        assert!(buf.is_empty());
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(1), None);
    }
}
