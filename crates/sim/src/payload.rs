use crate::util::word_bits;

/// A message payload with an explicit bit-size accounting.
///
/// The congested-clique model (§2 of the paper) limits each message to
/// `O(log n)` bits — "a constant number of integer numbers that are
/// polynomially bounded in n". Every payload type declares the number of
/// bits its encoding occupies on the wire; the [`Simulator`](crate::Simulator)
/// sums these per directed edge per round and enforces the configured
/// budget.
///
/// Implementations must return an upper bound on the size of an actual
/// encoding of the value (the [`wire`](crate::wire) module is used in tests
/// to validate this). Sizes may depend on `n` because node identifiers and
/// counts occupy `Θ(log n)` bits.
///
/// Payloads are `Send`: messages move between stepping workers when the
/// engine runs nodes on multiple threads (see
/// [`ExecMode`](crate::ExecMode)).
pub trait Payload: Clone + std::fmt::Debug + Send {
    /// Number of bits this message occupies on an edge of an `n`-clique.
    fn size_bits(&self, n: usize) -> u64;
}

/// Unit payload: a pure synchronization pulse of one bit.
impl Payload for () {
    fn size_bits(&self, _n: usize) -> u64 {
        1
    }
}

/// A bare machine word (`⌈log₂ n⌉` bits).
impl Payload for u64 {
    fn size_bits(&self, n: usize) -> u64 {
        word_bits(n)
    }
}

/// A pair of machine words.
impl Payload for (u64, u64) {
    fn size_bits(&self, n: usize) -> u64 {
        2 * word_bits(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_one_bit() {
        assert_eq!(().size_bits(1024), 1);
    }

    #[test]
    fn word_sizes_scale_with_n() {
        assert_eq!(7u64.size_bits(1024), 10);
        assert_eq!((7u64, 9u64).size_bits(1024), 20);
        assert_eq!(7u64.size_bits(16), 4);
    }
}
