use crate::common::CommonCache;
use crate::error::SimError;
use crate::inbox::Inbox;
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::NodeId;
use crate::payload::Payload;
use crate::spec::{CliqueSpec, ExecMode};
use crate::work::WorkMeter;

/// The result of a node's round handler.
#[derive(Debug)]
pub enum Step<O> {
    /// The node continues into the next round.
    Continue,
    /// The node has produced its output and leaves the protocol. It must
    /// not be sent any further messages.
    Done(O),
}

/// The message-type-independent part of a node's per-round context:
/// identity, round number, common-knowledge cache and work accounting.
///
/// Sub-protocol drivers (the communication primitives of `cc-primitives`)
/// take a `&mut BaseCtx` so they can be composed under any parent message
/// type.
pub struct BaseCtx<'a> {
    me: NodeId,
    n: usize,
    round: u64,
    common: &'a CommonCache,
    work: &'a mut WorkMeter,
}

impl<'a> BaseCtx<'a> {
    /// This node's identity.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the clique.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round number (0 during [`NodeMachine::on_start`], then
    /// 1, 2, … for successive communication rounds).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Iterates over all node ids of the clique, including `me`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId::new)
    }

    /// The shared common-knowledge computation cache (see
    /// [`CommonCache`]).
    #[inline]
    pub fn common(&self) -> &CommonCache {
        self.common
    }

    /// Charges analytical local-computation steps to this node (see
    /// [`WorkMeter`]).
    #[inline]
    pub fn charge_work(&mut self, steps: u64) {
        self.work.charge(steps);
    }

    /// Notes this node's current live memory in machine words (high-water
    /// mark is kept).
    #[inline]
    pub fn note_mem(&mut self, words: u64) {
        self.work.note_mem(words);
    }

    /// Reborrows this context with the same identity (for handing to a
    /// sub-protocol while retaining the original).
    pub fn reborrow(&mut self) -> BaseCtx<'_> {
        BaseCtx {
            me: self.me,
            n: self.n,
            round: self.round,
            common: self.common,
            work: self.work,
        }
    }

    /// Reborrows this context with a different identity and clique size,
    /// for running a protocol instance embedded in a sub-clique (e.g. the
    /// `⌊√n⌋²`-node instances of Theorem 3.7's general-`n` decomposition).
    ///
    /// The common-knowledge cache and work meter are shared with the
    /// parent context; only `me`/`n` are overridden. The caller translates
    /// message addresses between the virtual and global id spaces.
    pub fn virtualized(&mut self, me: NodeId, n: usize) -> BaseCtx<'_> {
        BaseCtx {
            me,
            n,
            round: self.round,
            common: self.common,
            work: self.work,
        }
    }
}

/// Per-node view of the clique during one round, through which a node
/// observes its identity, the round number, and sends messages.
///
/// A `Ctx` is handed to [`NodeMachine::on_start`] and
/// [`NodeMachine::on_round`]; messages sent through it are delivered at the
/// *next* synchronous round.
pub struct Ctx<'a, M> {
    base: BaseCtx<'a>,
    outbox: &'a mut Vec<(NodeId, M)>,
}

impl<'a, M> Ctx<'a, M> {
    /// This node's identity.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.base.me
    }

    /// Number of nodes in the clique.
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n
    }

    /// The current round number (0 during [`NodeMachine::on_start`], then
    /// 1, 2, … for successive communication rounds).
    #[inline]
    pub fn round(&self) -> u64 {
        self.base.round
    }

    /// Iterates over all node ids of the clique, including `me`.
    ///
    /// Following the paper's convention (§2), nodes may send messages to
    /// themselves like to any other node; self-messages traverse a
    /// zero-cost loopback but are still counted and budget-checked like
    /// edge messages for uniformity.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        self.base.nodes()
    }

    /// Queues `msg` for delivery to `dst` in the next round.
    #[inline]
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.outbox.push((dst, msg));
    }

    /// Queues the same message for every node (including `me`).
    ///
    /// Performs `n - 1` clones: the original value travels to the last
    /// node instead of being cloned a redundant `n`-th time, and the
    /// outbox is grown once up front.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let n = self.base.n;
        if n == 0 {
            return;
        }
        self.outbox.reserve(n);
        for v in 0..n - 1 {
            self.outbox.push((NodeId::new(v), msg.clone()));
        }
        self.outbox.push((NodeId::new(n - 1), msg));
    }

    /// The shared common-knowledge computation cache (see
    /// [`CommonCache`]).
    #[inline]
    pub fn common(&self) -> &CommonCache {
        self.base.common
    }

    /// Charges analytical local-computation steps to this node (see
    /// [`WorkMeter`]).
    #[inline]
    pub fn charge_work(&mut self, steps: u64) {
        self.base.charge_work(steps);
    }

    /// Notes this node's current live memory in machine words (high-water
    /// mark is kept).
    #[inline]
    pub fn note_mem(&mut self, words: u64) {
        self.base.note_mem(words);
    }

    /// Borrows the message-type-independent context, for driving
    /// sub-protocol primitives.
    #[inline]
    pub fn base(&mut self) -> &mut BaseCtx<'a> {
        &mut self.base
    }

    /// Splits into the base context and the raw outbox, for drivers that
    /// need to emit parent-wrapped messages while borrowing the base.
    #[inline]
    pub fn split(&mut self) -> (&mut BaseCtx<'a>, &mut Vec<(NodeId, M)>) {
        (&mut self.base, self.outbox)
    }

    /// Assembles a context from a reborrowed base and an external outbox —
    /// how a parent machine drives an embedded [`NodeMachine`] whose
    /// message type it wraps (e.g. Algorithm 4 running the Theorem 3.7
    /// router as its Step 6).
    pub fn from_parts(base: BaseCtx<'a>, outbox: &'a mut Vec<(NodeId, M)>) -> Self {
        Ctx { base, outbox }
    }
}

/// A per-node protocol state machine.
///
/// One machine instance exists per node. The engine calls
/// [`on_start`](NodeMachine::on_start) once before the first round, then
/// [`on_round`](NodeMachine::on_round) once per synchronous round with the
/// messages received in that round, until every machine returns
/// [`Step::Done`].
///
/// Machines, their messages and their outputs are `Send`: the engine's
/// contract is that every node is an *independent* state machine touching
/// only its own state, so a round may step disjoint subsets of nodes on
/// different workers (see [`ExecMode`]). Shared deterministic computations
/// go through the [`CommonCache`], which is synchronized.
pub trait NodeMachine: Send {
    /// Message type exchanged by this protocol.
    type Msg: Payload;
    /// Per-node output produced on completion.
    type Output: Send;

    /// Called once before the first round; typically queues the round-1
    /// sends. The default does nothing.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called once per round with this round's inbox. Messages queued on
    /// `ctx` are delivered next round.
    fn on_round(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg>,
        inbox: &mut Inbox<Self::Msg>,
    ) -> Step<Self::Output>;
}

/// The outcome of a completed run.
///
/// Compares by value (given `O: PartialEq`), so runs under different
/// [`ExecMode`]s can be asserted bit-identical.
#[derive(Debug, PartialEq)]
pub struct RunReport<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Communication and computation measurements.
    pub metrics: Metrics,
}

pub(crate) enum Slot<O> {
    Running,
    Finished(O),
}

/// One worker's share of the engine state: a contiguous range of nodes
/// (`base..base + len`) together with everything a round of `on_round`
/// calls touches — machines, completion slots, message buffers and work
/// meters.
///
/// Chunks are the unit of hand-off to the stepping workers: the driving
/// thread owns every chunk during delivery and sends ownership to the
/// worker pool for the stepping half of a round (see
/// [`WorkerPool`](crate::pool::WorkerPool)). A chunk is a handful of `Vec`
/// headers, so moving one through a channel costs a small memcpy — no
/// per-node cloning and no allocation.
pub(crate) struct NodeChunk<N: NodeMachine> {
    /// Global node id of the first node in this chunk.
    pub(crate) base: usize,
    pub(crate) machines: Vec<N>,
    pub(crate) slots: Vec<Slot<N::Output>>,
    pub(crate) inboxes: Vec<Vec<(NodeId, N::Msg)>>,
    pub(crate) outboxes: Vec<Vec<(NodeId, N::Msg)>>,
    pub(crate) work: Vec<WorkMeter>,
}

impl<N: NodeMachine> NodeChunk<N> {
    /// Builds a chunk, drawing inbox/outbox buffers from `pile` — a stash
    /// of cleared, capacity-retaining vectors recycled from earlier runs
    /// (see [`CliqueSession`](crate::CliqueSession)). One-shot runs pass
    /// an empty pile and allocate lazily as rounds fill the buffers.
    pub(crate) fn new(
        base: usize,
        machines: Vec<N>,
        pile: &mut Vec<Vec<(NodeId, N::Msg)>>,
    ) -> Self {
        let len = machines.len();
        NodeChunk {
            base,
            machines,
            slots: (0..len).map(|_| Slot::Running).collect(),
            inboxes: (0..len).map(|_| pile.pop().unwrap_or_default()).collect(),
            outboxes: (0..len).map(|_| pile.pop().unwrap_or_default()).collect(),
            work: vec![WorkMeter::new(); len],
        }
    }

    /// Returns every message buffer (cleared, capacity intact) to `pile`
    /// so the next run on the same session skips the warm-up allocations.
    /// Works on failed runs too: buffers may still hold undelivered
    /// messages, which are dropped here.
    pub(crate) fn recycle_into(&mut self, pile: &mut Vec<Vec<(NodeId, N::Msg)>>) {
        for mut buf in self.inboxes.drain(..).chain(self.outboxes.drain(..)) {
            buf.clear();
            pile.push(buf);
        }
    }

    /// An empty chunk left behind while the real one is out on a worker.
    /// Allocation-free: empty `Vec`s don't allocate.
    #[cfg(feature = "parallel")]
    pub(crate) fn placeholder() -> Self {
        NodeChunk {
            base: 0,
            machines: Vec::new(),
            slots: Vec::new(),
            inboxes: Vec::new(),
            outboxes: Vec::new(),
            work: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.machines.len()
    }

    /// Runs the round-0 `on_start` hooks for every node in the chunk.
    fn start(&mut self, n: usize, common: &CommonCache) {
        for k in 0..self.machines.len() {
            let mut ctx = Ctx {
                base: BaseCtx {
                    me: NodeId::new(self.base + k),
                    n,
                    round: 0,
                    common,
                    work: &mut self.work[k],
                },
                outbox: &mut self.outboxes[k],
            };
            self.machines[k].on_start(&mut ctx);
        }
    }

    /// Steps every running node in the chunk for one round. Each node
    /// touches only its own machine, slot, buffers and work meter, so
    /// disjoint chunks are safe to run on separate workers; the shared
    /// [`CommonCache`] is internally synchronized. Returns the number of
    /// nodes that finished this round.
    pub(crate) fn step(&mut self, round: u64, n: usize, common: &CommonCache) -> usize {
        let mut completions = 0usize;
        for k in 0..self.machines.len() {
            if matches!(self.slots[k], Slot::Finished(_)) {
                debug_assert!(self.inboxes[k].is_empty());
                continue;
            }
            // Inboxes were filled in ascending src order already.
            let mut inbox = Inbox::from_sorted(std::mem::take(&mut self.inboxes[k]));
            let mut ctx = Ctx {
                base: BaseCtx {
                    me: NodeId::new(self.base + k),
                    n,
                    round,
                    common,
                    work: &mut self.work[k],
                },
                outbox: &mut self.outboxes[k],
            };
            match self.machines[k].on_round(&mut ctx, &mut inbox) {
                Step::Continue => {}
                Step::Done(out) => {
                    self.slots[k] = Slot::Finished(out);
                    completions += 1;
                }
            }
            // Recycle the inbox buffer (and its capacity) for the next round.
            let mut items = inbox.into_items();
            items.clear();
            self.inboxes[k] = items;
        }
        completions
    }
}

/// Executes a set of [`NodeMachine`]s in lock-step synchronous rounds on a
/// congested clique, enforcing the per-edge bit budget.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator<N: NodeMachine> {
    spec: CliqueSpec,
    machines: Vec<N>,
    common: CommonCache,
}

impl<N: NodeMachine> Simulator<N> {
    /// Creates a simulator for `spec.n()` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeCountMismatch`] if `machines.len() != spec.n()`.
    pub fn new(spec: CliqueSpec, machines: Vec<N>) -> Result<Self, SimError> {
        if machines.len() != spec.n() {
            return Err(SimError::NodeCountMismatch {
                expected: spec.n(),
                actual: machines.len(),
            });
        }
        Ok(Simulator {
            spec,
            machines,
            common: CommonCache::new(),
        })
    }

    /// Runs the protocol to completion.
    ///
    /// The execution mode comes from [`CliqueSpec::exec`]; every mode
    /// produces a bit-identical [`RunReport`] for a deterministic
    /// protocol. The hot path delivers messages with a single counting
    /// pass per sender (destinations are perfect small keys, so no
    /// comparison sort is needed), reuses inbox/outbox buffers across
    /// rounds, and — under a parallel mode — steps disjoint node chunks
    /// on a pool of persistent workers that are spawned once per run and
    /// parked between rounds.
    ///
    /// # Errors
    ///
    /// * [`SimError::BudgetExceeded`] — a directed edge carried more bits
    ///   in one round than the spec allows.
    /// * [`SimError::TooManyRounds`] — the configured round limit was hit.
    /// * [`SimError::Stalled`] — a round passed with no messages and no
    ///   node finishing.
    /// * [`SimError::MessageToFinishedNode`] /
    ///   [`SimError::DestinationOutOfRange`] — protocol addressing bugs.
    ///
    /// Model violations are detected during the (always sequential)
    /// delivery pass, scanning senders in ascending order and each
    /// sender's destinations in ascending order — so the reported
    /// violation is the lowest `(src, dst)` pair, independent of how many
    /// stepping workers the mode resolves to. Messages still queued when
    /// every node has finished follow the same rule: the lowest-id sender
    /// is reported with its lowest queued in-range destination
    /// ([`SimError::MessageToFinishedNode`]), or — when every queued
    /// destination is out of range — with its lowest out-of-range one
    /// ([`SimError::DestinationOutOfRange`]).
    pub fn run(self) -> Result<RunReport<N::Output>, SimError> {
        let mode = self.spec.exec();
        if mode == ExecMode::SeedReference {
            return self.run_seed_reference();
        }
        let threads = mode.worker_threads(self.spec.n());
        let spawn_per_round = matches!(mode, ExecMode::SpawnParallel { .. });
        self.run_engine(threads, spawn_per_round)
    }

    /// The optimized engine: bucketed delivery, buffer reuse, and
    /// `threads`-way chunked stepping (1 = sequential, inline).
    ///
    /// Parallel stepping hands the chunks to a persistent
    /// [`WorkerPool`](crate::pool::WorkerPool) — workers are spawned once
    /// here and parked between rounds — unless `spawn_per_round` selects
    /// the retained [`ExecMode::SpawnParallel`] benchmark baseline, which
    /// spawns and joins scoped workers every round.
    fn run_engine(
        self,
        threads: usize,
        spawn_per_round: bool,
    ) -> Result<RunReport<N::Output>, SimError> {
        let Simulator {
            spec,
            machines,
            common,
            ..
        } = self;
        let n = spec.n();
        let split = ChunkSplit::new(n, threads);
        let mut chunks = build_chunks(machines, &split, &mut Vec::new());
        let mut scratch = DeliveryScratch::new(n);

        #[cfg(feature = "parallel")]
        if chunks.len() > 1 {
            if spawn_per_round {
                // Benchmark baseline: per-round scoped spawn/join, the
                // stepping strategy the persistent pool replaced.
                return run_rounds(
                    &spec,
                    &common,
                    &mut chunks,
                    split,
                    &mut scratch,
                    step_spawning_per_round(n),
                );
            }
            return std::thread::scope(|scope| {
                let mut pool = crate::pool::WorkerPool::new(scope, chunks.len(), n, &common);
                run_rounds(
                    &spec,
                    &common,
                    &mut chunks,
                    split,
                    &mut scratch,
                    |round, chunks, _| pool.step_round(round, chunks),
                )
            });
        }
        let _ = spawn_per_round; // single chunk (or no `parallel` feature): stepped inline
        run_rounds(
            &spec,
            &common,
            &mut chunks,
            split,
            &mut scratch,
            step_inline(n),
        )
    }

    /// The pre-optimization engine; see [`run_seed`].
    fn run_seed_reference(self) -> Result<RunReport<N::Output>, SimError> {
        run_seed(&self.spec, self.machines, &self.common)
    }
}

/// The pre-optimization engine, kept verbatim as the benchmark baseline
/// ([`ExecMode::SeedReference`]): comparison-sort delivery with a
/// front-shifting `drain` (quadratic in per-source fan-out) and fresh
/// inbox allocations every round. A free function so both the one-shot
/// [`Simulator`] and a [`CliqueSession`](crate::CliqueSession) can select
/// the mode.
#[allow(clippy::needless_range_loop)] // preserved verbatim from the seed
pub(crate) fn run_seed<N: NodeMachine>(
    spec: &CliqueSpec,
    mut machines: Vec<N>,
    common: &CommonCache,
) -> Result<RunReport<N::Output>, SimError> {
    let n = spec.n();
    let mut metrics = Metrics::new(spec.records_edge_histogram(), n);
    let mut slots: Vec<Slot<N::Output>> = (0..n).map(|_| Slot::Running).collect();
    let mut outboxes: Vec<Vec<(NodeId, N::Msg)>> = (0..n).map(|_| Vec::new()).collect();

    // Round 0: start hooks queue the round-1 sends.
    for (i, machine) in machines.iter_mut().enumerate() {
        let mut ctx = Ctx {
            base: BaseCtx {
                me: NodeId::new(i),
                n,
                round: 0,
                common,
                work: metrics.node_work_mut(i),
            },
            outbox: &mut outboxes[i],
        };
        machine.on_start(&mut ctx);
    }

    let mut round: u64 = 0;
    let mut silent_rounds: u64 = 0;
    // Scratch for the per-batch destination grouping below; hoisted so
    // steady-state rounds group without allocating.
    let mut group_scratch = crate::radix::RadixScratch::new();
    loop {
        let all_done = slots.iter().all(|s| matches!(s, Slot::Finished(_)));
        if all_done {
            // Someone sent a message but everyone already finished.
            // Classified exactly like the optimized engine, so both
            // engines report the identical error (see
            // `final_round_violation`).
            if let Some(err) = final_round_violation(
                round,
                n,
                outboxes.iter().enumerate().map(|(i, o)| (i, o.as_slice())),
            ) {
                return Err(err);
            }
            break;
        }

        round += 1;
        if round > spec.max_rounds() {
            return Err(SimError::TooManyRounds {
                limit: spec.max_rounds(),
            });
        }

        // Deliver: enforce per-edge budgets, account metrics.
        let mut round_metrics = RoundMetrics::default();
        let mut inboxes: Vec<Vec<(NodeId, N::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        for src_idx in 0..n {
            let mut batch = std::mem::take(&mut outboxes[src_idx]);
            if batch.is_empty() {
                continue;
            }
            let src = NodeId::new(src_idx);
            // Stable radix scatter groups messages per destination while
            // preserving per-destination send order — byte-identical
            // batch order to the stable comparison sort it replaced, so
            // the validation scan below (ascending destinations, minimum
            // out-of-range destination last) is unchanged.
            crate::radix::group_by_destination(&mut batch, n, &mut group_scratch);
            let i = 0;
            while i < batch.len() {
                let dst = batch[i].0;
                if dst.index() >= n {
                    return Err(SimError::DestinationOutOfRange {
                        src,
                        dst: dst.index(),
                        n,
                    });
                }
                let mut edge_bits = 0u64;
                let mut j = i;
                while j < batch.len() && batch[j].0 == dst {
                    edge_bits += batch[j].1.size_bits(n);
                    j += 1;
                }
                if edge_bits > spec.bits_per_edge() {
                    return Err(SimError::BudgetExceeded {
                        round,
                        src,
                        dst,
                        bits: edge_bits,
                        budget: spec.bits_per_edge(),
                    });
                }
                if matches!(slots[dst.index()], Slot::Finished(_)) {
                    return Err(SimError::MessageToFinishedNode { round, src, dst });
                }
                round_metrics.messages += (j - i) as u64;
                round_metrics.bits += edge_bits;
                round_metrics.busy_edges += 1;
                round_metrics.max_edge_bits = round_metrics.max_edge_bits.max(edge_bits);
                if let Some(h) = metrics.histogram_mut() {
                    h.record(edge_bits);
                }
                for (d, msg) in batch.drain(i..j) {
                    debug_assert_eq!(d, dst);
                    inboxes[dst.index()].push((src, msg));
                }
                // After drain, element i is the next distinct destination.
            }
        }
        let delivered_any = round_metrics.messages > 0;
        metrics.push_round(round_metrics);

        // Step every running node.
        let mut completions = 0usize;
        for i in 0..n {
            if matches!(slots[i], Slot::Finished(_)) {
                debug_assert!(inboxes[i].is_empty());
                continue;
            }
            // Inboxes were filled in ascending src order already.
            let mut inbox = Inbox::from_sorted(std::mem::take(&mut inboxes[i]));
            let mut ctx = Ctx {
                base: BaseCtx {
                    me: NodeId::new(i),
                    n,
                    round,
                    common,
                    work: metrics.node_work_mut(i),
                },
                outbox: &mut outboxes[i],
            };
            match machines[i].on_round(&mut ctx, &mut inbox) {
                Step::Continue => {}
                Step::Done(out) => {
                    slots[i] = Slot::Finished(out);
                    completions += 1;
                }
            }
        }

        if !delivered_any && completions == 0 {
            silent_rounds += 1;
            if silent_rounds > spec.max_silent_rounds() {
                let finished = slots
                    .iter()
                    .filter(|s| matches!(s, Slot::Finished(_)))
                    .count();
                return Err(SimError::Stalled {
                    round,
                    finished,
                    total: n,
                });
            }
        } else {
            silent_rounds = 0;
        }
    }

    let outputs = slots
        .into_iter()
        .map(|s| match s {
            Slot::Finished(o) => o,
            Slot::Running => unreachable!("loop exits only when all nodes finished"),
        })
        .collect();
    Ok(RunReport { outputs, metrics })
}

/// The fixed partition of `n` nodes into `count` contiguous chunks,
/// balanced so the chunk count always equals the worker count the
/// [`ExecMode`] resolved to: the first `n % count` chunks hold one node
/// more than the rest. Provides the O(1) global-id → (chunk, offset)
/// mapping the delivery pass needs.
#[derive(Clone, Copy)]
pub(crate) struct ChunkSplit {
    /// Number of chunks.
    count: usize,
    /// Chunks `0..big` hold `big_size` nodes; the rest hold `big_size - 1`.
    big: usize,
    /// `⌈n / count⌉`, the size of the first `big` chunks.
    big_size: usize,
    /// `big * big_size`: the first global id in the smaller chunks' range.
    big_span: usize,
}

impl ChunkSplit {
    pub(crate) fn new(n: usize, workers: usize) -> Self {
        let count = workers.clamp(1, n.max(1));
        let big = n % count;
        let big_size = n / count + 1;
        ChunkSplit {
            count,
            big,
            big_size,
            big_span: big * big_size,
        }
    }

    fn count(&self) -> usize {
        self.count
    }

    /// Chunk sizes in chunk order (they sum to `n`).
    fn sizes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count).map(|ci| {
            if ci < self.big {
                self.big_size
            } else {
                self.big_size - 1
            }
        })
    }

    /// Maps a global node id to its `(chunk, offset)` coordinates.
    #[inline]
    fn locate(&self, d: usize) -> (usize, usize) {
        if self.count == 1 {
            (0, d)
        } else if d < self.big_span {
            (d / self.big_size, d % self.big_size)
        } else {
            let d = d - self.big_span;
            let small_size = self.big_size - 1;
            (self.big + d / small_size, d % small_size)
        }
    }
}

/// Partitions `machines` into the contiguous chunks of `split`, drawing
/// message buffers from `pile` (see [`NodeChunk::new`]).
pub(crate) fn build_chunks<N: NodeMachine>(
    machines: Vec<N>,
    split: &ChunkSplit,
    pile: &mut Vec<Vec<(NodeId, N::Msg)>>,
) -> Vec<NodeChunk<N>> {
    let mut remaining = machines.into_iter();
    let mut chunks: Vec<NodeChunk<N>> = Vec::with_capacity(split.count());
    let mut base = 0;
    for len in split.sizes() {
        chunks.push(NodeChunk::new(
            base,
            remaining.by_ref().take(len).collect(),
            pile,
        ));
        base += len;
    }
    debug_assert!(remaining.next().is_none());
    chunks
}

/// The single-worker stepping strategy: every chunk is stepped inline on
/// the driving thread.
pub(crate) fn step_inline<N: NodeMachine>(
    n: usize,
) -> impl FnMut(u64, &mut [NodeChunk<N>], &CommonCache) -> usize {
    move |round, chunks, common| chunks.iter_mut().map(|c| c.step(round, n, common)).sum()
}

/// The retained [`ExecMode::SpawnParallel`] benchmark baseline: scoped
/// workers spawned and joined *every round* — the stepping strategy the
/// persistent pools replaced.
#[cfg(feature = "parallel")]
pub(crate) fn step_spawning_per_round<N: NodeMachine>(
    n: usize,
) -> impl FnMut(u64, &mut [NodeChunk<N>], &CommonCache) -> usize {
    move |round, chunks, common| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter_mut()
                .map(|c| scope.spawn(move || c.step(round, n, common)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .sum()
        })
    }
}

/// The optimized engine's round loop, generic over the stepping strategy:
/// `step` runs `on_round` for every running node across all chunks and
/// returns the number of completions. Delivery, violation detection and
/// metrics always run on the driving thread, in ascending node order, so
/// every stepping strategy observes — and produces — identical state.
///
/// Chunks are borrowed, not consumed: on return — success or failure —
/// the caller still owns every chunk and can recycle its message buffers
/// into a session pile ([`NodeChunk::recycle_into`]). On success the
/// outputs and work meters have been drained out of the chunks into the
/// returned [`RunReport`].
pub(crate) fn run_rounds<N: NodeMachine>(
    spec: &CliqueSpec,
    common: &CommonCache,
    chunks: &mut [NodeChunk<N>],
    split: ChunkSplit,
    scratch: &mut DeliveryScratch,
    mut step: impl FnMut(u64, &mut [NodeChunk<N>], &CommonCache) -> usize,
) -> Result<RunReport<N::Output>, SimError> {
    let n = spec.n();
    let mut metrics = Metrics::new(spec.records_edge_histogram(), 0);

    // Round 0: start hooks queue the round-1 sends.
    for chunk in chunks.iter_mut() {
        chunk.start(n, common);
    }

    let mut round: u64 = 0;
    let mut silent_rounds: u64 = 0;
    loop {
        let all_done = chunks
            .iter()
            .all(|c| c.slots.iter().all(|s| matches!(s, Slot::Finished(_))));
        if all_done {
            // Someone sent a message but everyone already finished.
            if let Some(err) = final_round_violation(
                round,
                n,
                chunks.iter().flat_map(|c| {
                    c.outboxes
                        .iter()
                        .enumerate()
                        .map(|(k, o)| (c.base + k, o.as_slice()))
                }),
            ) {
                return Err(err);
            }
            break;
        }

        round += 1;
        if round > spec.max_rounds() {
            return Err(SimError::TooManyRounds {
                limit: spec.max_rounds(),
            });
        }

        let round_metrics = deliver_round(round, spec, chunks, &split, scratch, &mut metrics)?;
        let delivered_any = round_metrics.messages > 0;
        metrics.push_round(round_metrics);

        let completions = step(round, chunks, common);

        if !delivered_any && completions == 0 {
            silent_rounds += 1;
            if silent_rounds > spec.max_silent_rounds() {
                let finished = chunks
                    .iter()
                    .flat_map(|c| c.slots.iter())
                    .filter(|s| matches!(s, Slot::Finished(_)))
                    .count();
                return Err(SimError::Stalled {
                    round,
                    finished,
                    total: n,
                });
            }
        } else {
            silent_rounds = 0;
        }
    }

    let mut work = Vec::with_capacity(n);
    let mut outputs = Vec::with_capacity(n);
    for chunk in chunks.iter_mut() {
        work.append(&mut chunk.work);
        for slot in chunk.slots.drain(..) {
            match slot {
                Slot::Finished(o) => outputs.push(o),
                Slot::Running => unreachable!("loop exits only when all nodes finished"),
            }
        }
    }
    metrics.set_node_work(work);
    Ok(RunReport { outputs, metrics })
}

/// Classifies messages still queued once every node has finished,
/// honoring the engine-wide lowest-`(src, dst)` precedence: the lowest-id
/// sender with a nonempty outbox is reported, with its lowest queued
/// in-range destination ([`SimError::MessageToFinishedNode`] — any
/// in-range destination is by definition a finished node here). When that
/// sender queued *only* out-of-range destinations, the violation is an
/// addressing bug, not a late send, and is classified as
/// [`SimError::DestinationOutOfRange`] on the lowest such destination —
/// matching the delivery pass, where out-of-range destinations order
/// after all in-range ones of the same sender.
fn final_round_violation<'a, M: 'a>(
    round: u64,
    n: usize,
    outboxes: impl Iterator<Item = (usize, &'a [(NodeId, M)])>,
) -> Option<SimError> {
    for (src_idx, queued) in outboxes {
        if queued.is_empty() {
            continue;
        }
        let src = NodeId::new(src_idx);
        let min_in_range = queued
            .iter()
            .map(|(dst, _)| *dst)
            .filter(|dst| dst.index() < n)
            .min();
        return Some(match min_in_range {
            Some(dst) => SimError::MessageToFinishedNode {
                round: round + 1,
                src,
                dst,
            },
            None => {
                let dst = queued
                    .iter()
                    .map(|(dst, _)| dst.index())
                    .min()
                    .expect("outbox is nonempty");
                SimError::DestinationOutOfRange { src, dst, n }
            }
        });
    }
    None
}

/// Per-destination counting buffers, allocated once per run — or once per
/// [`CliqueSession`](crate::CliqueSession), which keeps one across runs —
/// and zeroed via the `touched` list, so delivery does no per-round
/// allocation and no comparison sorting.
#[derive(Default)]
pub(crate) struct DeliveryScratch {
    /// Bits queued to each destination by the sender being processed.
    edge_bits: Vec<u64>,
    /// Messages queued to each destination by the sender being processed.
    msg_count: Vec<u64>,
    /// Destinations the current sender actually touched.
    touched: Vec<u32>,
}

impl DeliveryScratch {
    pub(crate) fn new(n: usize) -> Self {
        let mut scratch = DeliveryScratch::default();
        scratch.reset(n);
        scratch
    }

    /// Re-sizes the counting buffers for an `n`-node run, keeping their
    /// allocations. The per-sender zeroing discipline (only `touched`
    /// entries are ever nonzero, and they are cleared before the sender
    /// finishes — including on the [`SimError`] paths) means entries are
    /// normally already zero, so growing or shrinking never needs a full
    /// memset. The exception is a *panic* escaping mid-delivery (e.g. a
    /// user [`Payload::size_bits`] unwinding out of the counting pass),
    /// which leaves the entries recorded in `touched` dirty; they are
    /// zeroed here so a recovered session never carries stale counters —
    /// which would silently skip validation and metrics for those
    /// destinations — into its next run.
    pub(crate) fn reset(&mut self, n: usize) {
        for &d in &self.touched {
            self.edge_bits[d as usize] = 0;
            self.msg_count[d as usize] = 0;
        }
        self.touched.clear();
        debug_assert!(self.edge_bits.iter().all(|&b| b == 0));
        debug_assert!(self.msg_count.iter().all(|&c| c == 0));
        self.edge_bits.resize(n, 0);
        self.msg_count.resize(n, 0);
    }
}

/// Moves one round of messages from outboxes to inboxes with a counting
/// pass per sender (destinations are perfect keys in `0..n`).
///
/// Senders are processed in ascending order and each sender's violations
/// are resolved to the lowest failing destination, so the documented
/// `Inbox` guarantee — ascending sender ids, per-sender send order —
/// holds bit-for-bit, and the first model violation reported is the
/// lowest `(src, dst)` pair, with the seed engine's per-edge precedence
/// (out-of-range destinations order after all valid ones, budget before
/// finished-node on the same edge).
///
/// State is chunked for worker hand-off; [`ChunkSplit::locate`] maps a
/// global node id to its chunk coordinates in O(1) (the single-chunk
/// sequential layout skips the division).
fn deliver_round<N: NodeMachine>(
    round: u64,
    spec: &CliqueSpec,
    chunks: &mut [NodeChunk<N>],
    split: &ChunkSplit,
    scratch: &mut DeliveryScratch,
    metrics: &mut Metrics,
) -> Result<RoundMetrics, SimError> {
    let n = spec.n();
    let budget = spec.bits_per_edge();
    let locate = |d: usize| split.locate(d);
    let mut rm = RoundMetrics::default();
    for ci in 0..chunks.len() {
        let base = chunks[ci].base;
        for li in 0..chunks[ci].len() {
            if chunks[ci].outboxes[li].is_empty() {
                continue;
            }
            let src = NodeId::new(base + li);
            // Take the outbox so pushes into this chunk's inboxes don't
            // alias it; its (capacity-retaining) return happens after the
            // move pass.
            let mut batch = std::mem::take(&mut chunks[ci].outboxes[li]);

            // Counting pass: bucket fan-out and bit loads by destination.
            let mut min_out_of_range: Option<usize> = None;
            for (dst, msg) in &batch {
                let d = dst.index();
                if d >= n {
                    min_out_of_range = Some(min_out_of_range.map_or(d, |m| m.min(d)));
                    continue;
                }
                if scratch.msg_count[d] == 0 {
                    scratch.touched.push(d as u32);
                }
                scratch.msg_count[d] += 1;
                scratch.edge_bits[d] += msg.size_bits(n);
            }
            // Validation pass over the touched destinations (no sort needed:
            // the reported violation is the *lowest* failing destination, and
            // metric/histogram accumulation is order-insensitive — counters
            // add, maxima max, the histogram is a multiset). On failure the
            // whole run's metrics are discarded, so over-accumulating before
            // spotting a violation is harmless.
            let mut failure: Option<SimError> = None;
            for &d32 in &scratch.touched {
                let d = d32 as usize;
                let bits = scratch.edge_bits[d];
                let (dci, dli) = locate(d);
                let edge_failure = if bits > budget {
                    // Budget outranks finished-node on the same edge.
                    Some(SimError::BudgetExceeded {
                        round,
                        src,
                        dst: NodeId::new(d),
                        bits,
                        budget,
                    })
                } else if matches!(chunks[dci].slots[dli], Slot::Finished(_)) {
                    Some(SimError::MessageToFinishedNode {
                        round,
                        src,
                        dst: NodeId::new(d),
                    })
                } else {
                    None
                };
                if let Some(err) = edge_failure {
                    let lower = match &failure {
                        Some(
                            SimError::BudgetExceeded { dst, .. }
                            | SimError::MessageToFinishedNode { dst, .. },
                        ) => d < dst.index(),
                        _ => true,
                    };
                    if lower {
                        failure = Some(err);
                    }
                    continue;
                }
                rm.messages += scratch.msg_count[d];
                rm.bits += bits;
                rm.busy_edges += 1;
                rm.max_edge_bits = rm.max_edge_bits.max(bits);
                if let Some(h) = metrics.histogram_mut() {
                    h.record(bits);
                }
            }
            if failure.is_none() {
                // An out-of-range destination compares greater than every valid
                // one (NodeId order), so it is only reported when no valid edge
                // failed.
                if let Some(d) = min_out_of_range {
                    failure = Some(SimError::DestinationOutOfRange { src, dst: d, n });
                }
            }

            // Zero only the touched scratch entries before returning or moving
            // on to the next sender.
            for &d32 in &scratch.touched {
                scratch.edge_bits[d32 as usize] = 0;
                scratch.msg_count[d32 as usize] = 0;
            }
            scratch.touched.clear();
            if let Some(err) = failure {
                return Err(err);
            }

            // Move pass: straight into the destination inboxes, preserving
            // per-destination send order; ascending global node order keeps
            // every inbox sorted by sender. `drain` retains the outbox
            // capacity for the round's sends.
            for (dst, msg) in batch.drain(..) {
                let (dci, dli) = locate(dst.index());
                chunks[dci].inboxes[dli].push((src, msg));
            }
            chunks[ci].outboxes[li] = batch;
        }
    }
    Ok(rm)
}

/// Convenience: builds machines with a closure of the node id and runs them.
///
/// # Errors
///
/// Propagates any [`SimError`] from [`Simulator::new`] / [`Simulator::run`].
pub fn run_protocol<N, F>(spec: CliqueSpec, make: F) -> Result<RunReport<N::Output>, SimError>
where
    N: NodeMachine,
    F: FnMut(NodeId) -> N,
{
    let n = spec.n();
    let machines = (0..n).map(NodeId::new).map(make).collect();
    Simulator::new(spec, machines)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::word_bits;

    /// All-to-all identity exchange: 1 round.
    struct AllToAll;

    impl NodeMachine for AllToAll {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let me = ctx.me().index() as u64;
            ctx.broadcast(me);
        }

        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
            Step::Done(inbox.drain().map(|(_, m)| m).sum())
        }
    }

    #[test]
    fn all_to_all_takes_one_round() {
        let n = 10;
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |_| AllToAll).unwrap();
        assert_eq!(report.metrics.comm_rounds(), 1);
        assert_eq!(report.metrics.total_messages(), (n * n) as u64);
        let expected: u64 = (0..n as u64).sum();
        assert!(report.outputs.iter().all(|&s| s == expected));
    }

    /// A two-phase protocol: ping a partner, then reply; checks round
    /// counting and per-round metrics.
    struct PingPong {
        sent_reply: bool,
    }

    impl NodeMachine for PingPong {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let partner = NodeId::new((ctx.me().index() + 1) % ctx.n());
            ctx.send(partner, 1);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<u64> {
            let got: u64 = inbox.drain().map(|(_, m)| m).sum();
            if self.sent_reply {
                return Step::Done(got);
            }
            self.sent_reply = true;
            let partner = NodeId::new((ctx.me().index() + ctx.n() - 1) % ctx.n());
            ctx.send(partner, got + 1);
            Step::Continue
        }
    }

    #[test]
    fn ping_pong_takes_two_rounds() {
        let n = 6;
        let report = run_protocol(CliqueSpec::new(n).unwrap(), |_| PingPong {
            sent_reply: false,
        })
        .unwrap();
        assert_eq!(report.metrics.comm_rounds(), 2);
        assert!(report.outputs.iter().all(|&o| o == 2));
    }

    /// Over-budget sender triggers `BudgetExceeded`.
    struct Flooder;

    impl NodeMachine for Flooder {
        type Msg = u64;
        type Output = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            // Send many words over a single edge.
            for k in 0..64 {
                ctx.send(NodeId::new(0), k);
            }
        }

        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
            Step::Done(())
        }
    }

    #[test]
    fn budget_violation_is_detected() {
        let n = 4;
        let spec = CliqueSpec::new(n).unwrap().with_budget_words(8);
        let err = run_protocol(spec, |_| Flooder).unwrap_err();
        match err {
            SimError::BudgetExceeded { bits, budget, .. } => {
                assert_eq!(bits, 64 * word_bits(n));
                assert_eq!(budget, 8 * word_bits(n));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// A protocol that never finishes and never sends: must stall, not hang.
    struct Sleeper;

    impl NodeMachine for Sleeper {
        type Msg = u64;
        type Output = ();

        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
            Step::Continue
        }
    }

    #[test]
    fn silent_nonterminating_protocol_stalls() {
        let err = run_protocol(CliqueSpec::new(3).unwrap(), |_| Sleeper).unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }), "{err:?}");
    }

    /// Sending to a node that already finished is an addressing bug.
    struct LateSender {
        me: NodeId,
    }

    impl NodeMachine for LateSender {
        type Msg = u64;
        type Output = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.me.index() == 1 {
                ctx.send(NodeId::new(0), 7);
            }
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<u64>) -> Step<()> {
            let _ = inbox.drain().count();
            if self.me.index() == 0 {
                // Node 0 finishes immediately.
                return Step::Done(());
            }
            if ctx.round() == 2 {
                return Step::Done(());
            }
            // Round 1: node 1 sends to the (about to be) finished node 0.
            ctx.send(NodeId::new(0), 9);
            Step::Continue
        }
    }

    #[test]
    fn message_to_finished_node_is_detected() {
        let err = run_protocol(CliqueSpec::new(2).unwrap(), |me| LateSender { me }).unwrap_err();
        assert!(
            matches!(err, SimError::MessageToFinishedNode { .. }),
            "{err:?}"
        );
    }

    /// Out-of-range destinations are rejected.
    struct WildSender;

    impl NodeMachine for WildSender {
        type Msg = u64;
        type Output = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(NodeId::new(ctx.n() + 5), 1);
        }

        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, _inbox: &mut Inbox<u64>) -> Step<()> {
            Step::Done(())
        }
    }

    #[test]
    fn out_of_range_destination_is_detected() {
        let err = run_protocol(CliqueSpec::new(3).unwrap(), |_| WildSender).unwrap_err();
        assert!(
            matches!(err, SimError::DestinationOutOfRange { .. }),
            "{err:?}"
        );
    }

    /// A zero-communication protocol completes in zero communication rounds.
    struct Loner;

    impl NodeMachine for Loner {
        type Msg = ();
        type Output = u32;

        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &mut Inbox<()>) -> Step<u32> {
            Step::Done(ctx.me().raw())
        }
    }

    #[test]
    fn local_only_protocol_uses_zero_comm_rounds() {
        let report = run_protocol(CliqueSpec::new(5).unwrap(), |_| Loner).unwrap();
        assert_eq!(report.metrics.comm_rounds(), 0);
        assert_eq!(report.outputs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunk_split_is_balanced_and_exact() {
        for n in [1usize, 2, 7, 8, 23, 64, 1024] {
            for workers in [1usize, 2, 3, 5, 7, 48, 2000] {
                let split = ChunkSplit::new(n, workers);
                // The chunk count must equal the resolved worker count —
                // this is what the benchmark metadata records.
                assert_eq!(split.count(), workers.clamp(1, n));
                let sizes: Vec<usize> = split.sizes().collect();
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} workers={workers}");
                assert!(sizes.iter().all(|&s| s >= 1));
                assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
                // `locate` inverts the partition bounds exactly.
                let mut base = 0;
                for (ci, &len) in sizes.iter().enumerate() {
                    for off in 0..len {
                        assert_eq!(
                            split.locate(base + off),
                            (ci, off),
                            "n={n} workers={workers}"
                        );
                    }
                    base += len;
                }
            }
        }
    }

    #[test]
    fn machine_count_must_match() {
        let spec = CliqueSpec::new(3).unwrap();
        let err = match Simulator::new(spec, vec![Loner, Loner]) {
            Ok(_) => panic!("expected mismatch error"),
            Err(e) => e,
        };
        assert!(matches!(err, SimError::NodeCountMismatch { .. }));
    }

    #[test]
    fn inbox_is_sorted_by_sender() {
        struct Collector {
            senders: Vec<usize>,
        }
        impl NodeMachine for Collector {
            type Msg = u64;
            type Output = Vec<usize>;

            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.send(NodeId::new(0), ctx.me().index() as u64);
            }

            fn on_round(
                &mut self,
                _ctx: &mut Ctx<'_, u64>,
                inbox: &mut Inbox<u64>,
            ) -> Step<Vec<usize>> {
                self.senders = inbox.drain().map(|(s, _)| s.index()).collect();
                Step::Done(std::mem::take(&mut self.senders))
            }
        }
        let report = run_protocol(CliqueSpec::new(6).unwrap(), |_| Collector {
            senders: Vec::new(),
        })
        .unwrap();
        assert_eq!(report.outputs[0], vec![0, 1, 2, 3, 4, 5]);
    }
}
