use crate::NodeId;

/// The messages a node received in the current round.
///
/// Messages are delivered in ascending order of sender id; multiple
/// messages from the same sender (possible when the bit budget allows
/// bundling) preserve their send order. This ordering is deterministic, so
/// deterministic protocols are reproducible bit-for-bit.
#[derive(Debug)]
pub struct Inbox<M> {
    items: Vec<(NodeId, M)>,
}

impl<M> Inbox<M> {
    /// Creates an inbox from a pre-sorted delivery batch.
    pub(crate) fn from_sorted(items: Vec<(NodeId, M)>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
        Inbox { items }
    }

    /// Returns the backing buffer so the engine can recycle its capacity
    /// for the next round (any messages the handler left unread are
    /// discarded by the engine's `clear`).
    pub(crate) fn into_items(self) -> Vec<(NodeId, M)> {
        self.items
    }

    /// Creates an inbox from an unsorted batch, restoring sender order —
    /// used by parent machines that demultiplex messages for an embedded
    /// [`NodeMachine`](crate::NodeMachine).
    ///
    /// Parent-machine demux is a hot path and its batches usually arrive
    /// already in sender order (the engine delivers that way), so an O(m)
    /// sortedness check skips the sort entirely in the common case. When a
    /// sort is needed it is *stable*, preserving each sender's send order
    /// — the same guarantee the engine's delivery gives. Large batches
    /// take the radix scatter path ([`crate::radix`]), small ones the
    /// stable comparison sort; both produce the identical order.
    pub fn from_messages(mut items: Vec<(NodeId, M)>) -> Self
    where
        M: Clone,
    {
        if items.windows(2).any(|w| w[0].0 > w[1].0) {
            crate::radix::sort_by_u64_key(&mut items, |(src, _)| src.index() as u64);
        }
        Inbox { items }
    }

    /// Number of messages received this round.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing was received this round.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(sender, message)` pairs in sender order.
    pub fn iter(&self) -> std::slice::Iter<'_, (NodeId, M)> {
        self.items.iter()
    }

    /// Removes and returns all messages, in sender order.
    ///
    /// This is the normal consumption path: a round handler drains its
    /// inbox, leaving it empty.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.items.drain(..)
    }

    /// Removes and returns all messages as a vector.
    pub fn take_all(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.items)
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a (NodeId, M);
    type IntoIter = std::slice::Iter<'a, (NodeId, M)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<M> IntoIterator for Inbox<M> {
    type Item = (NodeId, M);
    type IntoIter = std::vec::IntoIter<(NodeId, M)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_empties() {
        let mut inbox = Inbox::from_sorted(vec![(NodeId::new(0), 1u64), (NodeId::new(2), 2)]);
        assert_eq!(inbox.len(), 2);
        let got: Vec<_> = inbox.drain().collect();
        assert_eq!(got.len(), 2);
        assert!(inbox.is_empty());
    }

    /// `from_messages` order semantics are unchanged by the already-sorted
    /// fast path: ascending sender ids, and within one sender the original
    /// send order — on sorted input, on input needing a (stable) sort, and
    /// on every rotation between the two.
    #[test]
    fn from_messages_orders_by_sender_preserving_send_order() {
        // Payload encodes (sender, sequence-within-sender) so the expected
        // stable order is recomputable independently.
        let batch: Vec<(NodeId, u64)> = vec![
            (NodeId::new(2), 200),
            (NodeId::new(0), 100),
            (NodeId::new(2), 201),
            (NodeId::new(1), 150),
            (NodeId::new(0), 101),
            (NodeId::new(2), 202),
        ];
        for rot in 0..batch.len() {
            let mut rotated = batch.clone();
            rotated.rotate_left(rot);
            let mut expected = rotated.clone();
            // A stable sort is the documented semantics.
            expected.sort_by_key(|(src, _)| *src);
            let inbox = Inbox::from_messages(rotated);
            let got: Vec<(NodeId, u64)> = inbox.into_iter().collect();
            assert_eq!(got, expected, "rotation {rot}");
        }
    }

    /// Already-sorted input (the fast path) comes back exactly as given,
    /// including duplicate senders.
    #[test]
    fn from_messages_keeps_sorted_input_verbatim() {
        let sorted: Vec<(NodeId, u64)> = vec![
            (NodeId::new(0), 1),
            (NodeId::new(0), 2),
            (NodeId::new(3), 3),
            (NodeId::new(3), 4),
            (NodeId::new(7), 5),
        ];
        let got: Vec<(NodeId, u64)> = Inbox::from_messages(sorted.clone()).into_iter().collect();
        assert_eq!(got, sorted);
        assert!(Inbox::<u64>::from_messages(Vec::new()).is_empty());
    }

    #[test]
    fn iter_preserves_order() {
        let inbox = Inbox::from_sorted(vec![
            (NodeId::new(0), 10u64),
            (NodeId::new(0), 11),
            (NodeId::new(3), 12),
        ]);
        let senders: Vec<usize> = inbox.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(senders, vec![0, 0, 3]);
        let owned: Vec<u64> = inbox.into_iter().map(|(_, m)| m).collect();
        assert_eq!(owned, vec![10, 11, 12]);
    }
}
