//! # cc-sim — a synchronous congested-clique simulator
//!
//! This crate implements the execution model of Lenzen's *Optimal
//! Deterministic Routing and Sorting on the Congested Clique* (PODC 2013),
//! §2: a fully connected system of `n` nodes computing in lock-step
//! synchronous rounds, where in each round every ordered pair of nodes may
//! exchange a message of `O(log n)` bits.
//!
//! The simulator is the *substrate* on which the routing and sorting
//! algorithms of the paper (see the `cc-core` crate) are executed and
//! measured. It enforces the model's only resource constraint — a
//! per-directed-edge, per-round **bit budget** — and counts the quantities
//! the paper's theorems are stated in: rounds, messages, and bits.
//!
//! ## Architecture
//!
//! * A protocol is implemented as a [`NodeMachine`]: a per-node state
//!   machine whose [`NodeMachine::on_round`] is invoked once per synchronous
//!   round with the messages received in that round.
//! * The [`Simulator`] owns one machine per node, moves messages between
//!   them, enforces the bit budget and records [`Metrics`]. It is
//!   one-shot; a [`CliqueSession`] is the reusable counterpart that keeps
//!   worker threads, message arenas and caches alive *across* runs —
//!   prefer it when many (even heterogeneous) protocol runs share one
//!   process, e.g. a query service (see [`CliqueSession`]). Reuse is
//!   observably free: a warm session is bit-identical to a fresh
//!   simulator in every [`ExecMode`].
//! * Deterministic algorithms on the clique repeatedly evaluate *identical*
//!   functions of common knowledge on every node (e.g. an edge coloring of a
//!   globally known demand multigraph). The [`CommonCache`] memoizes such
//!   computations across nodes while *verifying* that every participant
//!   supplies bit-identical input — turning the common-knowledge assumption
//!   into a runtime-checked invariant.
//! * [`wire`] provides bit-exact encoding used by tests to validate that
//!   declared [`Payload::size_bits`] values are honest upper bounds.
//!
//! ## Execution modes, parallelism and determinism
//!
//! Rounds are embarrassingly parallel across nodes — each machine touches
//! only its own state — and the engine exploits exactly that structure:
//!
//! * **Delivery** is a counting/bucket pass over destinations (`dst < n`
//!   is a perfect small key): one pass buckets each sender's fan-out, one
//!   pass validates budgets (tracking the lowest failing destination), one
//!   pass moves messages straight into per-destination inbox buffers. No
//!   comparison sort, no quadratic drain.
//! * **Node-local key sorts** go through the [`radix`] scatter-key
//!   engine: batches of [`RADIX_MIN_LEN`](radix::RADIX_MIN_LEN) or more
//!   `(u64 key, payload)` pairs are ordered by LSD radix passes
//!   (count → exclusive scan → scatter) whose digit width adapts to the
//!   XOR-diff of the key range, with a chunked-parallel driver that maps
//!   per-chunk histograms onto the session worker pool. Every path is
//!   stable, so radix and the comparison fallback (kept as the test
//!   oracle, and selectable at runtime via `CC_RADIX=off`) produce
//!   bit-identical orders.
//! * **Buffers are recycled**: outboxes, inboxes and the delivery scratch
//!   are allocated once per run and keep their capacity across rounds —
//!   including the radix sort's [`RadixScratch`](radix::RadixScratch) —
//!   so steady-state rounds perform no allocation for message movement.
//! * **Stepping** runs `on_round` for disjoint chunks of nodes on a
//!   **persistent worker pool** when the `parallel` cargo feature (on by
//!   default) is enabled and the selected [`ExecMode`] resolves to more
//!   than one worker: workers are spawned once per run, parked on their
//!   job channel between rounds, and each round receive ownership of
//!   their node chunk (a few `Vec` headers), step it, and hand it back.
//!   The per-round hand-off is a channel send instead of a thread
//!   spawn/join, so even small cliques parallelize profitably (see
//!   [`PARALLEL_AUTO_THRESHOLD`] and [`PARALLEL_MIN_CHUNK`]). Under a
//!   [`CliqueSession`] the pool outlives the *run* too: session workers
//!   are type-erased and parked between runs, so a batch of protocol
//!   runs — even of different protocols — spawns no threads at all after
//!   the first.
//!
//! Every mode — [`ExecMode::Sequential`], [`ExecMode::Parallel`], the
//!   default [`ExecMode::Auto`], and the retained benchmark baselines
//!   [`ExecMode::SpawnParallel`] (per-round scoped spawn, the pool's
//!   predecessor) and [`ExecMode::SeedReference`] (the pre-optimization
//!   engine) — produces **bit-identical** [`RunReport`]s for
//!   deterministic protocols: inboxes deliver in ascending sender order
//!   (per-sender send order preserved), per-node work meters are indexed
//!   by node, and model violations are detected in the sequential
//!   delivery pass so the lowest-`(src, dst)` violation is reported
//!   regardless of worker interleaving — including messages still queued
//!   when every node has finished, which are classified as
//!   [`SimError::MessageToFinishedNode`] at the lowest in-range
//!   destination or [`SimError::DestinationOutOfRange`] when the sender
//!   queued only out-of-range destinations. Select a mode with
//!   [`CliqueSpec::with_exec`]; disabling the `parallel` feature removes
//!   the threaded code entirely and every mode degrades to sequential.
//!
//! ## Example
//!
//! ```rust
//! use cc_sim::{CliqueSpec, Ctx, Inbox, NodeId, NodeMachine, Payload, Simulator, Step};
//!
//! /// Every node sends its id to every other node and sums what it hears.
//! struct SumIds;
//!
//! #[derive(Clone, Debug)]
//! struct IdMsg(u64);
//!
//! impl Payload for IdMsg {
//!     fn size_bits(&self, n: usize) -> u64 {
//!         cc_sim::util::word_bits(n)
//!     }
//! }
//!
//! impl NodeMachine for SumIds {
//!     type Msg = IdMsg;
//!     type Output = u64;
//!
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
//!         for v in ctx.nodes() {
//!             ctx.send(v, IdMsg(ctx.me().index() as u64));
//!         }
//!     }
//!
//!     fn on_round(
//!         &mut self,
//!         _ctx: &mut Ctx<'_, Self::Msg>,
//!         inbox: &mut Inbox<Self::Msg>,
//!     ) -> Step<Self::Output> {
//!         Step::Done(inbox.drain().map(|(_, m)| m.0).sum())
//!     }
//! }
//!
//! # fn main() -> Result<(), cc_sim::SimError> {
//! let n = 8;
//! let machines = (0..n).map(|_| SumIds).collect();
//! let report = Simulator::new(CliqueSpec::new(n)?, machines)?.run()?;
//! assert_eq!(report.metrics.comm_rounds(), 1);
//! assert!(report.outputs.iter().all(|&s| s == (0..n as u64).sum()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod engine;
mod error;
mod inbox;
mod metrics;
mod node;
mod payload;
#[cfg(feature = "parallel")]
mod pool;
mod session;
mod spec;
mod work;

pub mod hash;
pub mod radix;
pub mod util;
pub mod wire;

pub use common::{CommonCache, CommonScope};
pub use engine::{run_protocol, BaseCtx, Ctx, NodeMachine, RunReport, Simulator, Step};
pub use error::SimError;
pub use inbox::Inbox;
pub use metrics::{EdgeLoadHistogram, Metrics, RoundMetrics};
pub use node::NodeId;
pub use payload::Payload;
pub use session::{BatchReport, CliqueSession, SessionStats};
pub use spec::{
    CliqueSpec, ExecMode, DEFAULT_BUDGET_WORDS, DEFAULT_MAX_ROUNDS, DEFAULT_MAX_SILENT_ROUNDS,
    PARALLEL_AUTO_THRESHOLD, PARALLEL_MIN_CHUNK,
};
pub use work::WorkMeter;
