use std::fmt;

/// Per-node accounting of local computation and memory, for the
/// Theorem 5.4 experiments (`O(n log n)` computational steps and memory
/// bits per node).
///
/// The model is analytical: algorithms charge costs at the granularity the
/// paper reasons about — a comparison sort of `k` items charges
/// `k·⌈log₂ k⌉`, a coloring of a multigraph with `|E|` edges and degree `Δ`
/// charges `|E|·⌈log₂ Δ⌉`, and linear passes charge their length. Memory is
/// tracked as a high-water mark of machine words explicitly noted by the
/// algorithms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkMeter {
    steps: u64,
    peak_mem_words: u64,
}

impl WorkMeter {
    /// Creates a meter with zero recorded work.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `steps` computational steps.
    #[inline]
    pub fn charge(&mut self, steps: u64) {
        self.steps = self.steps.saturating_add(steps);
    }

    /// Notes that `words` machine words are live simultaneously; the peak
    /// is retained.
    #[inline]
    pub fn note_mem(&mut self, words: u64) {
        self.peak_mem_words = self.peak_mem_words.max(words);
    }

    /// Total computational steps charged.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// High-water mark of live machine words.
    #[inline]
    pub fn peak_mem_words(&self) -> u64 {
        self.peak_mem_words
    }

    /// Merges another meter into this one (steps add, peaks max).
    pub fn absorb(&mut self, other: &WorkMeter) {
        self.steps = self.steps.saturating_add(other.steps);
        self.peak_mem_words = self.peak_mem_words.max(other.peak_mem_words);
    }
}

impl fmt::Display for WorkMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} peak words",
            self.steps, self.peak_mem_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = WorkMeter::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.steps(), 15);
    }

    #[test]
    fn memory_is_high_water() {
        let mut m = WorkMeter::new();
        m.note_mem(100);
        m.note_mem(50);
        m.note_mem(120);
        assert_eq!(m.peak_mem_words(), 120);
    }

    #[test]
    fn absorb_combines() {
        let mut a = WorkMeter::new();
        a.charge(3);
        a.note_mem(10);
        let mut b = WorkMeter::new();
        b.charge(4);
        b.note_mem(7);
        a.absorb(&b);
        assert_eq!(a.steps(), 7);
        assert_eq!(a.peak_mem_words(), 10);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut m = WorkMeter::new();
        m.charge(u64::MAX);
        m.charge(10);
        assert_eq!(m.steps(), u64::MAX);
    }
}
