use crate::work::WorkMeter;
use std::collections::BTreeMap;
use std::fmt;

/// Per-round communication statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Messages delivered in this round.
    pub messages: u64,
    /// Total bits delivered in this round.
    pub bits: u64,
    /// Maximum bits over any single directed edge in this round.
    pub max_edge_bits: u64,
    /// Number of distinct directed edges that carried at least one message.
    pub busy_edges: u64,
}

impl RoundMetrics {
    /// Merges another accumulator into this one: counters add
    /// (saturating, so untrusted decoded values cannot overflow — cf.
    /// [`WorkMeter::charge`](crate::WorkMeter::charge)), the per-edge
    /// maximum is kept. Merging is associative and commutative —
    /// [`Metrics`] folds every round into its run totals with it, and
    /// partial accumulations combine to the same totals in any order.
    pub fn merge(&mut self, other: &RoundMetrics) {
        self.messages = self.messages.saturating_add(other.messages);
        self.bits = self.bits.saturating_add(other.bits);
        self.busy_edges = self.busy_edges.saturating_add(other.busy_edges);
        self.max_edge_bits = self.max_edge_bits.max(other.max_edge_bits);
    }
}

/// Histogram of per-edge bit loads, aggregated over all rounds of a run.
///
/// Maps `bits carried by a directed edge in one round` to the number of
/// (edge, round) pairs with that load. Idle edges are not recorded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeLoadHistogram {
    buckets: BTreeMap<u64, u64>,
}

impl EdgeLoadHistogram {
    pub(crate) fn record(&mut self, bits: u64) {
        *self.buckets.entry(bits).or_insert(0) += 1;
    }

    /// Reassembles a histogram from `(bits, count)` pairs — the inverse of
    /// [`EdgeLoadHistogram::iter`], for codecs that ship metrics across a
    /// process boundary. Duplicate `bits` keys accumulate (saturating, so
    /// adversarial decoded counts cannot overflow); zero counts are
    /// dropped, so a decoded histogram is always in canonical form.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut histogram = EdgeLoadHistogram::default();
        for (bits, count) in pairs {
            if count > 0 {
                let slot = histogram.buckets.entry(bits).or_insert(0);
                *slot = slot.saturating_add(count);
            }
        }
        histogram
    }

    /// Iterates over `(bits, count)` pairs in increasing bit-load order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Total number of busy (edge, round) observations.
    pub fn total_observations(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Maximum observed per-edge per-round load in bits.
    pub fn max_load(&self) -> u64 {
        self.buckets.keys().next_back().copied().unwrap_or(0)
    }
}

/// Measurements of a complete protocol run.
///
/// Rounds, messages and bits are the currencies of the paper's theorems;
/// [`Metrics::comm_rounds`] is the number the paper's round counts refer
/// to (delivery phases in which at least one message was in flight —
/// trailing local computation is free, as in the model).
///
/// `Metrics` compares by value, so two runs of the same deterministic
/// protocol — under any [`ExecMode`](crate::ExecMode) — can be asserted
/// identical with `==`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    per_round: Vec<RoundMetrics>,
    comm_rounds: u64,
    totals: RoundMetrics,
    histogram: Option<EdgeLoadHistogram>,
    node_work: Vec<WorkMeter>,
}

impl Metrics {
    pub(crate) fn new(record_histogram: bool, n: usize) -> Self {
        Metrics {
            per_round: Vec::new(),
            comm_rounds: 0,
            totals: RoundMetrics::default(),
            histogram: record_histogram.then(EdgeLoadHistogram::default),
            node_work: vec![WorkMeter::new(); n],
        }
    }

    pub(crate) fn push_round(&mut self, round: RoundMetrics) {
        if round.messages > 0 {
            self.comm_rounds += 1;
        }
        self.totals.merge(&round);
        self.per_round.push(round);
    }

    pub(crate) fn histogram_mut(&mut self) -> Option<&mut EdgeLoadHistogram> {
        self.histogram.as_mut()
    }

    pub(crate) fn node_work_mut(&mut self, node: usize) -> &mut WorkMeter {
        &mut self.node_work[node]
    }

    /// Installs the per-node work meters at the end of a run (the engine
    /// owns them during the run so workers can step nodes concurrently).
    pub(crate) fn set_node_work(&mut self, work: Vec<WorkMeter>) {
        self.node_work = work;
    }

    /// Reassembles a `Metrics` from its observable parts: the per-round
    /// records (in round order), the optional edge-load histogram and the
    /// per-node work meters. The derived run totals and the communication
    /// round count are recomputed exactly as the engine computes them, so
    /// a value rebuilt from the parts of [`Metrics::rounds`],
    /// [`Metrics::edge_histogram`] and [`Metrics::node_work`] compares
    /// `==` to the original — the property wire codecs rely on.
    pub fn from_parts(
        per_round: Vec<RoundMetrics>,
        histogram: Option<EdgeLoadHistogram>,
        node_work: Vec<WorkMeter>,
    ) -> Self {
        let mut metrics = Metrics::new(false, 0);
        for round in per_round {
            metrics.push_round(round);
        }
        metrics.histogram = histogram;
        metrics.node_work = node_work;
        metrics
    }

    /// Number of communication rounds: delivery phases that carried at
    /// least one message. This is the quantity bounded by the paper's
    /// theorems (16, 12, 10, 37, …).
    #[inline]
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    /// Total messages delivered over the run.
    #[inline]
    pub fn total_messages(&self) -> u64 {
        self.totals.messages
    }

    /// Total bits delivered over the run.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.totals.bits
    }

    /// Maximum bits carried by any directed edge in any single round.
    #[inline]
    pub fn max_edge_bits(&self) -> u64 {
        self.totals.max_edge_bits
    }

    /// Per-round statistics, in round order (includes message-free trailing
    /// rounds only if they occurred between communication rounds).
    pub fn rounds(&self) -> &[RoundMetrics] {
        &self.per_round
    }

    /// The per-edge load histogram, if recording was enabled in the spec.
    pub fn edge_histogram(&self) -> Option<&EdgeLoadHistogram> {
        self.histogram.as_ref()
    }

    /// Per-node work meters (analytical local-computation accounting).
    pub fn node_work(&self) -> &[WorkMeter] {
        &self.node_work
    }

    /// The maximum computational steps charged to any single node.
    pub fn max_node_steps(&self) -> u64 {
        self.node_work
            .iter()
            .map(WorkMeter::steps)
            .max()
            .unwrap_or(0)
    }

    /// The maximum memory high-water mark (in words) over all nodes.
    pub fn max_node_mem_words(&self) -> u64 {
        self.node_work
            .iter()
            .map(WorkMeter::peak_mem_words)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits, max edge load {} bits/round",
            self.comm_rounds, self.totals.messages, self.totals.bits, self.totals.max_edge_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_rounds_skip_silent_rounds() {
        let mut m = Metrics::new(false, 2);
        m.push_round(RoundMetrics {
            messages: 5,
            bits: 50,
            max_edge_bits: 10,
            busy_edges: 5,
        });
        m.push_round(RoundMetrics::default());
        m.push_round(RoundMetrics {
            messages: 1,
            bits: 8,
            max_edge_bits: 8,
            busy_edges: 1,
        });
        assert_eq!(m.comm_rounds(), 2);
        assert_eq!(m.total_messages(), 6);
        assert_eq!(m.total_bits(), 58);
        assert_eq!(m.max_edge_bits(), 10);
        assert_eq!(m.rounds().len(), 3);
    }

    #[test]
    fn histogram_records_loads() {
        let mut h = EdgeLoadHistogram::default();
        h.record(8);
        h.record(8);
        h.record(16);
        assert_eq!(h.total_observations(), 3);
        assert_eq!(h.max_load(), 16);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(8, 2), (16, 1)]);
    }

    #[test]
    fn round_metrics_merge_is_commutative() {
        let a = RoundMetrics {
            messages: 3,
            bits: 30,
            max_edge_bits: 12,
            busy_edges: 2,
        };
        let b = RoundMetrics {
            messages: 5,
            bits: 11,
            max_edge_bits: 9,
            busy_edges: 4,
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.messages, 8);
        assert_eq!(ab.max_edge_bits, 12);
    }

    #[test]
    fn from_parts_reproduces_the_original_bit_for_bit() {
        let mut original = Metrics::new(true, 2);
        original.push_round(RoundMetrics {
            messages: 4,
            bits: 40,
            max_edge_bits: 12,
            busy_edges: 3,
        });
        original.push_round(RoundMetrics::default());
        original.push_round(RoundMetrics {
            messages: 2,
            bits: 10,
            max_edge_bits: 5,
            busy_edges: 2,
        });
        original.histogram_mut().unwrap().record(12);
        original.histogram_mut().unwrap().record(12);
        original.histogram_mut().unwrap().record(5);
        original.node_work_mut(0).charge(7);
        original.node_work_mut(1).note_mem(19);

        let rebuilt = Metrics::from_parts(
            original.rounds().to_vec(),
            original
                .edge_histogram()
                .map(|h| EdgeLoadHistogram::from_pairs(h.iter())),
            original.node_work().to_vec(),
        );
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.comm_rounds(), 2);

        // Histogram-free metrics roundtrip too (None stays None).
        let plain = Metrics::new(false, 1);
        let rebuilt =
            Metrics::from_parts(plain.rounds().to_vec(), None, plain.node_work().to_vec());
        assert_eq!(rebuilt, plain);
    }

    #[test]
    fn histogram_from_pairs_canonicalizes() {
        let h = EdgeLoadHistogram::from_pairs([(8, 2), (16, 0), (8, 1), (3, 4)]);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(3, 4), (8, 3)]);
    }

    #[test]
    fn work_aggregates() {
        let mut m = Metrics::new(false, 3);
        m.node_work_mut(0).charge(5);
        m.node_work_mut(2).charge(9);
        m.node_work_mut(1).note_mem(44);
        assert_eq!(m.max_node_steps(), 9);
        assert_eq!(m.max_node_mem_words(), 44);
    }
}
