//! Small numeric utilities shared by the whole workspace.
//!
//! These are the arithmetic idioms of the paper: `⌈log₂ n⌉`-bit machine
//! words, integer square roots for the `√n`-sized node subsets, and ceiling
//! divisions for message bundling.

/// Ceiling of the base-2 logarithm: the number of bits needed to represent
/// values in `0..x` (with a minimum of 1 bit).
///
/// ```rust
/// assert_eq!(cc_sim::util::ceil_log2(1), 1);
/// assert_eq!(cc_sim::util::ceil_log2(2), 1);
/// assert_eq!(cc_sim::util::ceil_log2(3), 2);
/// assert_eq!(cc_sim::util::ceil_log2(1024), 10);
/// assert_eq!(cc_sim::util::ceil_log2(1025), 11);
/// ```
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    if x <= 2 {
        1
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// The size in bits of one "machine word" of the model: `⌈log₂ n⌉` for an
/// `n`-node clique, with a floor of 1.
///
/// The paper's messages consist of "a constant number of integer numbers
/// that are polynomially bounded in n" (§2) — i.e. a constant number of
/// these words.
#[inline]
pub fn word_bits(n: usize) -> u64 {
    u64::from(ceil_log2(n.max(2)))
}

/// Integer square root: the largest `s` with `s·s <= x`.
///
/// ```rust
/// assert_eq!(cc_sim::util::isqrt(0), 0);
/// assert_eq!(cc_sim::util::isqrt(15), 3);
/// assert_eq!(cc_sim::util::isqrt(16), 4);
/// assert_eq!(cc_sim::util::isqrt(17), 4);
/// ```
#[inline]
pub fn isqrt(x: usize) -> usize {
    if x == 0 {
        return 0;
    }
    let mut s = (x as f64).sqrt() as usize;
    // Float sqrt can be off by one in either direction near perfect squares.
    while s.saturating_mul(s) > x {
        s -= 1;
    }
    while (s + 1).saturating_mul(s + 1) <= x {
        s += 1;
    }
    s
}

/// Returns `true` when `x` is a perfect square.
#[inline]
pub fn is_square(x: usize) -> bool {
    let s = isqrt(x);
    s * s == x
}

/// Ceiling division of nonnegative integers.
///
/// ```rust
/// assert_eq!(cc_sim::util::div_ceil(7, 3), 3);
/// assert_eq!(cc_sim::util::div_ceil(6, 3), 2);
/// assert_eq!(cc_sim::util::div_ceil(0, 3), 0);
/// ```
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

/// An analytical `k·⌈log₂ k⌉` cost (comparison sort of `k` items), used by
/// the work-accounting model of Theorem 5.4 experiments.
#[inline]
pub fn sort_cost(k: usize) -> u64 {
    (k as u64) * u64::from(ceil_log2(k.max(2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_naive() {
        for x in 1..2000usize {
            let naive = (1..=64)
                .find(|&b| (1usize << b) >= x)
                .expect("within u64 range") as u32;
            assert_eq!(ceil_log2(x), naive.max(1), "x={x}");
        }
    }

    #[test]
    fn isqrt_exhaustive_small() {
        for x in 0..100_000usize {
            let s = isqrt(x);
            assert!(s * s <= x, "x={x} s={s}");
            assert!((s + 1) * (s + 1) > x, "x={x} s={s}");
        }
    }

    #[test]
    fn is_square_detects_squares() {
        let squares: Vec<usize> = (0..200).map(|s| s * s).collect();
        for x in 0..40_000 {
            assert_eq!(is_square(x), squares.binary_search(&x).is_ok(), "x={x}");
        }
    }

    #[test]
    fn word_bits_has_floor_one() {
        assert_eq!(word_bits(0), 1);
        assert_eq!(word_bits(1), 1);
        assert_eq!(word_bits(2), 1);
        assert_eq!(word_bits(1024), 10);
    }

    #[test]
    fn sort_cost_is_monotone() {
        let mut prev = 0;
        for k in 0..1000 {
            let c = sort_cost(k);
            assert!(c >= prev);
            prev = c;
        }
    }
}
