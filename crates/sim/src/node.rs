use std::fmt;

/// Identifier of a node in the clique.
///
/// Internally zero-based: nodes of an `n`-clique are `0..n`. The paper uses
/// `1..n`; the shift is purely cosmetic and confined to documentation.
///
/// `NodeId` is a plain index newtype ([C-NEWTYPE]); it orders and hashes as
/// its index.
///
/// ```rust
/// use cc_sim::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert!(NodeId::new(2) < v);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (cliques larger than
    /// 2^32 nodes are far outside simulable range).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the zero-based index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation (useful for wire encoding).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_index() {
        for i in [0usize, 1, 7, 1023, u32::MAX as usize] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn orders_by_index() {
        let mut v = vec![NodeId::new(5), NodeId::new(1), NodeId::new(3)];
        v.sort();
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(4)), "n4");
        assert_eq!(format!("{}", NodeId::new(4)), "4");
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32")]
    fn rejects_oversized_index() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn converts_via_from() {
        let id: NodeId = 9u32.into();
        let back: u32 = id.into();
        assert_eq!(back, 9);
        let idx: usize = id.into();
        assert_eq!(idx, 9);
    }
}
