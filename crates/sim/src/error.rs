use crate::NodeId;
use std::fmt;

/// Errors produced by the simulator engine.
///
/// These correspond to violations of the congested-clique model (bandwidth,
/// liveness) or misconfiguration; they are *not* recoverable conditions of a
/// correct protocol, so most callers surface them with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The per-directed-edge per-round bit budget was exceeded.
    BudgetExceeded {
        /// Communication round in which the violation occurred (1-based).
        round: u64,
        /// Sending endpoint of the violating edge.
        src: NodeId,
        /// Receiving endpoint of the violating edge.
        dst: NodeId,
        /// Bits the sender attempted to push over the edge this round.
        bits: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The run exceeded the configured maximum number of rounds.
    TooManyRounds {
        /// The configured limit.
        limit: u64,
    },
    /// No messages were sent and no node finished during a full round:
    /// the protocol can make no further progress.
    Stalled {
        /// Round at which the stall was detected.
        round: u64,
        /// Number of nodes that had already produced output.
        finished: usize,
        /// Total number of nodes.
        total: usize,
    },
    /// A message was addressed to a node that had already finished.
    MessageToFinishedNode {
        /// Communication round of the delivery attempt.
        round: u64,
        /// Sender.
        src: NodeId,
        /// The finished recipient.
        dst: NodeId,
    },
    /// A message was addressed to a node outside `0..n`.
    DestinationOutOfRange {
        /// Sender.
        src: NodeId,
        /// The invalid destination index.
        dst: usize,
        /// Clique size.
        n: usize,
    },
    /// The clique specification is invalid (e.g. `n == 0`).
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The number of machines supplied does not match the clique size.
    NodeCountMismatch {
        /// Clique size from the spec.
        expected: usize,
        /// Number of machines supplied.
        actual: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded {
                round,
                src,
                dst,
                bits,
                budget,
            } => write!(
                f,
                "edge ({src} -> {dst}) carries {bits} bits in round {round}, budget is {budget}"
            ),
            SimError::TooManyRounds { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            SimError::Stalled {
                round,
                finished,
                total,
            } => write!(
                f,
                "protocol stalled in round {round} with {finished}/{total} nodes finished"
            ),
            SimError::MessageToFinishedNode { round, src, dst } => write!(
                f,
                "node {src} sent a message to node {dst} in round {round}, but {dst} had already finished"
            ),
            SimError::DestinationOutOfRange { src, dst, n } => write!(
                f,
                "node {src} addressed destination {dst}, outside the {n}-clique"
            ),
            SimError::InvalidSpec { reason } => write!(f, "invalid clique spec: {reason}"),
            SimError::NodeCountMismatch { expected, actual } => write!(
                f,
                "spec declares {expected} nodes but {actual} machines were supplied"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BudgetExceeded {
            round: 3,
            src: NodeId::new(1),
            dst: NodeId::new(2),
            bits: 99,
            budget: 64,
        };
        let s = e.to_string();
        assert!(s.contains("99 bits"));
        assert!(s.contains("round 3"));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
