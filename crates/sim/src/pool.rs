//! Persistent stepping-worker pools: [`WorkerPool`], spawned once per
//! [`Simulator`](crate::Simulator) run and parked between rounds, and
//! [`SessionPool`], spawned once per
//! [`CliqueSession`](crate::CliqueSession) and parked between *runs* —
//! so a batch of protocol runs never respawns a thread.
//!
//! The engine's rounds are embarrassingly parallel across nodes, but the
//! previous parallel engine paid `workers × thread spawn/join` every
//! round, which is why small cliques could not parallelize profitably
//! (the old `PARALLEL_MIN_CHUNK` of 32 existed solely to amortize spawn
//! cost). This pool replaces the per-round spawn with a per-round
//! *hand-off*: workers are spawned once inside the run's thread scope,
//! block on their job channel between rounds (a futex park — no
//! spinning), and each round receive *ownership* of their
//! [`NodeChunk`] — a handful of `Vec` headers — step it, and send it
//! back.
//!
//! Moving ownership through channels, rather than lending `&mut` chunk
//! slices to long-lived workers, is what keeps the pool within the
//! crate's `#![forbid(unsafe_code)]`: a scoped worker cannot safely hold
//! a fresh per-round mutable borrow, but it can own the chunk outright
//! for the duration of the step. The driving thread gets every chunk
//! back before delivery, so the sequential delivery pass — where all
//! determinism-relevant ordering and violation detection happens — is
//! untouched.
//!
//! Determinism: chunk boundaries are fixed for the whole run, results are
//! written back by chunk index (arrival order is irrelevant), and the
//! per-round completion count is a sum over chunks, so the pool is
//! observably identical to sequential stepping.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{Scope, ScopedJoinHandle};

use crate::common::CommonCache;
use crate::engine::{NodeChunk, NodeMachine};

/// One round's hand-off to a worker: the chunk travels by value.
struct Job<N: NodeMachine> {
    round: u64,
    index: usize,
    chunk: NodeChunk<N>,
}

/// What a worker sends back for one job.
///
/// Panics inside `on_round` (a protocol bug, or a [`CommonCache`]
/// divergence assertion) are caught on the worker and reported as an
/// explicit outcome rather than killing the worker thread: the driver
/// would otherwise block forever on its result channel, since the
/// *other* parked workers keep their senders alive and a receiver only
/// errors once every sender is gone. The driver re-raises the payload,
/// so the caller observes the same panic it would have seen under
/// sequential stepping.
enum StepOutcome<N: NodeMachine> {
    Stepped {
        index: usize,
        chunk: NodeChunk<N>,
        completions: usize,
    },
    Panicked(Box<dyn Any + Send>),
}

/// The pool: one parked worker per chunk, alive for the whole run.
///
/// Created inside the engine's `std::thread::scope` so workers may borrow
/// the run's [`CommonCache`]; dropping the pool (or the scope unwinding)
/// closes the job channels, which wakes every worker and lets the scope
/// join them.
pub(crate) struct WorkerPool<'scope, N: NodeMachine> {
    job_txs: Vec<Sender<Job<N>>>,
    results: Receiver<StepOutcome<N>>,
    handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl<'scope, N: NodeMachine> WorkerPool<'scope, N> {
    /// Spawns `workers` stepping workers on `scope`. Each worker loops:
    /// park on the job channel, step the received chunk, send it back.
    pub(crate) fn new<'env>(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        n: usize,
        common: &'env CommonCache,
    ) -> Self
    where
        N: 'env,
    {
        let (result_tx, results) = channel::<StepOutcome<N>>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = channel::<Job<N>>();
            let result_tx = result_tx.clone();
            handles.push(scope.spawn(move || {
                while let Ok(Job {
                    round,
                    index,
                    mut chunk,
                }) = job_rx.recv()
                {
                    // AssertUnwindSafe: on a caught panic the chunk is
                    // dropped and the driver aborts the whole run, so no
                    // code observes the possibly-inconsistent state.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let completions = chunk.step(round, n, common);
                        (chunk, completions)
                    }));
                    let (outcome, poisoned) = match outcome {
                        Ok((chunk, completions)) => (
                            StepOutcome::Stepped {
                                index,
                                chunk,
                                completions,
                            },
                            false,
                        ),
                        Err(payload) => (StepOutcome::Panicked(payload), true),
                    };
                    // A send error means the driving thread is gone (it
                    // panicked and is unwinding the scope); exit quietly.
                    if result_tx.send(outcome).is_err() || poisoned {
                        break;
                    }
                }
            }));
            job_txs.push(job_tx);
        }
        WorkerPool {
            job_txs,
            results,
            handles,
        }
    }

    /// Steps one round: hands each chunk to its worker, collects every
    /// chunk back (written in place by index), and returns the total
    /// number of nodes that finished this round.
    ///
    /// On return the caller owns all chunks again, so the subsequent
    /// delivery pass runs with no synchronization at all. If a worker's
    /// `on_round` panicked, the panic is re-raised here on the driving
    /// thread after the pool has been torn down.
    pub(crate) fn step_round(&mut self, round: u64, chunks: &mut [NodeChunk<N>]) -> usize {
        debug_assert_eq!(chunks.len(), self.job_txs.len());
        for (index, (slot, job_tx)) in chunks.iter_mut().zip(&self.job_txs).enumerate() {
            let chunk = std::mem::replace(slot, NodeChunk::placeholder());
            if job_tx
                .send(Job {
                    round,
                    index,
                    chunk,
                })
                .is_err()
            {
                self.abort(None);
            }
        }
        let mut completions = 0usize;
        for _ in 0..chunks.len() {
            match self.results.recv() {
                Ok(StepOutcome::Stepped {
                    index,
                    chunk,
                    completions: c,
                }) => {
                    chunks[index] = chunk;
                    completions += c;
                }
                Ok(StepOutcome::Panicked(payload)) => self.abort(Some(payload)),
                Err(_) => self.abort(None),
            }
        }
        completions
    }

    /// Tears the pool down after a worker reported a panic (or vanished):
    /// wake every parked worker so it exits, join them all, and re-raise
    /// the panic payload on the driving thread. Workers never block on
    /// the (unbounded) result channel, so joining cannot deadlock.
    fn abort(&mut self, mut payload: Option<Box<dyn Any + Send>>) -> ! {
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            if let Err(p) = handle.join() {
                // Uncaught worker panic — can't happen while `step` runs
                // under `catch_unwind`, but keep the payload if it does.
                payload.get_or_insert(p);
            }
        }
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            None => unreachable!("a pool worker disconnected without panicking"),
        }
    }
}

/// A type-erased stepping job: owns its chunk, steps it, and reports
/// through a channel baked into the closure. Boxing is what lets one pool
/// of OS threads serve *every* protocol type a session runs — the worker
/// loop never learns the machine type.
type SessionJob = Box<dyn FnOnce() + Send + 'static>;

/// The session-lifetime worker pool: threads are spawned on first
/// parallel use of a [`CliqueSession`](crate::CliqueSession), parked on
/// their job channel between rounds *and between runs*, and joined when
/// the session drops.
///
/// Unlike [`WorkerPool`] — whose scoped workers are typed by the protocol
/// and may borrow the run's [`CommonCache`] — session workers are
/// `'static` and execute boxed jobs, so consecutive runs of *different*
/// protocols reuse the same threads. The cost is one small closure
/// allocation per chunk per round and an `Arc` on the cache; the saving
/// is `workers × thread spawn/join` per run, the dominant setup cost of
/// constant-round protocols on small cliques.
///
/// Determinism is inherited from the same argument as [`WorkerPool`]:
/// chunk boundaries are fixed, results are written back by chunk index,
/// and all delivery/validation stays on the driving thread.
#[derive(Default)]
pub(crate) struct SessionPool {
    job_txs: Vec<Sender<SessionJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SessionPool {
    /// Number of live workers.
    pub(crate) fn workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Grows the pool to at least `count` parked workers. Never shrinks:
    /// a session that once ran a wide clique keeps its threads for the
    /// next wide run, which is the point of the session.
    pub(crate) fn ensure_workers(&mut self, count: usize) {
        while self.job_txs.len() < count {
            let (job_tx, job_rx) = channel::<SessionJob>();
            let handle = std::thread::Builder::new()
                .name(format!("cc-session-{}", self.job_txs.len()))
                .spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        job();
                    }
                })
                .expect("spawn session stepping worker");
            self.handles.push(handle);
            self.job_txs.push(job_tx);
        }
    }

    /// Steps one round of `chunks` on the session workers; the semantics
    /// mirror [`WorkerPool::step_round`] exactly (ownership hand-off,
    /// write-back by index, caught panics re-raised on the driving
    /// thread), so a reused session steps bit-identically to a fresh
    /// simulator.
    ///
    /// A worker that catches a panic stays parked and reusable — only the
    /// panicking *run* is lost, not the session.
    pub(crate) fn step_round<N>(
        &mut self,
        round: u64,
        n: usize,
        common: &std::sync::Arc<CommonCache>,
        chunks: &mut [NodeChunk<N>],
    ) -> usize
    where
        N: NodeMachine + 'static,
        N::Msg: 'static,
        N::Output: 'static,
    {
        self.ensure_workers(chunks.len());
        let (result_tx, results) = channel::<StepOutcome<N>>();
        for (index, (slot, job_tx)) in chunks.iter_mut().zip(&self.job_txs).enumerate() {
            let mut chunk = std::mem::replace(slot, NodeChunk::placeholder());
            let common = std::sync::Arc::clone(common);
            let result_tx = result_tx.clone();
            let job: SessionJob = Box::new(move || {
                // AssertUnwindSafe: on a caught panic the chunk is dropped
                // and the driver aborts the run, so no code observes the
                // possibly-inconsistent state (same argument as
                // `WorkerPool`).
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let completions = chunk.step(round, n, &common);
                    (chunk, completions)
                }));
                let outcome = match outcome {
                    Ok((chunk, completions)) => StepOutcome::Stepped {
                        index,
                        chunk,
                        completions,
                    },
                    Err(payload) => StepOutcome::Panicked(payload),
                };
                // A send error means the driving thread already gave up on
                // this round (another chunk panicked); park for the next job.
                let _ = result_tx.send(outcome);
            });
            job_tx
                .send(job)
                .expect("session stepping worker is parked on its channel");
        }
        drop(result_tx);
        // Collect *every* outcome before re-raising a panic: leaving a
        // job in flight would let it outlive the aborted run and write
        // into the shared cache after the session has reset it for the
        // next run (WorkerPool::abort prevents the same race by joining
        // its workers; session workers survive, so the barrier is the
        // drain). Every job reports — panics are caught on the worker —
        // so this loop always terminates.
        let mut completions = 0usize;
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for _ in 0..chunks.len() {
            let outcome = results
                .recv()
                .expect("every dispatched job reports an outcome");
            match outcome {
                StepOutcome::Stepped {
                    index,
                    chunk,
                    completions: c,
                } => {
                    chunks[index] = chunk;
                    completions += c;
                }
                StepOutcome::Panicked(payload) => {
                    // First panic wins (lowest chunk finishes first is not
                    // guaranteed, but the payload re-raised is from the
                    // run being aborted either way).
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        completions
    }
}

impl SessionPool {
    /// Runs a batch of arbitrary compute jobs on the parked workers, one
    /// job per worker, and returns their results **in job order**
    /// (arrival order is irrelevant — results are written back by index,
    /// the same determinism discipline as `step_round`). Panics inside a
    /// job are caught on the worker, every outstanding job is drained
    /// (so nothing outlives an aborted batch), and the first payload is
    /// re-raised on the driving thread.
    ///
    /// This is the generic surface behind the radix sort's
    /// chunked-parallel driver (`crate::radix`): chunk ownership moves
    /// to the worker through the job channel and back through the result
    /// channel, keeping the crate within `forbid(unsafe_code)`.
    pub(crate) fn run_jobs<R: Send + 'static>(
        &mut self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let count = jobs.len();
        self.ensure_workers(count);
        let (result_tx, results) = channel::<(usize, std::thread::Result<R>)>();
        for (index, (job, job_tx)) in jobs.into_iter().zip(&self.job_txs).enumerate() {
            let result_tx = result_tx.clone();
            let wrapped: SessionJob = Box::new(move || {
                // AssertUnwindSafe: a panicking job's partial state is
                // dropped with the closure; the driver re-raises, so no
                // code observes it (same argument as `step_round`).
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
                let _ = result_tx.send((index, outcome));
            });
            job_tx
                .send(wrapped)
                .expect("session worker is parked on its channel");
        }
        drop(result_tx);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for _ in 0..count {
            let (index, outcome) = results
                .recv()
                .expect("every dispatched job reports an outcome");
            match outcome {
                Ok(result) => slots[index] = Some(result),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("non-panicking job filled its slot"))
            .collect()
    }
}

impl Drop for SessionPool {
    /// Closes every job channel — waking the parked workers so they exit —
    /// and joins them. Workers only ever block on `recv`, so the join
    /// cannot deadlock; a worker that somehow panicked outside a job is
    /// ignored (the session is being torn down anyway).
    fn drop(&mut self) {
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    /// The pool and everything traveling on its job channels must be
    /// `Send`: a [`CliqueSession`](crate::CliqueSession) owning this pool
    /// is moved whole into server shard threads, and each `SessionJob`
    /// crosses from the driving thread to a parked worker. Compile-time
    /// only — if a non-`Send` member ever sneaks into the pool or the job
    /// closures, this stops building rather than failing at runtime.
    #[test]
    fn session_pool_and_job_channels_are_send() {
        assert_send::<SessionPool>();
        assert_send::<SessionJob>();
        assert_send::<Sender<SessionJob>>();
        assert_send::<Receiver<SessionJob>>();
    }
}
