fn main() {
    println!("variant    n  rounds      msgs  maxedge(b)  work/node  work/(n·log n)");
    for n in [64usize, 144, 256, 400, 576] {
        let inst = cc_core::routing::RoutingInstance::from_demands(n, |_, _| 1).unwrap();
        for (name, out) in [
            (
                "basic",
                cc_core::routing::route_deterministic(&inst).unwrap(),
            ),
            ("opt  ", cc_core::routing::route_optimized(&inst).unwrap()),
        ] {
            let nlogn = (n as f64) * (n as f64).log2();
            println!(
                "{name}  {:5}  {:4}  {:9}  {:6}  {:10}  {:8.1}",
                n,
                out.metrics.comm_rounds(),
                out.metrics.total_messages(),
                out.metrics.max_edge_bits(),
                out.metrics.max_node_steps(),
                out.metrics.max_node_steps() as f64 / nlogn
            );
        }
    }
}
