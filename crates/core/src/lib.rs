//! # cc-core — deterministic routing and sorting on the congested clique
//!
//! A faithful, measured implementation of Christoph Lenzen's *Optimal
//! Deterministic Routing and Sorting on the Congested Clique* (PODC 2013):
//!
//! * **Routing** ([`routing`]): the Information Distribution Task
//!   (Problem 3.1) — every node is source and destination of up to `n`
//!   `O(log n)`-bit messages — solved deterministically in **16 rounds**
//!   (Theorem 3.7), plus the computation- and memory-optimal §5 variant in
//!   **12 rounds** with `O(n log n)` work and memory per node
//!   (Theorem 5.4), and the §6.1 large-message wrapper.
//! * **Sorting** ([`sorting`]): Problem 4.1 — every node holds up to `n`
//!   keys and must learn its batch in the global order — solved in **37
//!   rounds** (Theorem 4.5) on top of the routing machinery; the
//!   `√n`-node subset sort of Algorithm 3 (**10 rounds**, Lemma 4.4); the
//!   global-index variant of Corollary 4.6 with constant-round selection
//!   and mode; and the §6.3 small-key protocol with 1–2-bit messages.
//!
//! All round counts are *measured* by the `cc-sim` engine, not asserted:
//! every protocol here runs on the simulator, which enforces the per-edge
//! `O(log n)`-bit budget and counts the communication rounds the paper's
//! theorems bound.
//!
//! Two facades bundle the common entry points: the stateless
//! [`CongestedClique`] (a fresh simulator per call) and the stateful
//! [`CliqueService`] (one persistent `cc_sim::CliqueSession` answering
//! every call, amortizing thread and arena setup across queries —
//! bit-identical answers, see [`CliqueService`]). Both expose `route`,
//! `route_optimized`, `sort`, `global_indices`, `select`, `mode` and
//! `small_key_census` through one shared internal executor path.
//!
//! The stateless facade:
//!
//! ```rust
//! use cc_core::CongestedClique;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clique = CongestedClique::new(16)?;
//!
//! // Route a cyclic workload: node i sends its n messages to node i+1.
//! let instance = cc_core::routing::RoutingInstance::from_demands(16, |i, j| {
//!     u32::from(j == (i + 1) % 16) * 16
//! })?;
//! let outcome = clique.route(&instance)?;
//! assert!(outcome.metrics.comm_rounds() <= 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod error;
mod exec;
mod service;

pub mod routing;
pub mod sorting;
pub mod sortkey;

pub use clique::CongestedClique;
pub use error::CoreError;
pub use service::{CliqueService, Outcome};

// What the layers above the service (the `cc-server` shard workers, the
// benches) need without reaching into `cc-sim` themselves: the per-session
// counters behind [`CliqueService::stats`] and the per-run measurements
// embedded in every outcome.
pub use cc_sim::{Metrics, SessionStats};

// The bit-exact encoding substrate, plus every type embedded in the
// outcomes and errors the entry points return. `cc-net`'s wire codec
// serializes all of it through these — the same machinery the simulator
// uses to charge message sizes — re-exported so codec layers need only a
// `cc-core` dependency.
pub use cc_sim::wire;
pub use cc_sim::{EdgeLoadHistogram, NodeId, RoundMetrics, SimError, WorkMeter};

// The observability layer the serving tiers share: `cc-server` registers
// its fleet telemetry here and `cc-net` both instruments its reactor and
// ships whole-registry [`obs::Snapshot`]s over the wire. Re-exported so
// those layers (and codec code in particular) keep a single-dependency
// story, mirroring the `wire` re-export above.
pub use cc_obs as obs;
